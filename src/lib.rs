//! Workspace facade for the Chiron reproduction; see the `chiron` crate.
pub use chiron as core;
