//! Capacity validation: the analytic node-throughput figure behind Fig. 16
//! must agree with an actual queueing simulation of the node, and cluster
//! placement must scale it across the 8-node testbed.

use chiron::deploy::{place, ClusterConfig, PlacementPolicy};
use chiron::metrics::{drive_load, saturation_rps};
use chiron::model::{apps, SystemKind};
use chiron::{evaluate_system, paper_slo, EvalConfig};

/// The analytic `concurrency / latency` throughput must match the rate a
/// FIFO multi-server queue actually sustains with those parameters.
#[test]
fn analytic_throughput_matches_queueing_simulation() {
    let cfg = EvalConfig {
        requests: 4,
        ..EvalConfig::default()
    };
    for (sys, wf) in [
        (SystemKind::Faastlane, apps::finra(5)),
        (SystemKind::Chiron, apps::finra(50)),
        (SystemKind::OpenFaas, apps::slapp()),
    ] {
        let slo = (sys == SystemKind::Chiron).then(|| paper_slo(&wf));
        let eval = evaluate_system(sys, &wf, slo, &cfg);
        let servers = eval.throughput.concurrency;
        if servers < 1.0 {
            continue; // oversubscribed single instance: no whole server
        }
        let service: Vec<chiron::model::SimDuration> = eval.latencies.iter().collect();
        let measured = saturation_rps(servers as u32, &service, 2.0, 3000);
        let analytic = eval.throughput.rps;
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.15,
            "{sys} on {}: queueing {measured:.1} vs analytic {analytic:.1} rps",
            wf.name
        );
    }
}

/// Below saturation the queue adds no latency; above it, sojourn explodes.
#[test]
fn load_sweep_brackets_the_knee() {
    let cfg = EvalConfig {
        requests: 2,
        ..EvalConfig::default()
    };
    let wf = apps::finra(5);
    let eval = evaluate_system(SystemKind::Chiron, &wf, Some(paper_slo(&wf)), &cfg);
    let servers = eval.throughput.concurrency as u32;
    assert!(servers >= 1);
    let service: Vec<chiron::model::SimDuration> = eval.latencies.iter().collect();
    let cap = eval.throughput.rps;
    let under = drive_load(servers, &service, cap * 0.5, 2000);
    let over = drive_load(servers, &service, cap * 1.5, 2000);
    assert!(under.p99_sojourn.as_millis_f64() < eval.mean_latency.as_millis_f64() * 1.5);
    assert!(over.p99_sojourn > under.p99_sojourn * 5);
}

/// Every evaluated system's plan must be placeable on the paper's 8-node
/// testbed, except deployments whose single instance outgrows the cluster.
#[test]
fn suite_plans_fit_the_paper_testbed() {
    let cluster = ClusterConfig::paper_testbed();
    let cfg = EvalConfig {
        requests: 1,
        ..EvalConfig::default()
    };
    for wf in [
        apps::finra(5),
        apps::finra(50),
        apps::social_network(),
        apps::slapp_v(),
    ] {
        for sys in [
            SystemKind::OpenFaas,
            SystemKind::Faastlane,
            SystemKind::Chiron,
        ] {
            let slo = (sys == SystemKind::Chiron).then(|| paper_slo(&wf));
            let eval = evaluate_system(sys, &wf, slo, &cfg);
            // Uniform-allocation baselines can demand more CPUs than one
            // node owns (Faastlane wants max-parallelism CPUs in a single
            // sandbox); those legitimately oversubscribe rather than place.
            if eval
                .plan
                .sandboxes
                .iter()
                .any(|s| s.cpus > cluster.node.node_cpus)
            {
                continue;
            }
            for policy in [PlacementPolicy::Pack, PlacementPolicy::Spread] {
                let placement = place(&eval.plan, &wf, &cluster, policy)
                    .unwrap_or_else(|e| panic!("{sys} on {}: {e}", wf.name));
                assert_eq!(placement.assignments.len(), eval.plan.sandbox_count());
            }
        }
    }
}

/// Chiron's frugal plans pack onto a single node; OpenFaaS's one-to-one
/// FINRA-50 plan spreads across several under the Spread policy.
#[test]
fn chiron_packs_tighter_than_one_to_one() {
    let cluster = ClusterConfig::paper_testbed();
    let cfg = EvalConfig {
        requests: 1,
        ..EvalConfig::default()
    };
    let wf = apps::finra(50);
    let chiron = evaluate_system(SystemKind::Chiron, &wf, Some(paper_slo(&wf)), &cfg);
    let chiron_placed = place(&chiron.plan, &wf, &cluster, PlacementPolicy::Pack).unwrap();
    assert_eq!(chiron_placed.nodes_used(), 1);

    let of = evaluate_system(SystemKind::OpenFaas, &wf, None, &cfg);
    let of_placed = place(&of.plan, &wf, &cluster, PlacementPolicy::Spread).unwrap();
    assert!(of_placed.nodes_used() >= 4, "51 sandboxes should spread");
}
