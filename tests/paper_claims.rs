//! The paper's headline claims, asserted as integration tests against the
//! virtual platform. Exact magnitudes belong to the authors' testbed; the
//! *shape* — who wins, roughly by how much, and where the crossovers sit —
//! must hold here (see EXPERIMENTS.md).

use chiron::model::{apps, SystemKind};
use chiron::{evaluate_system, paper_slo, EvalConfig};

fn cfg() -> EvalConfig {
    EvalConfig {
        requests: 2,
        ..EvalConfig::default()
    }
}

/// Abstract: "Chiron outperforms state-of-the-art systems by 1.3×–21.8× on
/// system throughput."
#[test]
fn abstract_throughput_multiples() {
    let mut ratios = Vec::new();
    for wf in [
        apps::finra(5),
        apps::finra(50),
        apps::slapp(),
        apps::social_network(),
    ] {
        let slo = Some(paper_slo(&wf));
        let chiron = evaluate_system(SystemKind::Chiron, &wf, slo, &cfg());
        for sys in [
            SystemKind::OpenFaas,
            SystemKind::Sand,
            SystemKind::Faastlane,
        ] {
            let base = evaluate_system(sys, &wf, None, &cfg());
            ratios.push(chiron.throughput.rps / base.throughput.rps);
        }
    }
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        min >= 1.2,
        "Chiron must win throughput everywhere: min {min:.2}x"
    );
    assert!(max >= 5.0, "and by a large factor somewhere: max {max:.2}x");
}

/// Observation 1: the one-to-one model's scheduling overhead dominates at
/// high parallelism.
#[test]
fn observation1_scheduling_dominates() {
    let wf = apps::finra(50);
    let asf = evaluate_system(SystemKind::Asf, &wf, None, &cfg());
    let sched = chiron::model::SchedulingModel::paper_calibrated()
        .asf_schedule_time(49)
        .as_millis_f64();
    let fraction = sched / asf.mean_latency.as_millis_f64();
    assert!(fraction > 0.6, "ASF scheduling fraction {fraction}");
}

/// Observation 2: fork block time is 1–2.1× the startup time, and at 50
/// parallel functions the cumulative block rivals a cold start (~167 ms).
#[test]
fn observation2_block_overhead() {
    use chiron::runtime::SpanKind;
    let wf = apps::finra(50);
    let eval = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg());
    let outcome = &eval.sample_outcome;
    let max_block = outcome
        .timelines
        .iter()
        .map(|t| t.total(SpanKind::BlockWait).as_millis_f64())
        .fold(0.0, f64::max);
    assert!(
        (140.0..210.0).contains(&max_block),
        "last fork should wait ~169ms: {max_block}"
    );
}

/// Observation 3: neither pure threads nor pure processes win everywhere.
#[test]
fn observation3_no_universal_winner() {
    let t5 = evaluate_system(SystemKind::FaastlaneT, &apps::finra(5), None, &cfg());
    let p5 = evaluate_system(SystemKind::Faastlane, &apps::finra(5), None, &cfg());
    assert!(
        t5.mean_latency < p5.mean_latency,
        "threads win small fan-out"
    );

    let t50 = evaluate_system(SystemKind::FaastlaneT, &apps::finra(50), None, &cfg());
    let p50 = evaluate_system(SystemKind::Faastlane, &apps::finra(50), None, &cfg());
    assert!(
        t50.mean_latency > p50.mean_latency,
        "processes win large fan-out"
    );

    // And Chiron beats both at both scales.
    for wf in [apps::finra(5), apps::finra(50)] {
        let c = evaluate_system(SystemKind::Chiron, &wf, None, &cfg());
        let t = evaluate_system(SystemKind::FaastlaneT, &wf, None, &cfg());
        let p = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg());
        assert!(c.mean_latency <= t.mean_latency && c.mean_latency <= p.mean_latency);
    }
}

/// Observation 4 / Fig. 8: many-to-one slashes memory vs one-to-one;
/// Chiron additionally slashes CPUs vs Faastlane.
#[test]
fn observation4_resource_efficiency() {
    let wf = apps::finra(50);
    let slo = Some(paper_slo(&wf));
    let of = evaluate_system(SystemKind::OpenFaas, &wf, None, &cfg());
    let fl = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg());
    let ch = evaluate_system(SystemKind::Chiron, &wf, slo, &cfg());
    let mem_saving = 1.0 - fl.usage.memory_mb() / of.usage.memory_mb();
    assert!(mem_saving > 0.7, "Faastlane memory saving {mem_saving}");
    let cpu_saving = 1.0 - f64::from(ch.usage.cpus) / f64::from(fl.usage.cpus);
    assert!(cpu_saving > 0.5, "Chiron CPU saving {cpu_saving}");
}

/// §6.2: Chiron reduces latency vs OpenFaaS by up to ~54% and vs Faastlane
/// by up to ~43% — demand substantial reductions at the workloads where the
/// paper sees them (high fan-out).
#[test]
fn latency_reductions_at_high_fanout() {
    let wf = apps::finra(100);
    let slo = Some(paper_slo(&wf));
    let chiron = evaluate_system(SystemKind::Chiron, &wf, slo, &cfg());
    let of = evaluate_system(SystemKind::OpenFaas, &wf, None, &cfg());
    let fl = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg());
    let vs_of = 1.0 - chiron.mean_latency.as_millis_f64() / of.mean_latency.as_millis_f64();
    let vs_fl = 1.0 - chiron.mean_latency.as_millis_f64() / fl.mean_latency.as_millis_f64();
    assert!(vs_of > 0.3, "vs OpenFaaS: {vs_of}");
    assert!(vs_fl > 0.3, "vs Faastlane: {vs_fl}");
}

/// Fig. 18: even without the GIL, Chiron's resource efficiency buys
/// throughput.
#[test]
fn no_gil_throughput_advantage() {
    use chiron::deploy;
    use chiron::evaluate_plan;
    let wf = apps::slapp();
    let slo = paper_slo(&wf);
    let par = wf.max_parallelism() as u32;
    let one = deploy::to_java(deploy::openfaas(&wf));
    let mut many = deploy::to_java(deploy::faastlane_t(&wf));
    many.sandboxes[0].cpus = par;
    let mut lean = deploy::to_java(deploy::faastlane_t(&wf));
    lean.system = SystemKind::Chiron;
    for cpus in 1..=par {
        lean.sandboxes[0].cpus = cpus;
        if evaluate_plan(&wf, lean.clone(), &cfg()).mean_latency <= slo {
            break;
        }
    }
    let one = evaluate_plan(&wf, one, &cfg());
    let many = evaluate_plan(&wf, many, &cfg());
    let lean = evaluate_plan(&wf, lean, &cfg());
    assert!(lean.throughput.rps > many.throughput.rps);
    assert!(lean.throughput.rps > 2.0 * one.throughput.rps);
}

/// §6.3: the m-to-n model is the cheapest of all deployment models.
#[test]
fn cost_efficiency_ordering() {
    for wf in [apps::movie_reviewing(), apps::finra(50)] {
        let slo = Some(paper_slo(&wf));
        let chiron = evaluate_system(SystemKind::Chiron, &wf, slo, &cfg());
        for sys in [
            SystemKind::Asf,
            SystemKind::OpenFaas,
            SystemKind::Sand,
            SystemKind::Faastlane,
        ] {
            let base = evaluate_system(sys, &wf, None, &cfg());
            assert!(
                chiron.cost.usd_per_million < base.cost.usd_per_million,
                "{}: Chiron ${} vs {sys} ${}",
                wf.name,
                chiron.cost.usd_per_million,
                base.cost.usd_per_million
            );
        }
    }
}
