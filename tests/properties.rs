//! Property-based tests (proptest) on the core engines' invariants.

use chiron::model::{RuntimeKind, Segment, SimDuration, SimTime, SyscallKind};
use chiron::predict::{predict_threads, predict_true_parallel, SimThread};
use chiron_deploy::{place, planners, ClusterConfig, ClusterState, PlacementPolicy};
use chiron_metrics::LatencySamples;
use chiron_model::{apps, FunctionId};
use chiron_pgp::kernighan_lin;
use chiron_runtime::{execute_sandbox, SpanKind, ThreadTask};
use proptest::prelude::*;

/// Random segment lists: alternating CPU/block with millisecond durations.
fn arb_segments() -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec((0u8..2, 1u64..30), 1..6).prop_map(|parts| {
        parts
            .into_iter()
            .map(|(kind, ms)| {
                if kind == 0 {
                    Segment::cpu_ms(ms)
                } else {
                    Segment::Block {
                        kind: SyscallKind::NetIo,
                        dur: SimDuration::from_millis(ms),
                    }
                }
            })
            .collect()
    })
}

fn arb_tasks(max_threads: usize, max_procs: usize) -> impl Strategy<Value = Vec<ThreadTask>> {
    prop::collection::vec((arb_segments(), 0..max_procs, 0u64..20), 1..=max_threads).prop_map(
        |ts| {
            ts.into_iter()
                .map(|(segments, process, start_ms)| ThreadTask {
                    process,
                    start: SimTime::from_nanos(start_ms * 1_000_000),
                    segments,
                })
                .collect()
        },
    )
}

fn solo_ms(segments: &[Segment]) -> f64 {
    segments.iter().map(|s| s.duration().as_millis_f64()).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sandbox simulator never finishes a thread before its solo
    /// latency, and CPU accounting matches its CPU demand exactly.
    #[test]
    fn fluid_respects_solo_lower_bound(
        tasks in arb_tasks(6, 3),
        cpus in 1u32..5,
        pseudo in any::<bool>(),
    ) {
        let runtime = if pseudo { RuntimeKind::PseudoParallel } else { RuntimeKind::TrueParallel };
        let results = execute_sandbox(&tasks, cpus, runtime, SimDuration::from_millis(5));
        for (task, r) in tasks.iter().zip(&results) {
            let solo = solo_ms(&task.segments);
            let elapsed = r.end.as_millis_f64() - task.start.as_millis_f64();
            prop_assert!(elapsed + 1e-6 >= solo,
                "thread finished in {elapsed}ms, solo needs {solo}ms");
            let cpu_demand: f64 = task.segments.iter()
                .filter(|s| s.is_cpu())
                .map(|s| s.duration().as_millis_f64())
                .sum();
            prop_assert!((r.cpu_time.as_millis_f64() - cpu_demand).abs() < 0.01);
        }
    }

    /// Total CPU work delivered can never exceed capacity × makespan.
    #[test]
    fn fluid_respects_cpu_capacity(
        tasks in arb_tasks(6, 3),
        cpus in 1u32..4,
    ) {
        let results = execute_sandbox(&tasks, cpus, RuntimeKind::TrueParallel,
            SimDuration::from_millis(5));
        let start = tasks.iter().map(|t| t.start.as_millis_f64()).fold(f64::MAX, f64::min);
        let end = results.iter().map(|r| r.end.as_millis_f64()).fold(0.0, f64::max);
        let delivered: f64 = results.iter().map(|r| r.cpu_time.as_millis_f64()).sum();
        prop_assert!(delivered <= (end - start) * f64::from(cpus) + 0.01);
    }

    /// Spans are ordered and non-overlapping; Exec wall time can exceed
    /// the CPU work delivered (fluid sharing runs threads at reduced rate)
    /// but never undercut it.
    #[test]
    fn fluid_spans_well_formed(tasks in arb_tasks(5, 2), cpus in 1u32..3) {
        let results = execute_sandbox(&tasks, cpus, RuntimeKind::PseudoParallel,
            SimDuration::from_millis(5));
        for r in &results {
            let mut cursor = SimTime::ZERO;
            let mut exec = 0.0;
            for s in &r.spans {
                prop_assert!(s.start >= cursor);
                prop_assert!(s.end >= s.start);
                cursor = s.end;
                if s.kind == SpanKind::Exec {
                    exec += s.duration().as_millis_f64();
                }
            }
            prop_assert!(exec + 0.01 >= r.cpu_time.as_millis_f64(),
                "Exec spans {exec}ms < cpu work {}", r.cpu_time);
        }
    }

    /// Algorithm 1's prediction is bounded below by both the longest thread
    /// and the total CPU demand (single effective CPU under the GIL).
    #[test]
    fn algorithm1_lower_bounds(segs in prop::collection::vec(arb_segments(), 1..6)) {
        let threads: Vec<SimThread> = segs.iter()
            .map(|s| SimThread { created_at: SimDuration::ZERO, segments: s.clone() })
            .collect();
        let out = predict_threads(&threads, SimDuration::from_millis(5));
        let longest = segs.iter().map(|s| solo_ms(s)).fold(0.0, f64::max);
        let total_cpu: f64 = segs.iter().flatten()
            .filter(|s| s.is_cpu())
            .map(|s| s.duration().as_millis_f64())
            .sum();
        prop_assert!(out.makespan.as_millis_f64() + 1e-6 >= longest);
        prop_assert!(out.makespan.as_millis_f64() + 1e-6 >= total_cpu);
        prop_assert!((out.cpu_time.as_millis_f64() - total_cpu).abs() < 0.01);
    }

    /// Algorithm 1 agrees with the ground-truth fluid engine for a
    /// dedicated-CPU process (same scheduling rules ⇒ same makespan).
    #[test]
    fn algorithm1_matches_fluid_on_one_process(
        segs in prop::collection::vec(arb_segments(), 1..5)
    ) {
        let predicted = predict_threads(
            &segs.iter().map(|s| SimThread {
                created_at: SimDuration::ZERO, segments: s.clone(),
            }).collect::<Vec<_>>(),
            SimDuration::from_millis(5),
        );
        let truth = execute_sandbox(
            &segs.iter().map(|s| ThreadTask {
                process: 0, start: SimTime::ZERO, segments: s.clone(),
            }).collect::<Vec<_>>(),
            1,
            RuntimeKind::PseudoParallel,
            SimDuration::from_millis(5),
        );
        let truth_end = truth.iter().map(|r| r.end.as_millis_f64()).fold(0.0, f64::max);
        let diff = (predicted.makespan.as_millis_f64() - truth_end).abs();
        // Algorithm 1 only notices I/O completions at quantum boundaries
        // (a designed simplification of the model), so each blocking
        // segment may contribute up to one 5ms switch interval of error.
        let blocks = segs.iter().flatten().filter(|s| !s.is_cpu()).count();
        let bound = 5.0 * (blocks as f64) + 0.5;
        prop_assert!(diff <= bound, "model off by {diff}ms (> {bound}ms bound)");
    }

    /// The true-parallel bound is monotone in CPU count.
    #[test]
    fn true_parallel_monotone_in_cpus(segs in prop::collection::vec(arb_segments(), 1..6)) {
        let mut prev = f64::MAX;
        for cpus in 1..=4u32 {
            let out = predict_true_parallel(&segs, cpus);
            prop_assert!(out.makespan.as_millis_f64() <= prev + 1e-9);
            prev = out.makespan.as_millis_f64();
        }
    }

    /// Kernighan–Lin preserves the multiset, never grows the objective, and
    /// keeps set sizes fixed.
    #[test]
    fn kl_invariants(
        weights in prop::collection::vec(1.0f64..50.0, 4..10),
        split in 1usize..3,
    ) {
        let n = weights.len();
        let split = split.min(n - 1);
        let mut a: Vec<FunctionId> = (0..split as u32).map(FunctionId).collect();
        let mut b: Vec<FunctionId> = (split as u32..n as u32).map(FunctionId).collect();
        let objective =
            |set: &[FunctionId]| set.iter().map(|f| weights[f.index()]).sum::<f64>();
        let pair = |x: &[FunctionId], y: &[FunctionId]| objective(x).max(objective(y));
        let before = pair(&a, &b);
        let (la, lb) = (a.len(), b.len());
        kernighan_lin(&mut a, &mut b, objective);
        prop_assert_eq!(a.len(), la);
        prop_assert_eq!(b.len(), lb);
        prop_assert!(pair(&a, &b) <= before + 1e-9);
        let mut all: Vec<u32> = a.iter().chain(b.iter()).map(|f| f.0).collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(all, expect);
    }

    /// Latency statistics invariants: percentiles are monotone and bracket
    /// min/max; the CDF is a proper distribution function.
    #[test]
    fn stats_invariants(vals in prop::collection::vec(1u64..100_000, 1..60)) {
        let samples: LatencySamples = vals.iter()
            .map(|&v| SimDuration::from_nanos(v))
            .collect();
        let mut prev = SimDuration::ZERO;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let p = samples.percentile(q);
            prop_assert!(p >= prev);
            prev = p;
        }
        prop_assert_eq!(samples.percentile(0.0), samples.min());
        prop_assert_eq!(samples.percentile(1.0), samples.max());
        prop_assert!(samples.mean() >= samples.min());
        prop_assert!(samples.mean() <= samples.max());
        let cdf = samples.cdf();
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    /// Cluster placement invariants under both policies: every sandbox is
    /// assigned exactly once to a real node, no node's CPU capacity is
    /// exceeded, and no node holds more sandboxes than its memory could
    /// possibly fit (each sandbox needs at least the base runtime image).
    #[test]
    fn placement_respects_capacity(
        n in 2usize..60,
        spread in any::<bool>(),
        nodes in 1u32..9,
    ) {
        let wf = apps::finra(n);
        let plan = planners::faastlane_plus(&wf);
        let cluster = ClusterConfig { nodes, ..ClusterConfig::paper_testbed() };
        let policy = if spread { PlacementPolicy::Spread } else { PlacementPolicy::Pack };
        if let Ok(placement) = place(&plan, &wf, &cluster, policy) {
            prop_assert_eq!(placement.assignments.len(), plan.sandbox_count());
            let mut seen: Vec<u32> = placement.assignments.iter().map(|&(s, _)| s.0).collect();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), plan.sandbox_count(), "each sandbox exactly once");
            let mut cpu = vec![0u32; nodes as usize];
            let mut count = vec![0u64; nodes as usize];
            for &(sb, node) in &placement.assignments {
                prop_assert!(node.0 < nodes, "node index out of range");
                cpu[node.0 as usize] += plan.sandbox(sb).unwrap().cpus;
                count[node.0 as usize] += 1;
            }
            let max_by_memory = cluster.node.node_memory_bytes / cluster.node.sandbox_base_bytes;
            for i in 0..nodes as usize {
                prop_assert!(cpu[i] <= cluster.node.node_cpus,
                    "node {i} packs {} CPUs over the {} cap", cpu[i], cluster.node.node_cpus);
                prop_assert!(count[i] <= max_by_memory);
            }
        }
        // ClusterFull / SandboxTooLarge are acceptable outcomes; the
        // invariant is only about what a successful placement commits.
    }

    /// Incremental replica placement preserves the same invariants over an
    /// arbitrary add sequence and keeps utilisation a proper fraction.
    #[test]
    fn incremental_placement_respects_capacity(
        n in 2usize..30,
        replicas in 1usize..12,
        spread in any::<bool>(),
    ) {
        let wf = apps::finra(n);
        let plan = planners::faastlane_plus(&wf);
        let cluster = ClusterConfig::paper_testbed();
        let policy = if spread { PlacementPolicy::Spread } else { PlacementPolicy::Pack };
        let mut state = ClusterState::new(cluster.clone());
        let mut cpu = vec![0u32; cluster.nodes as usize];
        for _ in 0..replicas {
            let Ok(placement) = state.place_replica(&plan, &wf, policy) else { break };
            prop_assert_eq!(placement.assignments.len(), plan.sandbox_count());
            for &(sb, node) in &placement.assignments {
                cpu[node.0 as usize] += plan.sandbox(sb).unwrap().cpus;
            }
            let util = state.cpu_utilisation();
            prop_assert!((0.0..=1.0).contains(&util));
        }
        for (i, &used) in cpu.iter().enumerate() {
            prop_assert!(used <= cluster.node.node_cpus,
                "node {i} accumulated {used} CPUs over the cap");
        }
    }
}
