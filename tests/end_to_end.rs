//! Cross-crate integration: the full profile → schedule → generate →
//! execute pipeline for every benchmark workflow and every evaluated
//! system, with structural invariants checked on the outcomes.

use chiron::model::{apps, FunctionId, PlatformConfig, SystemKind};
use chiron::{evaluate_system, paper_slo, Chiron, EvalConfig, PgpMode};

const ALL_SYSTEMS: [SystemKind; 11] = [
    SystemKind::Asf,
    SystemKind::OpenFaas,
    SystemKind::Sand,
    SystemKind::Faastlane,
    SystemKind::FaastlaneT,
    SystemKind::FaastlanePlus,
    SystemKind::FaastlaneM,
    SystemKind::FaastlaneP,
    SystemKind::Chiron,
    SystemKind::ChironM,
    SystemKind::ChironP,
];

#[test]
fn every_system_runs_every_benchmark() {
    let cfg = EvalConfig {
        requests: 1,
        ..EvalConfig::default()
    };
    for wf in apps::evaluation_suite() {
        // FINRA-100/200 × 11 systems is slow in debug; sample the suite.
        if wf.function_count() > 101 {
            continue;
        }
        for sys in ALL_SYSTEMS {
            let slo = matches!(
                sys,
                SystemKind::Chiron | SystemKind::ChironM | SystemKind::ChironP
            )
            .then(|| paper_slo(&wf));
            let eval = evaluate_system(sys, &wf, slo, &cfg);
            assert!(!eval.mean_latency.is_zero(), "{sys} on {}", wf.name);
            assert_eq!(eval.sample_outcome.timelines.len(), wf.function_count());
            for t in &eval.sample_outcome.timelines {
                t.check_invariants()
                    .unwrap_or_else(|e| panic!("{sys} on {}: {e}", wf.name));
            }
            // Stage windows are ordered and cover every function.
            let windows = &eval.sample_outcome.stage_windows;
            assert_eq!(windows.len(), wf.stage_count());
            for w in windows.windows(2) {
                assert!(w[0].1 <= w[1].0, "stages must not overlap");
            }
        }
    }
}

#[test]
fn chiron_pipeline_end_to_end_on_finra200() {
    let manager = Chiron::new(PlatformConfig::paper_calibrated());
    let wf = apps::finra(200);
    let deployment = manager.deploy(&wf, None, PgpMode::NativeThread);
    let outcome = manager.invoke(&wf, &deployment, 0).unwrap();
    assert_eq!(outcome.timelines.len(), 201);
    // All 200 validators executed after the fetch completed.
    let fetch_done = outcome.timeline(FunctionId(0)).completed;
    for i in 1..=200u32 {
        assert!(outcome.timeline(FunctionId(i)).exec_start >= fetch_done);
    }
}

#[test]
fn timelines_cover_end_to_end_latency() {
    let cfg = EvalConfig {
        requests: 1,
        ..EvalConfig::default()
    };
    for sys in [
        SystemKind::OpenFaas,
        SystemKind::Faastlane,
        SystemKind::Chiron,
    ] {
        let wf = apps::social_network();
        let eval = evaluate_system(sys, &wf, None, &cfg);
        let last_completion = eval
            .sample_outcome
            .timelines
            .iter()
            .map(|t| t.completed)
            .max()
            .unwrap();
        let e2e_ms = eval.sample_outcome.e2e.as_millis_f64();
        assert!(
            last_completion.as_millis_f64() <= e2e_ms + 1e-6,
            "{sys}: completion after e2e"
        );
        // The e2e exceeds completion only by return-path RPC costs.
        assert!(
            e2e_ms - last_completion.as_millis_f64() < 30.0,
            "{sys}: unexplained gap"
        );
    }
}

#[test]
fn generated_code_exists_for_all_chiron_sandboxes() {
    let manager = Chiron::default();
    for wf in [apps::slapp(), apps::movie_reviewing()] {
        for mode in [PgpMode::NativeThread, PgpMode::Mpk, PgpMode::Pool] {
            let d = manager.deploy(&wf, None, mode);
            assert_eq!(d.wraps.len(), d.plan().sandbox_count());
            for wrap in &d.wraps {
                assert!(wrap.handler_py.contains("def "));
            }
        }
    }
}

#[test]
fn plan_serde_roundtrip() {
    // Plans are serialisable artefacts (deployed alongside the wrap image).
    let wf = apps::finra(5);
    let manager = Chiron::default();
    let d = manager.deploy(&wf, None, PgpMode::NativeThread);
    let json = serde_json_roundtrip(d.plan());
    assert_eq!(&json, d.plan());
}

/// Round-trips through the serde data model without needing serde_json:
/// `DeploymentPlan` implements `Serialize`+`Deserialize`+`PartialEq`, so we
/// clone through the `serde` in-memory representation via bincode-free
/// manual encoding — here we simply exercise `Clone`+`PartialEq` and the
/// serde derives' existence at compile time.
fn serde_json_roundtrip(plan: &chiron::model::DeploymentPlan) -> chiron::model::DeploymentPlan {
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<chiron::model::DeploymentPlan>();
    plan.clone()
}
