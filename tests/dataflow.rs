//! Functional data-flow integration: drives a one-to-one execution's
//! intermediate data through the real in-memory object store (the way
//! OpenFaaS+MinIO passes state between function sandboxes) and checks that
//! payloads round-trip intact and that the modelled transfer latencies
//! agree with the platform's TransferIn/TransferOut accounting.

use bytes::Bytes;
use chiron::model::{apps, SystemKind};
use chiron::runtime::SpanKind;
use chiron::store::{ObjectStore, TransferModel};
use chiron::{evaluate_system, EvalConfig};

#[test]
fn one_to_one_dataflow_roundtrips_through_the_store() {
    let wf = apps::social_network();
    let model = TransferModel::paper_calibrated();
    let store = ObjectStore::new(model.minio);

    // Walk the workflow stage by stage, writing each function's output and
    // reading stage inputs downstream, with real payload bytes.
    let mut modelled_write = chiron::model::SimDuration::ZERO;
    let mut modelled_read = chiron::model::SimDuration::ZERO;
    let last = wf.stage_count() - 1;
    for (si, stage) in wf.stages.iter().enumerate() {
        for &fid in &stage.functions {
            if si > 0 {
                for &up in &wf.stages[si - 1].functions {
                    let key = format!("stage{}/{}", si - 1, wf.function(up).name);
                    let (data, lat) = store.get(&key).expect("upstream output present");
                    assert_eq!(data.len() as u64, wf.function(up).output_bytes);
                    modelled_read += lat;
                }
            }
            if si < last {
                let spec = wf.function(fid);
                let key = format!("stage{si}/{}", spec.name);
                let payload = Bytes::from(vec![fid.0 as u8; spec.output_bytes as usize]);
                modelled_write += store.put(key, payload);
            }
        }
    }

    // Every non-final function's output was written exactly once.
    let expected_objects: usize = wf.stages[..last].iter().map(|s| s.functions.len()).sum();
    assert_eq!(store.len(), expected_objects);
    let stats = store.stats();
    assert_eq!(stats.puts as usize, expected_objects);
    assert!(stats.bytes_written > 0);

    // The platform's accounted transfer time matches the same model:
    // writes are identical; reads differ only because the platform charges
    // one bulk stage-input read per function instead of per-object reads.
    let eval = evaluate_system(
        SystemKind::OpenFaas,
        &wf,
        None,
        &EvalConfig {
            requests: 1,
            ..EvalConfig::default()
        },
    );
    let platform_out = eval.sample_outcome.total(SpanKind::TransferOut);
    let diff = (platform_out.as_millis_f64() - modelled_write.as_millis_f64()).abs();
    assert!(diff < 1.0, "write accounting differs by {diff}ms");
    assert!(modelled_read > chiron::model::SimDuration::ZERO);
    assert!(eval.sample_outcome.total(SpanKind::TransferIn) > chiron::model::SimDuration::ZERO);
}

#[test]
fn store_contents_survive_concurrent_stage_fanout() {
    // Parallel downstream functions read the same upstream object
    // concurrently (the store must be thread-safe and non-destructive).
    let model = TransferModel::paper_calibrated();
    let store = std::sync::Arc::new(ObjectStore::new(model.minio));
    store.put("stage0/fetch", Bytes::from(vec![7u8; 4096]));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let store = store.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..25 {
                let (data, _) = store.get("stage0/fetch").unwrap();
                assert_eq!(data.len(), 4096);
                assert!(data.iter().all(|&b| b == 7));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(store.stats().gets, 200);
}
