//! End-to-end acceptance tests of the serving control plane, driven
//! through the `Chiron` facade (deploy → serve).

use chiron::serving::{FaultPlan, RouterPolicy, ServeConfig, Workload};
use chiron::{Chiron, PgpMode};
use chiron_deploy::NodeId;
use chiron_metrics::ArrivalProcess;
use chiron_model::{apps, SimTime};

fn deployed() -> (Chiron, chiron_model::Workflow, chiron::Deployment) {
    let chiron = Chiron::default();
    let wf = apps::finra(12);
    let deployment = chiron.deploy(&wf, None, PgpMode::NativeThread);
    (chiron, wf, deployment)
}

/// Two seeded runs produce byte-for-byte identical outcome records.
#[test]
fn seeded_serving_runs_are_reproducible() {
    let (chiron, wf, deployment) = deployed();
    let workload = Workload::step(20.0, 10.0, 2_000, 10_000)
        .with_arrivals(ArrivalProcess::Poisson { seed: 5 });
    let a = chiron
        .serve(
            &wf,
            &deployment,
            ServeConfig::paper_testbed(),
            &workload,
            99,
        )
        .unwrap();
    let b = chiron
        .serve(
            &wf,
            &deployment,
            ServeConfig::paper_testbed(),
            &workload,
            99,
        )
        .unwrap();
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.records, b.records);
    assert_eq!(a.replica_timeline, b.replica_timeline);
}

/// After a 10× traffic step the autoscaler returns tail latency to its
/// target: the cold-start transient is confined to the first part of the
/// step phase, and the steady-state p99 meets `AutoscalerConfig::p99_target`.
#[test]
fn p99_recovers_after_ten_x_traffic_step() {
    let (chiron, wf, deployment) = deployed();
    let config = ServeConfig::paper_testbed();
    let target = config.autoscaler.p99_target;
    let workload = Workload::step(10.0, 10.0, 1_000, 20_000);
    let report = chiron
        .serve(&wf, &deployment, config, &workload, 17)
        .unwrap();
    assert_eq!(report.lost, 0);
    assert!(report.scale_ups > 0, "the step must trigger scale-up");
    // The transient (queue built while replicas cold-start for 167 ms)
    // is visible at the head of the step phase...
    let whole_phase = report.tail_p99_of_phase(1, 0.0);
    // ...but the tail 70% of the phase meets the autoscaler's target.
    let steady = report.tail_p99_of_phase(1, 0.3);
    assert!(
        steady <= target,
        "steady-state p99 {steady} exceeds the {target} target (whole phase: {whole_phase})"
    );
}

/// Killing a node mid-run completes every accepted request: in-flight work
/// is re-queued by failure detection, never dropped.
#[test]
fn node_kill_mid_run_loses_nothing() {
    let (chiron, wf, deployment) = deployed();
    for router in RouterPolicy::ALL {
        let config = ServeConfig::paper_testbed().with_router(router);
        let faults = FaultPlan::none().kill_at(SimTime::from_millis_f64(30_000.0), NodeId(0));
        let workload =
            Workload::steady(40.0, 4_000).with_arrivals(ArrivalProcess::Poisson { seed: 2 });
        let report = chiron
            .serve_with_faults(&wf, &deployment, config, faults, &workload, 23)
            .unwrap();
        assert_eq!(report.accepted, 4_000, "{}", router.name());
        assert_eq!(
            report.completed,
            4_000,
            "{}: all accepted requests finish",
            router.name()
        );
        assert_eq!(report.lost, 0, "{}", router.name());
        assert!(
            report.replicas_failed > 0,
            "{}: the kill must hit replicas",
            router.name()
        );
        assert!(
            report.requeued_requests > 0,
            "{}: recovery re-queues, not drops",
            router.name()
        );
    }
}
