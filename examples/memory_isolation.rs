//! Memory isolation between wrap threads with MPK-style protection keys
//! (§4, Table 1).
//!
//! ```text
//! cargo run --example memory_isolation
//! ```
//!
//! Demonstrates the functional protection-key domain (private per-thread
//! arenas inside one shared address space) and the cost model that makes
//! Chiron pick MPK over WebAssembly SFI.

use chiron::isolation::{Access, IsolationCosts, MpkDomain};
use chiron::model::apps;

fn main() {
    // ---- functional semantics -------------------------------------------
    let domain = MpkDomain::new();
    const ORCHESTRATOR: u32 = 0;
    const RULE_A: u32 = 1;
    const RULE_B: u32 = 2;

    let input_a = domain.allocate(64).expect("keys available");
    let input_b = domain.allocate(64).expect("keys available");

    // The orchestrator writes each function thread's private input.
    domain.grant(ORCHESTRATOR, input_a.key, Access::ReadWrite);
    domain.grant(ORCHESTRATOR, input_b.key, Access::ReadWrite);
    domain
        .write(ORCHESTRATOR, input_a, 0, b"trade#1 AAPL 190.0")
        .unwrap();
    domain
        .write(ORCHESTRATOR, input_b, 0, b"trade#2 MSFT 410.5")
        .unwrap();

    // Each rule thread may only touch its own arena.
    domain.grant(RULE_A, input_a.key, Access::ReadWrite);
    domain.grant(RULE_B, input_b.key, Access::ReadWrite);

    let own = domain.read(RULE_A, input_a, 0, 18).unwrap();
    println!(
        "rule A reads its arena: {:?}",
        String::from_utf8_lossy(&own)
    );

    let stolen = domain.read(RULE_A, input_b, 0, 18);
    println!("rule A reads rule B's arena: {stolen:?}");
    assert!(stolen.is_err(), "cross-thread access must be denied");

    // ---- cost model ------------------------------------------------------
    println!("\nisolation costs (Table 1):");
    let fns = apps::slapp_reference_functions();
    for (name, costs) in [
        ("SFI", IsolationCosts::sfi()),
        ("MPK", IsolationCosts::mpk()),
    ] {
        println!(
            "  {name}: startup {}, interaction {}, fibonacci +{:.1}%, disk-io +{:.1}%",
            costs.startup,
            costs.interaction,
            costs.execution_overhead(&fns[1]) * 100.0,
            costs.execution_overhead(&fns[2]) * 100.0,
        );
    }
    println!(
        "\nMPK's negligible startup/interaction cost is why Chiron uses it \
         (not SFI) when thread memory privacy is required."
    );
}
