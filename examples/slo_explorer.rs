//! Sweeps the latency SLO and watches PGP trade resources for slack — the
//! m-to-n knob in action (§3.4, Fig. 11).
//!
//! ```text
//! cargo run --release --example slo_explorer
//! ```
//!
//! With a tight SLO, PGP must use many processes (true parallelism) and
//! CPUs; as the SLO relaxes, it collapses functions into threads and
//! returns CPUs, and the plan drifts from "many sandboxes, many processes"
//! towards "one sandbox, one process, many threads".

use chiron::model::{apps, PlatformConfig, SimDuration};
use chiron::{Chiron, PgpMode};

fn main() {
    let manager = Chiron::new(PlatformConfig::paper_calibrated());
    let workflow = apps::slapp();

    // Anchor the sweep at the performance-first optimum.
    let fastest = manager.deploy(&workflow, None, PgpMode::NativeThread);
    let optimum = fastest.schedule.predicted;
    println!(
        "workflow {} | performance-first predicted latency {}\n",
        workflow.name, optimum
    );
    println!(
        "{:>10} {:>12} {:>10} {:>6} {:>10} {:>9}",
        "SLO", "predicted", "processes", "cpus", "sandboxes", "met SLO"
    );
    for factor in [1.0f64, 1.2, 1.5, 2.0, 3.0, 5.0] {
        let slo = SimDuration::from_millis_f64(optimum.as_millis_f64() * factor);
        let deployment = manager.deploy(&workflow, Some(slo), PgpMode::NativeThread);
        let plan = deployment.plan();
        let processes: usize = plan
            .stages
            .iter()
            .map(|s| s.wraps.iter().map(|w| w.processes.len()).sum::<usize>())
            .max()
            .unwrap_or(0);
        println!(
            "{:>10} {:>12} {:>10} {:>6} {:>10} {:>9}",
            format!("{slo}"),
            format!("{}", deployment.schedule.predicted),
            processes,
            plan.total_cpus(),
            plan.sandbox_count(),
            deployment.schedule.met_slo,
        );
        // The ground truth must respect the plan the prediction promised.
        let outcome = manager
            .invoke(&workflow, &deployment, 7)
            .expect("valid plan");
        assert!(
            outcome.e2e.as_millis_f64() <= slo.as_millis_f64() * 1.05
                || !deployment.schedule.met_slo,
            "ground truth {} broke the SLO {}",
            outcome.e2e,
            slo
        );
    }
    println!(
        "\nReading the table top-down: as the SLO relaxes, PGP swaps \
         processes for GIL-sharing threads and hands CPUs back — the \
         non-uniform allocation of Observation 4."
    );
}
