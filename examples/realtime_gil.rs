//! Runs wrap workloads on **real OS threads** with an emulated GIL and
//! compares the measured wall-clock against the fluid simulator — the
//! pseudo-parallelism phenomenon of Fig. 2, live.
//!
//! ```text
//! cargo run --release --example realtime_gil
//! ```

use chiron::model::{RuntimeKind, Segment, SimDuration, SimTime, SyscallKind};
use chiron::runtime::{execute_sandbox, run_realtime, RtTask, ThreadTask};

fn cpu(ms: u64) -> Segment {
    Segment::cpu_ms(ms)
}

fn io(ms: u64) -> Segment {
    Segment::block_ms(SyscallKind::Sleep, ms as f64)
}

fn run_case(label: &str, workload: &[Vec<Segment>], runtime: RuntimeKind) {
    let interval = SimDuration::from_millis(5);
    let simulated = execute_sandbox(
        &workload
            .iter()
            .map(|segments| ThreadTask {
                process: 0,
                start: SimTime::ZERO,
                segments: segments.clone(),
            })
            .collect::<Vec<_>>(),
        4,
        runtime,
        interval,
    );
    let sim_ms = simulated
        .iter()
        .map(|r| r.end.as_millis_f64())
        .fold(0.0, f64::max);

    let real = run_realtime(
        &workload
            .iter()
            .map(|segments| RtTask {
                process: 0,
                segments: segments.clone(),
            })
            .collect::<Vec<_>>(),
        runtime,
        interval,
    );
    let real_ms = real
        .iter()
        .map(|r| r.finished.as_secs_f64() * 1e3)
        .fold(0.0, f64::max);

    println!("{label:<42} simulated {sim_ms:>7.1} ms | real threads {real_ms:>7.1} ms");
}

fn main() {
    println!(
        "4 CPUs available to the sandbox; each workload has 3 function \
         threads.\n"
    );

    let cpu_bound: Vec<Vec<Segment>> = vec![vec![cpu(30)], vec![cpu(30)], vec![cpu(30)]];
    run_case(
        "CPU-bound, GIL (pseudo-parallel)",
        &cpu_bound,
        RuntimeKind::PseudoParallel,
    );
    run_case(
        "CPU-bound, no GIL (Java/pool)",
        &cpu_bound,
        RuntimeKind::TrueParallel,
    );

    let io_heavy: Vec<Vec<Segment>> = vec![
        vec![cpu(5), io(40), cpu(5)],
        vec![io(45), cpu(5)],
        vec![cpu(5), io(40)],
    ];
    run_case(
        "I/O-heavy, GIL (blocking drops it)",
        &io_heavy,
        RuntimeKind::PseudoParallel,
    );
    run_case("I/O-heavy, no GIL", &io_heavy, RuntimeKind::TrueParallel);

    println!(
        "\nExpected shape: the GIL triples the CPU-bound makespan but barely \
         hurts the I/O-heavy one (Fig. 2 / Observation 3) — and the \
         simulator tracks the real threads."
    );
}
