//! Quickstart: deploy a serverless workflow with Chiron and invoke it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the full Fig. 9 pipeline: submit a workflow (FINRA with 5 parallel
//! trade-validation rules), let the Profiler measure each function, let PGP
//! partition the functions into wraps with a process/thread execution mode
//! each, inspect the generated orchestrator code, and route a request
//! through the deployed wraps.

use chiron::model::{apps, PlatformConfig};
use chiron::runtime::SpanKind;
use chiron::{Chiron, PgpMode};

fn main() {
    let manager = Chiron::new(PlatformConfig::paper_calibrated());
    let workflow = apps::finra(5);

    println!("== workflow: {} ==", workflow.name);
    for (si, stage) in workflow.stages.iter().enumerate() {
        let names: Vec<&str> = stage
            .functions
            .iter()
            .map(|&f| workflow.function(f).name.as_str())
            .collect();
        println!("  stage {si}: {names:?}");
    }

    // Deploy performance-first (no SLO): PGP picks the latency-optimal
    // m-to-n design.
    let deployment = manager.deploy(&workflow, None, PgpMode::NativeThread);
    let plan = deployment.plan();
    println!(
        "\n== PGP chose {} sandbox(es), {} CPUs, predicted latency {} ==",
        plan.sandbox_count(),
        plan.total_cpus(),
        deployment.schedule.predicted
    );
    for (si, stage) in plan.stages.iter().enumerate() {
        for (wi, wrap) in stage.wraps.iter().enumerate() {
            for proc in &wrap.processes {
                let names: Vec<&str> = proc
                    .functions
                    .iter()
                    .map(|&f| workflow.function(f).name.as_str())
                    .collect();
                println!(
                    "  stage {si} wrap {wi} [{}] {:?} -> {names:?}",
                    wrap.sandbox, proc.spawn
                );
            }
        }
    }

    println!("\n== generated orchestrator (first 12 lines) ==");
    for line in deployment.wraps[0].handler_py.lines().take(12) {
        println!("  {line}");
    }

    // Invoke a request.
    let outcome = manager
        .invoke(&workflow, &deployment, 0)
        .expect("valid plan");
    println!("\n== request executed: end-to-end {} ==", outcome.e2e);
    for t in &outcome.timelines {
        println!(
            "  {:<22} exec {:>7} startup {:>7} io {:>7} done at {:>9}",
            workflow.function(t.function).name,
            format!("{}", t.total(SpanKind::Exec)),
            format!("{}", t.startup_overhead()),
            format!("{}", t.total(SpanKind::Io)),
            format!("{}", t.completed)
        );
    }
}
