//! Dynamic DAGs (§7's future-work scenario, implemented): a workflow with
//! a data-dependent *switch* stage, pre-planned per variant and routed per
//! request — the Video-FFmpeg pattern where `upload`'s result decides
//! between `split` and `simple_process`.
//!
//! ```text
//! cargo run --example dynamic_workflow
//! ```

use chiron::model::{
    apps, BranchSelector, DynStage, DynamicWorkflow, FunctionId, FunctionSpec, PlatformConfig,
    Segment, SyscallKind,
};
use chiron::{Chiron, PgpMode};

fn main() {
    let _ = apps::finra(1); // keep the benchmark module linked for docs
    let f = |name: &str, cpu_ms: f64, out: u64| {
        FunctionSpec::new(
            name,
            vec![
                Segment::cpu_ms_f64(cpu_ms * 0.7),
                Segment::block_ms(SyscallKind::DiskIo, cpu_ms * 0.6),
                Segment::cpu_ms_f64(cpu_ms * 0.3),
            ],
        )
        .with_output_bytes(out)
    };

    let video = DynamicWorkflow {
        name: "VideoFFmpeg".into(),
        functions: vec![
            f("upload", 6.0, 9 << 20),          // 0: the probe decides
            f("simple_process", 25.0, 2 << 20), // 1: small files
            f("split_shard_a", 14.0, 3 << 20),  // 2: big files split...
            f("split_shard_b", 14.0, 3 << 20),  // 3
            f("split_shard_c", 14.0, 3 << 20),  // 4
            f("merge", 10.0, 2 << 20),          // 5
        ],
        stages: vec![
            DynStage::Static(vec![FunctionId(0)]),
            DynStage::Switch {
                selector: BranchSelector::OutputBytesAbove { threshold: 4 << 20 },
                branches: vec![
                    vec![FunctionId(1)],
                    vec![FunctionId(2), FunctionId(3), FunctionId(4)],
                ],
            },
            DynStage::Static(vec![FunctionId(5)]),
        ],
    };

    let manager = Chiron::new(PlatformConfig::paper_calibrated());
    println!(
        "dynamic workflow {}: {} switch stage(s), {} static variants\n",
        video.name,
        video.switch_count(),
        video.variant_count()
    );

    // ➊–➎: PGP pre-plans every variant offline.
    let deployment = manager.deploy_dynamic(&video, None, PgpMode::NativeThread);
    for (choices, wf, dep) in &deployment.variants {
        println!(
            "variant {choices:?}: {} functions, {} sandbox(es), {} CPUs, predicted {}",
            wf.function_count(),
            dep.plan().sandbox_count(),
            dep.plan().total_cpus(),
            dep.schedule.predicted,
        );
    }

    // ➏: requests route themselves by the upload's output size.
    let (choices, outcome) = manager
        .invoke_dynamic(&deployment, 1 << 20, 0)
        .expect("pre-planned variants cover every route");
    println!(
        "\nrequest routed to branch {choices:?} (the 9MB upload exceeds the \
         4MB split threshold); end-to-end {}",
        outcome.e2e
    );
}
