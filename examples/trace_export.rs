//! Exports a request's execution timeline as a Chrome trace — open the
//! produced file in `chrome://tracing` or <https://ui.perfetto.dev> to see
//! the paper's Fig. 5 interactively (fork ladders, GIL waits, I/O overlap).
//!
//! ```text
//! cargo run --example trace_export [out.json]
//! ```

use chiron::model::{apps, PlatformConfig};
use chiron::runtime::to_chrome_trace;
use chiron::{Chiron, PgpMode};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "finra5-trace.json".to_string());
    let manager = Chiron::new(PlatformConfig::paper_calibrated());
    let workflow = apps::finra(5);
    let deployment = manager.deploy(&workflow, None, PgpMode::NativeThread);
    let outcome = manager
        .invoke(&workflow, &deployment, 0)
        .expect("valid plan");
    let trace = to_chrome_trace(&workflow, &outcome);
    std::fs::write(&path, &trace).expect("writable output path");
    println!(
        "wrote {} ({} bytes) — load it at chrome://tracing or ui.perfetto.dev\n\
         end-to-end: {}, {} span events",
        path,
        trace.len(),
        outcome.e2e,
        trace.matches("\"ph\":\"X\"").count()
    );
}
