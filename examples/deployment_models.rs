//! Compares the one-to-one, many-to-one and m-to-n deployment models on
//! one workflow — a miniature of the paper's Fig. 13/16 evaluation.
//!
//! ```text
//! cargo run --release --example deployment_models [workflow]
//! ```
//!
//! `workflow` is one of `sn`, `mr`, `slapp`, `slapp-v`, `finra5`,
//! `finra50`, `finra100`, `finra200` (default `finra50`).

use chiron::model::{apps, SystemKind, Workflow};
use chiron::{evaluate_system, paper_slo, EvalConfig};

fn pick_workflow(arg: Option<&str>) -> Workflow {
    match arg.unwrap_or("finra50") {
        "sn" => apps::social_network(),
        "mr" => apps::movie_reviewing(),
        "slapp" => apps::slapp(),
        "slapp-v" => apps::slapp_v(),
        "finra5" => apps::finra(5),
        "finra50" => apps::finra(50),
        "finra100" => apps::finra(100),
        "finra200" => apps::finra(200),
        other => {
            eprintln!("unknown workflow {other}; using finra50");
            apps::finra(50)
        }
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let workflow = pick_workflow(arg.as_deref());
    let cfg = EvalConfig::default();
    let slo = paper_slo(&workflow);
    println!(
        "workflow {} | SLO = mean(Faastlane) + 10ms = {}\n",
        workflow.name, slo
    );
    println!(
        "{:<13} {:>12} {:>10} {:>6} {:>12} {:>14}",
        "system", "latency", "memory", "cpus", "max rps", "$/1M req"
    );
    for sys in [
        SystemKind::Asf,
        SystemKind::OpenFaas,
        SystemKind::Sand,
        SystemKind::Faastlane,
        SystemKind::FaastlaneT,
        SystemKind::FaastlanePlus,
        SystemKind::FaastlaneM,
        SystemKind::FaastlaneP,
        SystemKind::Chiron,
        SystemKind::ChironM,
        SystemKind::ChironP,
    ] {
        let sys_slo = matches!(
            sys,
            SystemKind::Chiron | SystemKind::ChironM | SystemKind::ChironP
        )
        .then_some(slo);
        let eval = evaluate_system(sys, &workflow, sys_slo, &cfg);
        println!(
            "{:<13} {:>12} {:>8.1}MB {:>6} {:>12.0} {:>13.2}$",
            sys.to_string(),
            format!("{}", eval.mean_latency),
            eval.usage.memory_mb(),
            eval.usage.cpus,
            eval.throughput.rps,
            eval.cost.usd_per_million,
        );
    }
    println!(
        "\nThe m-to-n rows (Chiron*) should dominate: lowest latency at the \
         fewest CPUs, hence the highest node throughput (paper: 1.3x-21.8x)."
    );
}
