//! Random-input property testing with a `proptest`-compatible surface for
//! what this workspace uses: the `proptest!` macro (with
//! `#![proptest_config]`), `Strategy` + `prop_map`, numeric-range and tuple
//! strategies, `prop::collection::vec`, `any::<T>()`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike the real proptest there is no shrinking and no persisted failure
//! seeds: each test draws `cases` deterministic samples from an RNG seeded
//! by the test's module path + name, and assertion failures panic with the
//! ordinary assert message. That keeps the properties exercised (and
//! reproducible) without the external dependency.

#![allow(clippy::all)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies by the `proptest!` runner.
pub type TestRng = StdRng;

/// Deterministic per-test RNG: FNV-1a over the test's full name.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Runner configuration; only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!((A), (A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random()
    }
}

pub struct Any<A>(PhantomData<A>);

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{($cfg) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{($crate::ProptestConfig::default()) $($rest)*}
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{($cfg) $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u8, u64)>> {
        prop::collection::vec((0u8..4, 1u64..10), 1..6)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in 1usize..=4, f in 0.5f64..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.5..2.5).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in arb_pairs(), flag in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((1..10).contains(b));
            }
            let _ = flag;
        }

        #[test]
        fn prop_map_applies(total in arb_pairs().prop_map(|v| v.len())) {
            prop_assert!((1..6).contains(&total));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::rng_for("x::y");
        let mut b = crate::rng_for("x::y");
        let va: Vec<u64> = (0..16)
            .map(|_| crate::Strategy::generate(&(0u64..100), &mut a))
            .collect();
        let vb: Vec<u64> = (0..16)
            .map(|_| crate::Strategy::generate(&(0u64..100), &mut b))
            .collect();
        assert_eq!(va, vb);
    }
}
