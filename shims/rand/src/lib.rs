//! Deterministic stand-in for the `rand` 0.9 API surface this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::random`, `Rng::random_range` and
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — not cryptographic and not the upstream
//! ChaCha12 `StdRng`, but statistically adequate for simulation jitter and
//! ML weight initialisation, and exactly reproducible from a seed, which is
//! the property the workspace relies on.

#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution
    /// (`f64`/`f32` in `[0, 1)`, uniform integers, fair `bool`).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range. The output
    /// type is an independent parameter (as in real rand 0.9) so that
    /// integer-literal bounds infer their width from how the result is
    /// used, e.g. `rng.random_range(1..64) * 1024u64`.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let (lo, hi, inclusive) = range.bounds();
        T::sample_range(self, lo, hi, inclusive)
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 stream (Steele, Lea & Flood 2014).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types sampleable by [`Rng::random`].
pub trait StandardUniform: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly sampleable over a bounded range.
pub trait SampleUniform: Sized {
    /// `inclusive` selects `lo..=hi` semantics; otherwise `lo..hi`.
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range forms accepted by [`Rng::random_range`], decomposed into bounds.
pub trait SampleRange<T> {
    fn bounds(self) -> (T, T, bool);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        let (lo, hi) = self.into_inner();
        (lo, hi, true)
    }
}

/// Unbiased-enough bounded integer via Lemire's multiply-shift reduction.
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                // Work in i128 so the span is exact for every integer width.
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "empty range in random_range");
                if span > u64::MAX as i128 {
                    return (lo_w + rng.next_u64() as i128) as $t;
                }
                (lo_w + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                assert!(lo < hi, "empty range in random_range");
                let unit: $t = StandardUniform::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_uniform!(f32, f64);

pub mod seq {
    use super::{bounded, Rng};

    /// Slice shuffling (Fisher–Yates), mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_stable() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(5u32..10);
            assert!((5..10).contains(&v));
            let w = rng.random_range(5u64..=10);
            assert!((5..=10).contains(&w));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bools_both_occur() {
        let mut rng = StdRng::seed_from_u64(1);
        let flips: Vec<bool> = (0..100).map(|_| rng.random()).collect();
        assert!(flips.iter().any(|&b| b));
        assert!(flips.iter().any(|&b| !b));
    }
}
