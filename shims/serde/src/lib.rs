//! Marker-trait stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its plan/profile
//! types so they remain serialisable artefacts once the real serde is
//! available, but never serialises anything at runtime. This shim keeps
//! those derives compiling offline: the traits are blanket-implemented and
//! the derive macros (re-exported from the sibling `serde_derive` shim)
//! expand to nothing.

#![allow(clippy::all)]

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T> DeserializeOwned for T {}
}

pub use serde_derive::{Deserialize, Serialize};
