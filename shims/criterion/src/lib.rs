//! Minimal wall-clock stand-in for the `criterion` API surface this
//! workspace uses: `Criterion`, `benchmark_group`/`sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! No statistics, outlier rejection, or HTML reports — each benchmark is
//! warmed up briefly, timed over a fixed number of samples, and the mean
//! ns/iter is printed. Good enough to smoke-test that benches run and to
//! eyeball relative magnitudes offline.

#![allow(clippy::all)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Label for one benchmark, optionally `function/parameter`-structured.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the closure under measurement; handed to every benchmark body.
pub struct Bencher {
    /// Total measured time and iteration count, accumulated by `iter`.
    elapsed: Duration,
    iters: u64,
    samples: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: let caches/allocators settle and estimate per-iter cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        // Aim for ~10ms of measurement per sample, at least 1 iter.
        let iters_per_sample = ((10_000_000 / per_iter.max(1)) as u64).clamp(1, 10_000_000);

        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += iters_per_sample;
        }
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        samples,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {id:<40} (no iterations recorded)");
    } else {
        let mean_ns = b.elapsed.as_nanos() / u128::from(b.iters);
        println!("bench {id:<40} {mean_ns:>12} ns/iter ({} iters)", b.iters);
    }
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 3 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Re-export point used by some criterion setups; provided for parity.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(1);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_benches_run() {
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        let mut count = 0;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| x * 2);
            count += 1;
        });
        group.finish();
        assert_eq!(count, 1);
    }
}
