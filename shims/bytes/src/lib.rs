//! Arc-backed stand-in for `bytes::Bytes`: a cheaply clonable, immutable
//! byte buffer. No zero-copy slicing — the workspace only constructs,
//! clones, measures, and compares payloads.

#![allow(clippy::all)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes(Arc::from(slice))
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes(Arc::from(slice))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(slice: &'static [u8]) -> Self {
        Bytes::from_static(slice)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec().len(), 1024);
    }
}
