//! `std::sync`-backed stand-in for the `parking_lot` API surface this
//! workspace uses: `Mutex`, `Condvar` (with `wait(&mut guard)`), and
//! `RwLock`. Like the real parking_lot — and unlike raw `std::sync` —
//! locks here are non-poisoning: a panic while holding a lock does not
//! make later acquisitions fail.

#![allow(clippy::all)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard wrapper; the inner std guard lives in an `Option` so that
/// [`Condvar::wait`] can take it out and put the re-acquired guard back.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// mutex behind `guard` (parking_lot signature: `&mut guard`, not
    /// guard-by-value like std).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(reacquired);
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn locks_do_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
