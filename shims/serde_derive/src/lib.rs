//! No-op stand-ins for serde's derive macros. The workspace uses
//! `#[derive(Serialize, Deserialize)]` purely as a compile-time marker (the
//! shimmed traits are blanket-implemented), so the derives expand to
//! nothing.

#![allow(clippy::all)]

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
