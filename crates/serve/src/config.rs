//! Serving-plane configuration: routing architecture, traffic shape, and
//! the knobs shared by the router, autoscaler, and failure detector.

use chiron_deploy::{ClusterConfig, PlacementPolicy};
use chiron_lifecycle::LifecycleConfig;
use chiron_metrics::ArrivalProcess;
use chiron_model::{PlatformConfig, ReplicaConfig, SimDuration};
use chiron_obs::{RegimeConfig, SloPolicy};
use serde::{Deserialize, Serialize};

use crate::autoscaler::AutoscalerConfig;

/// Request-scheduling architecture (§7's centralised-vs-decentralised
/// discussion, made operational).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// One cluster-wide FIFO behind a central gateway: every remote-wrap
    /// invocation detours through the scheduler (pays the centralised
    /// overhead of [`chiron_deploy::scheduling_architectures`]).
    CentralFifo,
    /// Archipelago-style partitioning: each node runs its own scheduler
    /// and queue; arrivals are sharded round-robin across nodes that host
    /// replicas, and wraps invoke each other directly (decentralised
    /// overhead).
    PartitionedByNode,
}

impl RouterPolicy {
    pub const ALL: [RouterPolicy; 2] = [RouterPolicy::CentralFifo, RouterPolicy::PartitionedByNode];

    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::CentralFifo => "central-fifo",
            RouterPolicy::PartitionedByNode => "partitioned",
        }
    }
}

/// One constant-rate segment of the offered load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficPhase {
    /// Mean arrival rate during this phase.
    pub rps: f64,
    /// Number of requests this phase contributes.
    pub requests: u64,
}

/// The open-loop request stream: phases played back to back, with gaps
/// drawn from the arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    pub phases: Vec<TrafficPhase>,
    pub arrivals: ArrivalProcess,
}

impl Workload {
    /// Constant-rate workload.
    pub fn steady(rps: f64, requests: u64) -> Self {
        Workload {
            phases: vec![TrafficPhase { rps, requests }],
            arrivals: ArrivalProcess::Uniform,
        }
    }

    /// A low-rate phase followed by a `factor`× step (the autoscaler
    /// stress scenario).
    pub fn step(base_rps: f64, factor: f64, base_requests: u64, step_requests: u64) -> Self {
        Workload {
            phases: vec![
                TrafficPhase {
                    rps: base_rps,
                    requests: base_requests,
                },
                TrafficPhase {
                    rps: base_rps * factor,
                    requests: step_requests,
                },
            ],
            arrivals: ArrivalProcess::Uniform,
        }
    }

    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    pub fn total_requests(&self) -> u64 {
        self.phases.iter().map(|p| p.requests).sum()
    }
}

/// Full serving-plane configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Node count, per-node capacity, cross-node hop cost.
    pub cluster: ClusterConfig,
    /// Calibrated platform constants (cold start, RPC, billing, …).
    pub platform: PlatformConfig,
    /// How replicas' sandboxes are packed onto nodes.
    pub placement: PlacementPolicy,
    /// Request-scheduling architecture.
    pub router: RouterPolicy,
    /// Replica bounds, keepalive, prewarm pool.
    pub replicas: ReplicaConfig,
    /// Scale-up/-down policy.
    pub autoscaler: AutoscalerConfig,
    /// Node-liveness probe period.
    pub heartbeat_interval: SimDuration,
    /// Consecutive missed heartbeats before a node is declared dead.
    pub heartbeat_miss_limit: u32,
    /// Relative half-width of the per-request service-time jitter
    /// (e.g. 0.05 → ±5%), drawn deterministically from the run seed.
    pub service_jitter: f64,
    /// Latency SLO and burn-rate alerting policy; `None` disables the
    /// monitor (and costs nothing on the completion path).
    pub slo: Option<SloPolicy>,
    /// Tiered sandbox-start pools (snapshot/restore, zygote fork).
    /// `None` keeps the legacy behaviour: a scalar prewarm pool of
    /// zero-latency handovers, then flat cold boots.
    pub lifecycle: Option<LifecycleConfig>,
    /// Online regime-change sensor (Page–Hinkley/CUSUM over sojourn
    /// residuals), evaluated at event time on the completion path.
    /// `None` disables it (and costs nothing per completion).
    pub regime: Option<RegimeConfig>,
}

impl ServeConfig {
    /// Paper-testbed defaults: 8 × (40 CPU / 128 GB) nodes, calibrated
    /// costs, packed placement, central FIFO routing.
    pub fn paper_testbed() -> Self {
        ServeConfig {
            cluster: ClusterConfig::paper_testbed(),
            platform: PlatformConfig::paper_calibrated(),
            placement: PlacementPolicy::Pack,
            router: RouterPolicy::CentralFifo,
            replicas: ReplicaConfig::default(),
            autoscaler: AutoscalerConfig::default(),
            heartbeat_interval: SimDuration::from_millis(500),
            heartbeat_miss_limit: 3,
            service_jitter: 0.05,
            slo: None,
            lifecycle: None,
            regime: None,
        }
    }

    pub fn with_router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    pub fn with_replicas(mut self, replicas: ReplicaConfig) -> Self {
        self.replicas = replicas;
        self
    }

    pub fn with_autoscaler(mut self, autoscaler: AutoscalerConfig) -> Self {
        self.autoscaler = autoscaler;
        self
    }

    pub fn with_slo(mut self, slo: SloPolicy) -> Self {
        self.slo = Some(slo);
        self
    }

    pub fn with_lifecycle(mut self, lifecycle: LifecycleConfig) -> Self {
        self.lifecycle = Some(lifecycle);
        self
    }

    pub fn with_regime(mut self, regime: RegimeConfig) -> Self {
        self.regime = Some(regime);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders() {
        let w = Workload::steady(100.0, 1000);
        assert_eq!(w.total_requests(), 1000);
        let s = Workload::step(10.0, 10.0, 200, 800);
        assert_eq!(s.total_requests(), 1000);
        assert!((s.phases[1].rps - 100.0).abs() < 1e-9);
    }

    #[test]
    fn testbed_defaults() {
        let c = ServeConfig::paper_testbed();
        assert_eq!(c.cluster.nodes, 8);
        assert_eq!(c.heartbeat_miss_limit, 3);
        assert!(c.service_jitter < 0.5);
    }
}
