//! Sharded multi-cluster serving: a federation of per-cluster event
//! loops under one deterministic epoch-barrier driver.
//!
//! ## Architecture
//!
//! A fleet is `clusters` independent copies of the single-cluster
//! simulation ([`crate::sim`]), each with its own router, autoscaler and
//! failure detector. Above them sits the **federation router**: it admits
//! the fleet-wide request stream by splitting it into per-cluster Poisson
//! substreams ([`chiron_metrics::ArrivalProcess::substream`]), sets each
//! cluster's admission rate from gossiped load, and moves queued work
//! from saturated clusters to drained peers (spillover).
//!
//! ## Determinism
//!
//! Time advances in fixed *epochs*. Within an epoch every cluster runs
//! its own event loop independently — clusters exchange nothing — so any
//! grouping of clusters into shards, executed by any number of worker
//! threads, replays the exact same per-cluster event sequences. At each
//! barrier a single-threaded coordinator walks the clusters **in cluster
//! order** and performs every cross-cluster action: it inspects queue
//! depths, sheds overload through [`Run::spill_excess`], schedules the
//! shed requests into receivers at `barrier + forward_latency`
//! ([`Run::inject_forwarded`]), and gossips next-epoch admission rates
//! ([`Run::set_rate`]). Because all cross-shard communication happens in
//! this deterministic sequential step, the fleet report is byte-identical
//! for every `(shards, workers)` choice — the proptest in
//! `chiron-bench/tests/fleet_determinism.rs` pins this.
//!
//! Spillover moves *counts*, not identities: every request of a workflow
//! is identical, so a saturated cluster pops its newest queued requests
//! (LIFO — the oldest keep their position and their latency), marks them
//! `forwarded`, and the receiver admits the same number as fresh
//! arrivals after the forwarding latency. No accepted request is ever
//! dropped: `fleet.lost == 0` unless a cluster deadlocks.

use crate::config::{ServeConfig, TrafficPhase, Workload};
use crate::faults::FaultPlan;
use crate::report::{FleetReport, ServeReport};
use crate::sim::{Run, ServeError, ServeSimulation};
use chiron_metrics::ArrivalProcess;
use chiron_model::{DeploymentPlan, SimDuration, SimTime, Workflow};
use chiron_obs::Trace;
use chiron_runtime::VirtualPlatform;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64 finaliser: decorrelated per-cluster seeds from the fleet
/// seed (the same construction the arrival substreams use).
fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fleet topology and federation policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of clusters; each is one full [`ServeConfig`] worth of
    /// nodes, router, autoscaler and failure detection.
    pub clusters: u32,
    /// Per-cluster configuration (all clusters are identical; locality
    /// weights express heterogeneous demand instead).
    pub cluster: ServeConfig,
    /// Barrier period of the federation driver. Within an epoch clusters
    /// run independently; spillover and rate gossip happen only at
    /// barriers, so this bounds the staleness of federation decisions.
    pub epoch: SimDuration,
    /// Cross-cluster forwarding latency: a spilled request re-enters a
    /// peer this long after the barrier that shed it.
    pub forward_latency: SimDuration,
    /// Queue depth above which a cluster sheds work at a barrier (and at
    /// or below which it accepts spillover).
    pub spill_threshold: u32,
    /// Relative admission weight of each cluster (geographic/demand
    /// locality). Length must equal `clusters`; uniform = balanced fleet.
    pub locality: Vec<f64>,
}

impl FleetConfig {
    /// A fleet of `clusters` paper-testbed clusters (8 nodes each) with
    /// uniform locality, half-second epochs and a 2 ms forwarding hop.
    pub fn paper_fleet(clusters: u32) -> Self {
        FleetConfig {
            clusters,
            cluster: ServeConfig::paper_testbed(),
            epoch: SimDuration::from_millis(500),
            forward_latency: SimDuration::from_millis(2),
            spill_threshold: 64,
            locality: vec![1.0; clusters as usize],
        }
    }

    pub fn with_cluster(mut self, cluster: ServeConfig) -> Self {
        self.cluster = cluster;
        self
    }

    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = epoch;
        self
    }

    pub fn with_spill(mut self, threshold: u32, forward_latency: SimDuration) -> Self {
        self.spill_threshold = threshold;
        self.forward_latency = forward_latency;
        self
    }

    pub fn with_locality(mut self, locality: Vec<f64>) -> Self {
        assert_eq!(
            locality.len(),
            self.clusters as usize,
            "one locality weight per cluster"
        );
        assert!(
            locality.iter().all(|&w| w > 0.0),
            "locality weights must be positive"
        );
        self.locality = locality;
        self
    }
}

/// One constant-rate segment of the fleet-wide offered load. Fleet
/// phases are time-bounded (not request-bounded): the open-loop rate is
/// split across clusters by gossiped weights, so no single cluster owns
/// a fixed request quota.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetPhase {
    /// Fleet-wide mean arrival rate.
    pub rps: f64,
    pub duration: SimDuration,
    /// Service-time multiplier every cluster applies while this phase is
    /// active (1.0 = calibrated service times). Stepping it between
    /// phases injects a fleet-wide latency regime shift — the scenario
    /// the online regime-change sensor is gated on detecting.
    pub service_multiplier: f64,
}

/// The fleet-wide open-loop request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetWorkload {
    pub phases: Vec<FleetPhase>,
    /// Parent arrival process; cluster `c` draws from `substream(c)`.
    pub arrivals: ArrivalProcess,
}

impl FleetWorkload {
    pub fn steady(rps: f64, duration: SimDuration) -> Self {
        FleetWorkload {
            phases: vec![FleetPhase {
                rps,
                duration,
                service_multiplier: 1.0,
            }],
            arrivals: ArrivalProcess::Poisson { seed: 0 },
        }
    }

    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    pub fn total_duration(&self) -> SimDuration {
        self.phases
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }
}

/// A configured fleet, reusable across runs. The warm service base is
/// profiled once on the virtual platform and shared by every cluster —
/// the per-run cost is pure event-loop work.
#[derive(Debug, Clone)]
pub struct FleetSimulation {
    config: FleetConfig,
    sims: Vec<ServeSimulation>,
}

impl FleetSimulation {
    pub fn new(
        workflow: Workflow,
        plan: DeploymentPlan,
        config: FleetConfig,
    ) -> Result<Self, ServeError> {
        assert!(config.clusters > 0, "a fleet needs at least one cluster");
        assert!(config.epoch > SimDuration::ZERO, "epoch must be positive");
        assert_eq!(
            config.locality.len(),
            config.clusters as usize,
            "one locality weight per cluster"
        );
        // Profile the plan once; all clusters serve the same deployment.
        let platform =
            VirtualPlatform::new(config.cluster.platform.clone()).with_cold_starts(false);
        let base = platform.execute(&workflow, &plan, 0)?.e2e;
        let sims = (0..config.clusters)
            .map(|_| {
                ServeSimulation::new(workflow.clone(), plan.clone(), config.cluster.clone())
                    .with_service_base_override(base)
            })
            .collect();
        Ok(FleetSimulation { config, sims })
    }

    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Applies a fault plan to one cluster's simulation: fleet faults
    /// are cluster-local (node ids in the plan index into that cluster's
    /// own nodes).
    pub fn with_cluster_faults(mut self, cluster: u32, faults: FaultPlan) -> Self {
        let slot = &mut self.sims[cluster as usize];
        *slot = slot.clone().with_faults(faults);
        self
    }

    /// Single-shard, single-worker run — the reference executions that
    /// every sharded run must reproduce byte for byte.
    pub fn run(&self, workload: &FleetWorkload, seed: u64) -> Result<FleetReport, ServeError> {
        self.run_sharded(workload, seed, 1, 1)
    }

    /// Runs the fleet with clusters grouped into `shards` contiguous
    /// blocks, advanced by up to `workers` threads between barriers.
    /// Sharding and worker count are pure execution policy: the returned
    /// report is byte-identical for every choice.
    pub fn run_sharded(
        &self,
        workload: &FleetWorkload,
        seed: u64,
        shards: usize,
        workers: usize,
    ) -> Result<FleetReport, ServeError> {
        self.run_sharded_traced(workload, seed, shards, workers)
            .map(|(report, _)| report)
    }

    /// [`Self::run_sharded`] plus the fleet-merged trace: each cluster
    /// records its events into its own banked buffer (so work-stealing
    /// never mixes clusters), and the parts are stitched in cluster
    /// order ([`Trace::chain`]) — the trace is byte-identical for every
    /// `(shards, workers)` too. Empty unless tracing is enabled.
    pub fn run_sharded_traced(
        &self,
        workload: &FleetWorkload,
        seed: u64,
        shards: usize,
        workers: usize,
    ) -> Result<(FleetReport, Trace), ServeError> {
        self.run_sharded_parts(workload, seed, shards, workers)
            .map(|(report, parts)| (report, Trace::chain(parts)))
    }

    /// [`Self::run_sharded_traced`] without the final stitch: the
    /// per-cluster trace parts come back in cluster order, still
    /// cluster-owned. This is the serving path's boundary — banking
    /// events is the run-time cost of tracing; stitching the parts into
    /// one fleet trace is analysis-plane work ([`Trace::chain`] is a
    /// flat copy the overhead figure excludes from its timed region, as
    /// it excludes attribution and the flight recorder).
    pub fn run_sharded_parts(
        &self,
        workload: &FleetWorkload,
        seed: u64,
        shards: usize,
        workers: usize,
    ) -> Result<(FleetReport, Vec<Trace>), ServeError> {
        assert!(!workload.phases.is_empty(), "fleet workload has no phases");
        assert!(
            workload.phases.iter().all(|p| p.rps > 0.0),
            "fleet phase rates must be positive"
        );
        let clusters = self.config.clusters as usize;
        let locality_sum: f64 = self.config.locality.iter().sum();
        let shares: Vec<f64> = self
            .config
            .locality
            .iter()
            .map(|l| l / locality_sum)
            .collect();

        // Per-cluster view of the workload: the phase table carries each
        // cluster's locality share of the offered rate (so merged
        // per-phase `offered_rps` sums back to the fleet rate) and zero
        // request quota — fleet phases are time-bounded, and the actual
        // admission rate is re-gossiped every epoch.
        let cluster_workloads: Vec<Workload> = (0..clusters)
            .map(|c| Workload {
                phases: workload
                    .phases
                    .iter()
                    .map(|p| TrafficPhase {
                        rps: p.rps * shares[c],
                        requests: 0,
                    })
                    .collect(),
                arrivals: workload.arrivals.substream(c as u32),
            })
            .collect();

        let mut phase_ends = Vec::with_capacity(workload.phases.len());
        let mut end = SimTime::ZERO;
        for p in &workload.phases {
            end += p.duration;
            phase_ends.push(end);
        }
        let total_end = end;

        let mut runs: Vec<Run<'_>> = Vec::with_capacity(clusters);
        for c in 0..clusters {
            let mut run = self.sims[c].fleet_cluster(
                &cluster_workloads[c],
                split_seed(seed, c as u64),
                c as u32,
                workload.phases[0].rps * shares[c],
            )?;
            // Offered load tells us the request-log size up front (±5%
            // slack for Poisson variance and spill-ins).
            let expected: f64 = workload
                .phases
                .iter()
                .map(|p| p.rps * shares[c] * p.duration.as_secs_f64())
                .sum();
            run.reserve_records((expected * 1.05) as usize + 64);
            run.set_phase(0, workload.phases[0].service_multiplier);
            runs.push(run);
        }

        let threshold = self.config.spill_threshold as usize;
        let hop_ns = u32::try_from(self.config.forward_latency.as_nanos()).unwrap_or(u32::MAX);
        let mut receivers: Vec<usize> = Vec::with_capacity(clusters);
        let mut queued: Vec<usize> = vec![0; clusters];
        let mut weights: Vec<f64> = vec![0.0; clusters];
        // Forwarding hops get fleet-unique ids in shed order; `pending`
        // holds one barrier's `(origin, local request id)` sheds and
        // `hop_batch` one receiver's `(hop, origin)` slice of them.
        let mut next_hop = 0u32;
        let mut shed_scratch: Vec<u64> = Vec::new();
        let mut pending: Vec<(usize, u64)> = Vec::new();
        let mut hop_batch: Vec<(u32, u16)> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut phase = 0usize;
        while now.as_nanos() < total_end.as_nanos() {
            let barrier = (now + self.config.epoch).min(phase_ends[phase]);
            advance_shards(&mut runs, barrier, shards, workers);

            // ---- coordinator: the only cross-cluster code, sequential
            // and in cluster order, so it is oblivious to sharding.
            for (c, run) in runs.iter().enumerate() {
                queued[c] = run.queued();
            }

            // Spillover: saturated clusters shed their newest queued
            // requests; receivers (drained-most first) absorb them after
            // the forwarding hop. Skipped when the whole fleet is hot —
            // moving work between saturated clusters only adds latency.
            receivers.clear();
            receivers.extend((0..clusters).filter(|&c| queued[c] <= threshold));
            if receivers.len() < clusters && !receivers.is_empty() {
                let mut shed_total = 0u64;
                pending.clear();
                for c in 0..clusters {
                    if queued[c] > threshold {
                        shed_scratch.clear();
                        shed_total += runs[c].spill_excess(threshold, &mut shed_scratch);
                        pending.extend(shed_scratch.iter().map(|&req| (c, req)));
                        queued[c] = threshold;
                    }
                }
                if shed_total > 0 {
                    receivers.sort_by_key(|&c| (queued[c], c));
                    let at = barrier + self.config.forward_latency;
                    let base = shed_total / receivers.len() as u64;
                    let rem = (shed_total % receivers.len() as u64) as usize;
                    // Receivers take consecutive slices of the shed list;
                    // each hop is noted at its origin (Forward) and
                    // announced to its receiver (→ RemoteAdmit).
                    let mut cursor = 0usize;
                    for (k, &c) in receivers.iter().enumerate() {
                        let take = (base + u64::from(k < rem)) as usize;
                        hop_batch.clear();
                        for &(origin, req) in &pending[cursor..cursor + take] {
                            let hop = next_hop;
                            next_hop += 1;
                            runs[origin].note_forward(barrier, req, hop, c as u16);
                            hop_batch.push((hop, origin as u16));
                        }
                        cursor += take;
                        runs[c].inject_forwarded(at, &hop_batch, hop_ns);
                    }
                }
            }

            now = barrier;
            if now.as_nanos() >= phase_ends[phase].as_nanos() {
                phase += 1;
                if phase < workload.phases.len() {
                    for run in runs.iter_mut() {
                        run.set_phase(phase as u16, workload.phases[phase].service_multiplier);
                    }
                }
            }

            // Rate gossip for the next epoch: each cluster's locality
            // weight, discounted by its backlog per usable replica.
            if phase < workload.phases.len() {
                let mut sum = 0.0;
                for c in 0..clusters {
                    let usable = runs[c].usable_replicas().max(1);
                    let backlog = queued[c] as f64 / f64::from(usable);
                    weights[c] = shares[c] / (1.0 + backlog);
                    sum += weights[c];
                }
                let rps = workload.phases[phase].rps;
                for c in 0..clusters {
                    runs[c].set_rate(rps * weights[c] / sum, now);
                }
            }
        }

        // Workload over: stop admitting, drain every backlog (spilled
        // requests still in flight land during the drain), merge.
        for run in runs.iter_mut() {
            run.stop_accepting();
        }
        advance_shards(&mut runs, SimTime::FAR_FUTURE, shards, workers);
        let mut reports: Vec<ServeReport> = Vec::with_capacity(clusters);
        let mut parts: Vec<Trace> = Vec::with_capacity(clusters);
        for run in runs {
            let (report, trace) = run.finish();
            reports.push(report);
            parts.push(trace);
        }
        Ok((FleetReport::merge(&reports), parts))
    }
}

/// Advances every cluster to the barrier: clusters are grouped into
/// `shards` contiguous blocks, and up to `workers` threads pull blocks
/// off a shared cursor (work stealing). Each block is touched by exactly
/// one thread per barrier, and blocks exchange nothing, so the execution
/// is deterministic for any `(shards, workers)`.
fn advance_shards(runs: &mut [Run<'_>], until: SimTime, shards: usize, workers: usize) {
    let shards = shards.clamp(1, runs.len().max(1));
    let group = runs.len().div_ceil(shards);
    if workers <= 1 || shards == 1 {
        for run in runs.iter_mut() {
            run.advance_until(until);
        }
        return;
    }
    let tasks: Vec<Mutex<&mut [Run<'_>]>> = runs.chunks_mut(group).map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let threads = workers.min(tasks.len());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                // Uncontended by construction: the cursor hands each
                // block to exactly one thread.
                let mut block = tasks[i].lock().expect("block lock");
                for run in block.iter_mut() {
                    run.advance_until(until);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_deploy::planners;
    use chiron_model::apps;

    fn fleet(clusters: u32) -> FleetSimulation {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf);
        FleetSimulation::new(wf, plan, FleetConfig::paper_fleet(clusters)).unwrap()
    }

    #[test]
    fn sharding_and_workers_never_change_the_bytes() {
        let sim = fleet(6);
        let workload = FleetWorkload::steady(600.0, SimDuration::from_millis(8_000));
        let reference = sim.run(&workload, 11).unwrap();
        assert!(reference.completed > 0);
        for (shards, workers) in [(2, 1), (3, 2), (6, 4), (6, 1)] {
            let sharded = sim.run_sharded(&workload, 11, shards, workers).unwrap();
            assert_eq!(
                reference.cluster_digests, sharded.cluster_digests,
                "shards={shards} workers={workers}"
            );
            assert_eq!(reference.digest(), sharded.digest());
            assert_eq!(reference, sharded);
        }
    }

    #[test]
    fn fleet_seeds_differ_across_clusters_and_runs() {
        let sim = fleet(3);
        let workload = FleetWorkload::steady(150.0, SimDuration::from_millis(4_000));
        let a = sim.run(&workload, 1).unwrap();
        let b = sim.run(&workload, 1).unwrap();
        assert_eq!(a.digest(), b.digest());
        let c = sim.run(&workload, 2).unwrap();
        assert_ne!(a.digest(), c.digest());
        // Substreams decorrelate the clusters: identical configs must not
        // produce identical per-cluster outcomes.
        assert!(
            a.cluster_digests.windows(2).any(|w| w[0] != w[1]),
            "clusters replayed the same stream"
        );
    }

    #[test]
    fn spillover_moves_load_and_loses_nothing() {
        // Two clusters, one cold: skew the locality so cluster 0 drinks
        // most of a rate beyond its own capacity (~160 rps for this
        // plan) while cluster 1 stays drained and can absorb spillover.
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf);
        let config = FleetConfig::paper_fleet(2)
            .with_locality(vec![9.0, 1.0])
            .with_spill(16, SimDuration::from_millis(2));
        let sim = FleetSimulation::new(wf, plan, config).unwrap();
        let workload = FleetWorkload::steady(300.0, SimDuration::from_millis(6_000));
        let report = sim.run(&workload, 5).unwrap();
        assert!(report.forwarded > 0, "overload must spill");
        assert_eq!(report.lost, 0, "spillover must not drop requests");
        assert_eq!(report.completed, report.accepted - report.forwarded);
    }

    #[test]
    fn traced_fleet_runs_are_byte_identical_and_causal() {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf);
        let config = FleetConfig::paper_fleet(2)
            .with_locality(vec![9.0, 1.0])
            .with_spill(16, SimDuration::from_millis(2));
        let sim = FleetSimulation::new(wf, plan, config).unwrap();
        let workload = FleetWorkload::steady(300.0, SimDuration::from_millis(6_000));
        chiron_obs::set_tracing(true);
        let (reference, ref_trace) = sim.run_sharded_traced(&workload, 5, 1, 1).unwrap();
        let (_, sharded_trace) = sim.run_sharded_traced(&workload, 5, 2, 2).unwrap();
        chiron_obs::set_tracing(false);
        assert!(reference.forwarded > 0, "scenario must spill");
        assert!(!ref_trace.is_empty());
        assert_eq!(
            ref_trace.digest(),
            sharded_trace.digest(),
            "fleet trace bytes must not depend on (shards, workers)"
        );
        let render = ref_trace.render();
        assert!(render.contains("ClusterContext"), "cluster id maps missing");
        // Every spilled request leaves a Forward at its origin and exactly
        // one paired RemoteAdmit at its receiver.
        assert_eq!(
            render.matches("Forward {").count() as u64,
            reference.forwarded
        );
        assert_eq!(
            render.matches("RemoteAdmit {").count() as u64,
            reference.forwarded
        );
    }

    #[test]
    fn regime_sensor_detects_injected_service_shift() {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf);
        let config = FleetConfig::paper_fleet(2).with_cluster(
            ServeConfig::paper_testbed().with_regime(chiron_obs::RegimeConfig::default()),
        );
        let sim = FleetSimulation::new(wf, plan, config).unwrap();
        let workload = FleetWorkload {
            phases: vec![
                FleetPhase {
                    rps: 400.0,
                    duration: SimDuration::from_millis(6_000),
                    service_multiplier: 1.0,
                },
                FleetPhase {
                    rps: 400.0,
                    duration: SimDuration::from_millis(4_000),
                    service_multiplier: 1.8,
                },
            ],
            arrivals: ArrivalProcess::Poisson { seed: 0 },
        };
        let report = sim.run(&workload, 3).unwrap();
        assert!(
            report.regime_changes > 0,
            "sensor must fire on the injected service-time shift"
        );
    }

    #[test]
    fn locality_weights_steer_admission() {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf);
        let config = FleetConfig::paper_fleet(2).with_locality(vec![3.0, 1.0]);
        let sim = FleetSimulation::new(wf, plan, config).unwrap();
        let workload = FleetWorkload::steady(200.0, SimDuration::from_millis(5_000));
        let report = sim.run(&workload, 7).unwrap();
        // The merged phase summary carries each cluster's offered share.
        assert_eq!(report.clusters, 2);
        assert!((report.phases[0].offered_rps - 200.0).abs() < 1e-6);
        assert!(report.lost == 0);
    }
}
