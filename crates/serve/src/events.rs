//! The discrete-event core: a time-ordered heap with a deterministic
//! tiebreaker.

use chiron_deploy::NodeId;
use chiron_model::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// What happens at an event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The next request of the open-loop stream arrives.
    Arrival,
    /// A replica finishes the request it dispatched at `dispatch_seq`.
    /// Stale completions (the replica died or the request was re-queued)
    /// are recognised by a sequence mismatch and dropped.
    Completion {
        replica: u32,
        request: u64,
        dispatch_seq: u64,
    },
    /// A cold-started or prewarmed replica becomes schedulable.
    ReplicaReady { replica: u32 },
    /// Periodic autoscaler evaluation.
    AutoscaleTick,
    /// A background prewarm-pool slot build (scheduled by the lifecycle
    /// policy on an autoscaler tick) completes. `tier` is the
    /// `StartTier` code of the pool gaining the slot.
    PoolSlotReady { tier: u8 },
    /// Periodic node-liveness check.
    Heartbeat,
    /// Fault injection: the node disappears (crash-stop).
    NodeKill { node: NodeId },
}

/// An event with its firing time and insertion sequence (the tiebreaker
/// that makes simultaneous events deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at.as_nanos(), self.seq).cmp(&(other.at.as_nanos(), other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of events in (time, insertion-order).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the heap. The simulator's heap holds one in-flight
    /// completion per busy replica plus a handful of control events, so a
    /// capacity around the replica cap avoids every growth reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { at, seq, kind }));
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        let t = |ns| SimTime::from_nanos(ns);
        q.push(t(20), EventKind::AutoscaleTick);
        q.push(t(10), EventKind::Arrival);
        q.push(t(10), EventKind::Heartbeat);
        let order: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            order,
            vec![
                EventKind::Arrival,
                EventKind::Heartbeat,
                EventKind::AutoscaleTick
            ]
        );
    }
}
