//! The discrete-event core: a time-ordered heap with a deterministic
//! tiebreaker.

use chiron_deploy::NodeId;
use chiron_model::SimTime;
use std::cmp::Ordering;

/// What happens at an event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The next request of the open-loop stream arrives.
    Arrival,
    /// A request another cluster spilled over arrives through the
    /// federation channel. Admitted like an arrival, but it neither
    /// advances the local arrival RNG nor re-arms the arrival train —
    /// so injections cannot perturb the cluster's own stream.
    Forwarded,
    /// A replica finishes the request it dispatched at `dispatch_seq`.
    /// Stale completions (the replica died or the request was re-queued)
    /// are recognised by a sequence mismatch and dropped.
    Completion {
        replica: u32,
        request: u64,
        dispatch_seq: u64,
    },
    /// A cold-started or prewarmed replica becomes schedulable.
    ReplicaReady { replica: u32 },
    /// Periodic autoscaler evaluation.
    AutoscaleTick,
    /// A background prewarm-pool slot build (scheduled by the lifecycle
    /// policy on an autoscaler tick) completes. `tier` is the
    /// `StartTier` code of the pool gaining the slot.
    PoolSlotReady { tier: u8 },
    /// Periodic node-liveness check.
    Heartbeat,
    /// Fault injection: the node disappears (crash-stop).
    NodeKill { node: NodeId },
}

/// An event with its firing time and insertion sequence (the tiebreaker
/// that makes simultaneous events deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at.as_nanos(), self.seq).cmp(&(other.at.as_nanos(), other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Packed total-order key: one u128 comparison instead of a
/// lexicographic pair — the heap's only comparison currency. The
/// `(time, seq)` pair is fully recoverable from the key, so the heap
/// stores only keys (and payloads beside them).
#[inline]
fn pack_key(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.as_nanos()) << 64) | u128::from(seq)
}

#[inline]
fn unpack_key(key: u128) -> (SimTime, u64) {
    (SimTime::from_nanos((key >> 64) as u64), key as u64)
}

/// Min-heap of events in (time, insertion-order).
///
/// Two deviations from a textbook binary heap, both pure speedups with a
/// bit-for-bit identical pop sequence (the `(time, seq)` key is a total
/// order, so *any* correct priority queue pops the same sequence):
///
/// - The open-loop arrival train — exactly one pending
///   [`EventKind::Arrival`] at any time — accounts for about half of all
///   queue traffic, so it lives in a dedicated one-element slot beside
///   the heap. The slot still draws its sequence number from the shared
///   counter and `pop`/`peek` order it against the heap top by the same
///   key.
/// - The heap itself is 4-ary — half the depth of a binary heap for the
///   sift-down that dominates pop cost — and stores keys and payloads in
///   parallel arrays, so the 4-child minimum scan reads one cache line of
///   packed `u128` keys instead of striding across 48-byte events.
#[derive(Debug)]
pub struct EventQueue {
    /// Packed `(time, seq)` keys, heap-ordered; `kinds[i]` is `keys[i]`'s
    /// payload.
    keys: Vec<u128>,
    kinds: Vec<EventKind>,
    /// The pending arrival's packed key, or [`EMPTY_SLOT`] when none. The
    /// slot's kind is always [`EventKind::Arrival`], so the key alone
    /// carries the whole event; the sentinel compares greater than every
    /// real key (`u64::MAX` nanoseconds is unreachable), which lets
    /// `pop` order slot against heap top with a single `u128` compare
    /// and no `Option` branching.
    slot_key: u128,
    next_seq: u64,
}

/// Sentinel for an empty arrival slot — later than any reachable event.
const EMPTY_SLOT: u128 = u128::MAX;

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            keys: Vec::new(),
            kinds: Vec::new(),
            slot_key: EMPTY_SLOT,
            next_seq: 0,
        }
    }

    /// Pre-sizes the heap. The simulator's heap holds one in-flight
    /// completion per busy replica plus a handful of control events, so a
    /// capacity around the replica cap avoids every growth reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            keys: Vec::with_capacity(capacity),
            kinds: Vec::with_capacity(capacity),
            slot_key: EMPTY_SLOT,
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // Opportunistic: a second simultaneous pending arrival (which the
        // simulator never produces) would simply fall through to the heap
        // with ordering intact.
        if matches!(kind, EventKind::Arrival) && self.slot_key == EMPTY_SLOT {
            self.slot_key = pack_key(at, seq);
        } else {
            self.keys.push(pack_key(at, seq));
            self.kinds.push(kind);
            self.sift_up(self.keys.len() - 1);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        let k = self.keys[i];
        let kind = self.kinds[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if k < self.keys[parent] {
                self.keys[i] = self.keys[parent];
                self.kinds[i] = self.kinds[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.keys[i] = k;
        self.kinds[i] = kind;
    }

    fn pop_heap(&mut self) -> Option<Event> {
        if self.keys.is_empty() {
            return None;
        }
        let key = self.keys[0];
        let kind = self.kinds[0];
        // Refill the root hole with the last element, pushed down by
        // copy (half the writes of a swap-based sift) — pop order is
        // unchanged because `(time, seq)` is a total order.
        let last_key = self.keys.pop().expect("non-empty heap");
        let last_kind = self.kinds.pop().expect("kinds tracks keys");
        let n = self.keys.len();
        if n > 0 {
            let mut i = 0;
            loop {
                let first = 4 * i + 1;
                if first >= n {
                    break;
                }
                let mut min = first;
                let mut min_key = self.keys[first];
                for child in first + 1..(first + 4).min(n) {
                    let k = self.keys[child];
                    if k < min_key {
                        min = child;
                        min_key = k;
                    }
                }
                if min_key < last_key {
                    self.keys[i] = min_key;
                    self.kinds[i] = self.kinds[min];
                    i = min;
                } else {
                    break;
                }
            }
            self.keys[i] = last_key;
            self.kinds[i] = last_kind;
        }
        let (at, seq) = unpack_key(key);
        Some(Event { at, seq, kind })
    }

    /// Heap-top key, or a sentinel past every real event when empty.
    #[inline]
    fn heap_key(&self) -> u128 {
        self.keys.first().copied().unwrap_or(EMPTY_SLOT)
    }

    #[inline]
    fn take_slot(&mut self) -> Event {
        let (at, seq) = unpack_key(self.slot_key);
        self.slot_key = EMPTY_SLOT;
        Event {
            at,
            seq,
            kind: EventKind::Arrival,
        }
    }

    pub fn pop(&mut self) -> Option<Event> {
        if self.slot_key <= self.heap_key() {
            // Both sentinels equal means both stores are empty.
            if self.slot_key == EMPTY_SLOT {
                return None;
            }
            Some(self.take_slot())
        } else {
            self.pop_heap()
        }
    }

    /// Pops the next event only if it fires strictly before `limit` — the
    /// fused peek-then-pop the epoch-barrier driver runs per event, so a
    /// cluster's loop stops exactly at the barrier without paying the
    /// slot-vs-heap comparison twice.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<Event> {
        let heap_key = self.heap_key();
        if self.slot_key <= heap_key {
            // The sentinel's time component is `u64::MAX`, never strictly
            // below a limit, so an empty queue falls out here too.
            if (self.slot_key >> 64) as u64 >= limit.as_nanos() {
                return None;
            }
            Some(self.take_slot())
        } else if ((heap_key >> 64) as u64) < limit.as_nanos() {
            self.pop_heap()
        } else {
            None
        }
    }

    /// The firing time and kind of the next event without removing it.
    pub fn peek(&self) -> Option<Event> {
        if self.slot_key <= self.heap_key() {
            if self.slot_key == EMPTY_SLOT {
                return None;
            }
            let (at, seq) = unpack_key(self.slot_key);
            Some(Event {
                at,
                seq,
                kind: EventKind::Arrival,
            })
        } else {
            let (at, seq) = unpack_key(*self.keys.first()?);
            Some(Event {
                at,
                seq,
                kind: self.kinds[0],
            })
        }
    }

    pub fn is_empty(&self) -> bool {
        self.slot_key == EMPTY_SLOT && self.keys.is_empty()
    }

    pub fn len(&self) -> usize {
        usize::from(self.slot_key != EMPTY_SLOT) + self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        let t = |ns| SimTime::from_nanos(ns);
        q.push(t(20), EventKind::AutoscaleTick);
        q.push(t(10), EventKind::Arrival);
        q.push(t(10), EventKind::Heartbeat);
        let order: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            order,
            vec![
                EventKind::Arrival,
                EventKind::Heartbeat,
                EventKind::AutoscaleTick
            ]
        );
    }

    #[test]
    fn arrival_slot_preserves_simultaneous_ordering() {
        // An arrival pushed *after* a same-timestamp event must still pop
        // second (higher seq), even though it bypasses the heap.
        let mut q = EventQueue::new();
        let t = |ns| SimTime::from_nanos(ns);
        q.push(t(10), EventKind::Heartbeat);
        q.push(t(10), EventKind::Arrival);
        q.push(t(5), EventKind::AutoscaleTick);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek().map(|e| e.kind), Some(EventKind::AutoscaleTick));
        let order: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            order,
            vec![
                EventKind::AutoscaleTick,
                EventKind::Heartbeat,
                EventKind::Arrival
            ]
        );
        assert!(q.is_empty());
    }
}
