//! Per-request outcome records and the run-level serving report.

use chiron_metrics::StreamingHistogram;
use chiron_model::SimDuration;
use chiron_obs::SloSummary;
use serde::{Deserialize, Serialize};

/// One completed (or still-unfinished) request's life cycle, in
/// simulation nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    pub arrival_ns: u64,
    /// Last dispatch time (re-dispatches overwrite); `None` before the
    /// first dispatch.
    pub dispatched_ns: Option<u64>,
    /// Completion time; `None` while in flight. An explicit option —
    /// rather than a 0 sentinel — so a request completing at exactly
    /// t=0 in a synthetic workload cannot be misread as unfinished.
    pub completed_ns: Option<u64>,
    /// Replica that served (or was serving) it.
    pub replica: u32,
    /// Workload phase the arrival fell in.
    pub phase: u16,
    /// Served by a replica whose on-path start window this request's
    /// burst triggered (first request of a replica that paid a startup
    /// latency — a full cold boot, a snapshot restore, or a zygote fork).
    pub cold_start: bool,
    /// `StartTier` code of the serving replica (0 warm, 1 snapshot,
    /// 2 zygote, 3 cold boot). Legacy runs only ever record 0 and 3.
    pub tier: u8,
    /// Times the request went back to a queue after its replica died.
    pub requeues: u16,
}

impl RequestRecord {
    /// Arrival-to-completion latency; zero while still in flight.
    pub fn sojourn(&self) -> SimDuration {
        match self.completed_ns {
            Some(done) => SimDuration::from_nanos(done.saturating_sub(self.arrival_ns)),
            None => SimDuration::ZERO,
        }
    }

    pub fn is_completed(&self) -> bool {
        self.completed_ns.is_some()
    }
}

/// Latency/volume summary of one workload phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    pub offered_rps: f64,
    pub completed: u64,
    pub mean_sojourn: SimDuration,
    pub p50_sojourn: SimDuration,
    pub p99_sojourn: SimDuration,
    pub max_sojourn: SimDuration,
    pub cold_starts: u64,
}

/// Everything a serving run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests admitted (open loop: every arrival is admitted).
    pub accepted: u64,
    pub completed: u64,
    /// `accepted - completed` — zero unless the cluster deadlocked.
    pub lost: u64,
    /// Requests that were re-queued at least once by failure recovery.
    pub requeued_requests: u64,
    /// Requests that paid an on-path sandbox cold start.
    pub cold_starts: u64,
    /// Time of the last completion.
    pub makespan: SimDuration,
    /// All completed sojourns (streaming, ~0.05% quantile error).
    pub sojourns: StreamingHistogram,
    pub phases: Vec<PhaseSummary>,
    pub peak_replicas: u32,
    pub scale_ups: u32,
    pub scale_downs: u32,
    pub replicas_failed: u32,
    /// Replica starts by `StartTier` code (warm handover, snapshot
    /// restore, zygote fork, cold boot) — every `ReplicaSpawn`, baseline
    /// included.
    pub starts_by_tier: [u32; 4],
    /// Replica-seconds of reserved capacity, and its dollar value under
    /// the paper's GB-s / GHz-s billing model. Includes the keepalive
    /// drain tail: an autoscaled replica idle at the last completion
    /// still occupies its nodes until its keepalive expires, and those
    /// memory-seconds are billed like any others.
    pub replica_seconds: f64,
    pub gb_seconds: f64,
    pub ghz_seconds: f64,
    pub cost_usd: f64,
    /// The busy/idle split of `replica_seconds`: time actually serving
    /// requests vs held reserved (startup, keepalive, queue droughts).
    pub busy_replica_seconds: f64,
    pub idle_replica_seconds: f64,
    /// The portion of `replica_seconds` charged after the last
    /// completion, while keepalives drained.
    pub keepalive_tail_seconds: f64,
    /// Standing rent of the prewarm pools (held snapshot slots, zygote
    /// fork slots and the shared zygote image), exact to the event
    /// granularity. Zero for legacy (non-lifecycle) runs.
    pub pool_gb_seconds: f64,
    pub pool_rent_usd: f64,
    /// `(time ns, usable replicas)` after every scaling/failure change.
    pub replica_timeline: Vec<(u64, u32)>,
    /// SLO compliance and burn-rate alert timeline; `None` when the run
    /// was configured without an SLO.
    pub slo: Option<SloSummary>,
    /// Per-request outcomes, indexed by request id (arrival order).
    pub records: Vec<RequestRecord>,
}

impl ServeReport {
    /// Order-sensitive FNV-1a digest over every per-request outcome —
    /// byte-for-byte reproducibility check for seeded runs.
    pub fn digest(&self) -> u64 {
        fn eat(hash: &mut u64, v: u64) {
            for byte in v.to_le_bytes() {
                *hash ^= u64::from(byte);
                *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        // Optional fields eat a presence tag before the value so
        // `Some(0)` and `None` digest differently.
        fn eat_opt(hash: &mut u64, v: Option<u64>) {
            match v {
                Some(x) => {
                    eat(hash, 1);
                    eat(hash, x);
                }
                None => eat(hash, 0),
            }
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for r in &self.records {
            eat(&mut hash, r.arrival_ns);
            eat_opt(&mut hash, r.dispatched_ns);
            eat_opt(&mut hash, r.completed_ns);
            eat(&mut hash, u64::from(r.replica));
            eat(
                &mut hash,
                u64::from(r.phase) << 32
                    | u64::from(r.tier) << 24
                    | u64::from(r.cold_start) << 16
                    | u64::from(r.requeues),
            );
        }
        eat(&mut hash, self.accepted);
        eat(&mut hash, self.completed);
        hash
    }

    /// Fraction of completed requests that paid an on-path cold start.
    pub fn cold_start_fraction(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.cold_starts as f64 / self.completed as f64
    }

    /// Replica-start fractions per tier, in `StartTier` code order
    /// (all-zero when the run never started a replica).
    pub fn tier_start_fractions(&self) -> [f64; 4] {
        let total: u32 = self.starts_by_tier.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        self.starts_by_tier.map(|n| f64::from(n) / f64::from(total))
    }

    /// Full serving bill: reserved replica capacity plus the prewarm
    /// pools' standing rent. This is the cost axis the lifecycle figure
    /// compares tier mixes on.
    pub fn total_cost_usd(&self) -> f64 {
        self.cost_usd + self.pool_rent_usd
    }

    /// p99 sojourn over the tail of one phase: completed requests of the
    /// phase, in arrival order, after skipping the first `skip_fraction`
    /// (the scale-up transient). This is the steady-state view the
    /// autoscaler's latency target is judged against.
    pub fn tail_p99_of_phase(&self, phase: usize, skip_fraction: f64) -> SimDuration {
        assert!((0.0..1.0).contains(&skip_fraction));
        let phase = phase as u16;
        let in_phase: Vec<&RequestRecord> = self
            .records
            .iter()
            .filter(|r| r.phase == phase && r.is_completed())
            .collect();
        let skip = (in_phase.len() as f64 * skip_fraction).floor() as usize;
        let mut hist = StreamingHistogram::new();
        for r in &in_phase[skip.min(in_phase.len())..] {
            hist.record(r.sojourn());
        }
        hist.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(arrival: u64, completed: u64, phase: u16) -> RequestRecord {
        RequestRecord {
            arrival_ns: arrival,
            dispatched_ns: Some(arrival),
            completed_ns: Some(completed),
            replica: 0,
            phase,
            cold_start: false,
            tier: 0,
            requeues: 0,
        }
    }

    fn report(records: Vec<RequestRecord>) -> ServeReport {
        let mut sojourns = StreamingHistogram::new();
        for r in &records {
            sojourns.record(r.sojourn());
        }
        ServeReport {
            accepted: records.len() as u64,
            completed: records.len() as u64,
            lost: 0,
            requeued_requests: 0,
            cold_starts: 0,
            makespan: SimDuration::from_nanos(
                records
                    .iter()
                    .filter_map(|r| r.completed_ns)
                    .max()
                    .unwrap_or(0),
            ),
            sojourns,
            phases: Vec::new(),
            peak_replicas: 1,
            scale_ups: 0,
            scale_downs: 0,
            replicas_failed: 0,
            starts_by_tier: [0; 4],
            replica_seconds: 0.0,
            gb_seconds: 0.0,
            ghz_seconds: 0.0,
            cost_usd: 0.0,
            busy_replica_seconds: 0.0,
            idle_replica_seconds: 0.0,
            keepalive_tail_seconds: 0.0,
            pool_gb_seconds: 0.0,
            pool_rent_usd: 0.0,
            replica_timeline: Vec::new(),
            slo: None,
            records,
        }
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = report(vec![record(1, 10, 0), record(2, 20, 0)]);
        let b = report(vec![record(1, 10, 0), record(2, 20, 0)]);
        assert_eq!(a.digest(), b.digest());
        let c = report(vec![record(2, 20, 0), record(1, 10, 0)]);
        assert_ne!(a.digest(), c.digest());
        let d = report(vec![record(1, 10, 0), record(2, 21, 0)]);
        assert_ne!(a.digest(), d.digest());
        // The serving tier is part of the observable outcome.
        let mut tiered = record(1, 10, 0);
        tiered.tier = 2;
        let e = report(vec![tiered, record(2, 20, 0)]);
        assert_ne!(a.digest(), e.digest());
    }

    #[test]
    fn completion_at_t0_is_not_misclassified() {
        // The old 0-sentinel encoding could not tell "completed at t=0"
        // from "in flight"; the Option encoding can, and the two digest
        // differently.
        let mut r = record(0, 0, 0);
        assert!(r.is_completed());
        assert_eq!(r.sojourn(), SimDuration::ZERO);
        let completed = report(vec![r]).digest();
        r.completed_ns = None;
        r.dispatched_ns = None;
        assert!(!r.is_completed());
        let in_flight = report(vec![r]).digest();
        assert_ne!(completed, in_flight);
    }

    #[test]
    fn tail_p99_skips_transient() {
        // Phase 1: 10 slow requests (transient) then 90 fast ones.
        let mut records = Vec::new();
        for i in 0..10u64 {
            records.push(record(i, i + 1_000_000_000, 1)); // 1s sojourn
        }
        for i in 10..100u64 {
            records.push(record(i, i + 1_000_000, 1)); // 1ms sojourn
        }
        let rep = report(records);
        let with_transient = rep.tail_p99_of_phase(1, 0.0);
        let steady = rep.tail_p99_of_phase(1, 0.2);
        assert!(with_transient > SimDuration::from_millis(500));
        assert!(steady < SimDuration::from_millis(2));
    }
}
