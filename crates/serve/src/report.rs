//! Per-request outcome records and the run-level serving report.

use chiron_metrics::StreamingHistogram;
use chiron_model::SimDuration;
use chiron_obs::SloSummary;
use serde::{Deserialize, Serialize};

/// One completed (or still-unfinished) request's life cycle, in
/// simulation nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    pub arrival_ns: u64,
    /// Last dispatch time (re-dispatches overwrite); `None` before the
    /// first dispatch.
    pub dispatched_ns: Option<u64>,
    /// Completion time; `None` while in flight. An explicit option —
    /// rather than a 0 sentinel — so a request completing at exactly
    /// t=0 in a synthetic workload cannot be misread as unfinished.
    pub completed_ns: Option<u64>,
    /// Replica that served (or was serving) it.
    pub replica: u32,
    /// Workload phase the arrival fell in.
    pub phase: u16,
    /// Served by a replica whose on-path start window this request's
    /// burst triggered (first request of a replica that paid a startup
    /// latency — a full cold boot, a snapshot restore, or a zygote fork).
    pub cold_start: bool,
    /// `StartTier` code of the serving replica (0 warm, 1 snapshot,
    /// 2 zygote, 3 cold boot). Legacy runs only ever record 0 and 3.
    pub tier: u8,
    /// Times the request went back to a queue after its replica died.
    pub requeues: u16,
    /// Spilled to another cluster by the federation router while still
    /// queued: the request leaves this cluster's accounting (it is not
    /// lost) and completes — with a fresh record — at the receiver.
    pub forwarded: bool,
}

impl RequestRecord {
    /// Arrival-to-completion latency; zero while still in flight.
    pub fn sojourn(&self) -> SimDuration {
        match self.completed_ns {
            Some(done) => SimDuration::from_nanos(done.saturating_sub(self.arrival_ns)),
            None => SimDuration::ZERO,
        }
    }

    pub fn is_completed(&self) -> bool {
        self.completed_ns.is_some()
    }
}

/// Latency/volume summary of one workload phase.
///
/// Carries the phase's full streaming histogram next to the derived
/// scalars, so per-cluster phase summaries merge *exactly* (bucket counts
/// add) instead of approximating percentiles from pre-reduced numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    pub offered_rps: f64,
    pub completed: u64,
    pub mean_sojourn: SimDuration,
    pub p50_sojourn: SimDuration,
    pub p99_sojourn: SimDuration,
    pub max_sojourn: SimDuration,
    pub cold_starts: u64,
    /// Completed sojourns of this phase (the source of the scalars above).
    pub sojourns: StreamingHistogram,
}

impl PhaseSummary {
    /// Builds the summary from a phase's sojourn histogram.
    pub fn from_histogram(
        offered_rps: f64,
        completed: u64,
        cold_starts: u64,
        sojourns: StreamingHistogram,
    ) -> Self {
        PhaseSummary {
            offered_rps,
            completed,
            mean_sojourn: sojourns.mean(),
            p50_sojourn: sojourns.percentile(0.50),
            p99_sojourn: sojourns.percentile(0.99),
            max_sojourn: sojourns.max(),
            cold_starts,
            sojourns,
        }
    }

    /// Folds another cluster's view of the same phase into this one.
    /// Histogram buckets add, so the merged percentiles equal those of
    /// the union of the underlying samples; offered rates add because
    /// each cluster served a disjoint slice of the fleet stream.
    pub fn absorb(&mut self, other: &PhaseSummary) {
        self.offered_rps += other.offered_rps;
        self.completed += other.completed;
        self.cold_starts += other.cold_starts;
        self.sojourns.merge(&other.sojourns);
        self.mean_sojourn = self.sojourns.mean();
        self.p50_sojourn = self.sojourns.percentile(0.50);
        self.p99_sojourn = self.sojourns.percentile(0.99);
        self.max_sojourn = self.sojourns.max();
    }
}

/// Everything a serving run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests admitted (open loop: every arrival is admitted).
    pub accepted: u64,
    pub completed: u64,
    /// `accepted - completed - forwarded_out` — zero unless the cluster
    /// deadlocked.
    pub lost: u64,
    /// Requests this cluster admitted but spilled to a peer through the
    /// federation router; they complete (and are counted) at the
    /// receiver. Always zero for standalone (non-federated) runs.
    pub forwarded_out: u64,
    /// Requests that were re-queued at least once by failure recovery.
    pub requeued_requests: u64,
    /// Requests that paid an on-path sandbox cold start.
    pub cold_starts: u64,
    /// Time of the last completion.
    pub makespan: SimDuration,
    /// All completed sojourns (streaming, ~0.05% quantile error).
    pub sojourns: StreamingHistogram,
    pub phases: Vec<PhaseSummary>,
    pub peak_replicas: u32,
    pub scale_ups: u32,
    pub scale_downs: u32,
    pub replicas_failed: u32,
    /// Replica starts by `StartTier` code (warm handover, snapshot
    /// restore, zygote fork, cold boot) — every `ReplicaSpawn`, baseline
    /// included.
    pub starts_by_tier: [u32; 4],
    /// Replica-seconds of reserved capacity, and its dollar value under
    /// the paper's GB-s / GHz-s billing model. Includes the keepalive
    /// drain tail: an autoscaled replica idle at the last completion
    /// still occupies its nodes until its keepalive expires, and those
    /// memory-seconds are billed like any others.
    pub replica_seconds: f64,
    pub gb_seconds: f64,
    pub ghz_seconds: f64,
    pub cost_usd: f64,
    /// The busy/idle split of `replica_seconds`: time actually serving
    /// requests vs held reserved (startup, keepalive, queue droughts).
    pub busy_replica_seconds: f64,
    pub idle_replica_seconds: f64,
    /// The portion of `replica_seconds` charged after the last
    /// completion, while keepalives drained.
    pub keepalive_tail_seconds: f64,
    /// Standing rent of the prewarm pools (held snapshot slots, zygote
    /// fork slots and the shared zygote image), exact to the event
    /// granularity. Zero for legacy (non-lifecycle) runs.
    pub pool_gb_seconds: f64,
    pub pool_rent_usd: f64,
    /// `(time ns, usable replicas)` after every scaling/failure change.
    pub replica_timeline: Vec<(u64, u32)>,
    /// SLO compliance and burn-rate alert timeline; `None` when the run
    /// was configured without an SLO.
    pub slo: Option<SloSummary>,
    /// Regime changes the online sensor fired (zero when the run was
    /// configured without a `RegimeConfig`).
    pub regime_changes: u32,
    /// Per-request outcomes, indexed by request id (arrival order).
    pub records: Vec<RequestRecord>,
}

impl ServeReport {
    /// Order-sensitive FNV-1a digest over every per-request outcome —
    /// byte-for-byte reproducibility check for seeded runs.
    pub fn digest(&self) -> u64 {
        fn eat(hash: &mut u64, v: u64) {
            for byte in v.to_le_bytes() {
                *hash ^= u64::from(byte);
                *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        // Optional fields eat a presence tag before the value so
        // `Some(0)` and `None` digest differently.
        fn eat_opt(hash: &mut u64, v: Option<u64>) {
            match v {
                Some(x) => {
                    eat(hash, 1);
                    eat(hash, x);
                }
                None => eat(hash, 0),
            }
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for r in &self.records {
            eat(&mut hash, r.arrival_ns);
            eat_opt(&mut hash, r.dispatched_ns);
            eat_opt(&mut hash, r.completed_ns);
            eat(&mut hash, u64::from(r.replica));
            eat(
                &mut hash,
                u64::from(r.phase) << 32
                    | u64::from(r.tier) << 24
                    | u64::from(r.forwarded) << 17
                    | u64::from(r.cold_start) << 16
                    | u64::from(r.requeues),
            );
        }
        eat(&mut hash, self.accepted);
        eat(&mut hash, self.completed);
        hash
    }

    /// Fraction of completed requests that paid an on-path cold start.
    pub fn cold_start_fraction(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.cold_starts as f64 / self.completed as f64
    }

    /// Replica-start fractions per tier, in `StartTier` code order
    /// (all-zero when the run never started a replica).
    pub fn tier_start_fractions(&self) -> [f64; 4] {
        let total: u32 = self.starts_by_tier.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        self.starts_by_tier.map(|n| f64::from(n) / f64::from(total))
    }

    /// Full serving bill: reserved replica capacity plus the prewarm
    /// pools' standing rent. This is the cost axis the lifecycle figure
    /// compares tier mixes on.
    pub fn total_cost_usd(&self) -> f64 {
        self.cost_usd + self.pool_rent_usd
    }

    /// p99 sojourn over the tail of one phase: completed requests of the
    /// phase, in arrival order, after skipping the first `skip_fraction`
    /// (the scale-up transient). This is the steady-state view the
    /// autoscaler's latency target is judged against.
    pub fn tail_p99_of_phase(&self, phase: usize, skip_fraction: f64) -> SimDuration {
        assert!((0.0..1.0).contains(&skip_fraction));
        let phase = phase as u16;
        let in_phase: Vec<&RequestRecord> = self
            .records
            .iter()
            .filter(|r| r.phase == phase && r.is_completed())
            .collect();
        let skip = (in_phase.len() as f64 * skip_fraction).floor() as usize;
        let mut hist = StreamingHistogram::new();
        for r in &in_phase[skip.min(in_phase.len())..] {
            hist.record(r.sojourn());
        }
        hist.percentile(0.99)
    }
}

/// The federation's merged view of one fleet run: per-cluster
/// [`ServeReport`]s folded *exactly* — streaming histograms merge bucket
/// by bucket (so fleet p50/p99 equal the percentiles of the union of all
/// sojourns), counters and billing sum in cluster order, makespan takes
/// the max, and reproducibility is pinned by a digest-of-digests.
///
/// Per-request records stay in the cluster reports; the fleet view keeps
/// only each cluster's digest, so merging ten million requests costs
/// histogram-merge time, not a re-sort of the records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    pub clusters: u32,
    /// Locally-admitted arrivals summed over clusters, spillover
    /// re-admissions included.
    pub accepted: u64,
    pub completed: u64,
    /// Requests admitted somewhere but finished nowhere. Zero unless a
    /// cluster deadlocked: spillover moves work, it never drops it.
    pub lost: u64,
    /// Cross-cluster spillover volume (each forwarded request is counted
    /// once, at the cluster that shed it).
    pub forwarded: u64,
    pub requeued_requests: u64,
    pub cold_starts: u64,
    pub makespan: SimDuration,
    pub sojourns: StreamingHistogram,
    pub phases: Vec<PhaseSummary>,
    /// Sum of per-cluster peaks — fleet capacity actually stood up.
    pub peak_replicas: u32,
    pub scale_ups: u32,
    pub scale_downs: u32,
    pub replicas_failed: u32,
    pub starts_by_tier: [u32; 4],
    pub replica_seconds: f64,
    pub gb_seconds: f64,
    pub ghz_seconds: f64,
    pub cost_usd: f64,
    pub busy_replica_seconds: f64,
    pub idle_replica_seconds: f64,
    pub keepalive_tail_seconds: f64,
    pub pool_gb_seconds: f64,
    pub pool_rent_usd: f64,
    pub slo_alerts_fired: u32,
    /// Fleet-merged SLO view: per-cluster summaries folded exactly in
    /// cluster order ([`SloSummary::absorb`] — counts and alert time add,
    /// transitions interleave by event time, compliance is recomputed
    /// from merged totals). `None` when no cluster ran with an SLO.
    pub slo: Option<SloSummary>,
    /// Regime changes fired across the fleet (sum of cluster counts).
    pub regime_changes: u32,
    /// Per-cluster report digests, in cluster order.
    pub cluster_digests: Vec<u64>,
}

impl FleetReport {
    /// Folds per-cluster reports (in cluster order) into the fleet view.
    pub fn merge(reports: &[ServeReport]) -> FleetReport {
        assert!(!reports.is_empty(), "a fleet has at least one cluster");
        let mut sojourns = StreamingHistogram::new();
        let mut phases: Vec<PhaseSummary> = Vec::new();
        let mut out = FleetReport {
            clusters: reports.len() as u32,
            accepted: 0,
            completed: 0,
            lost: 0,
            forwarded: 0,
            requeued_requests: 0,
            cold_starts: 0,
            makespan: SimDuration::ZERO,
            sojourns: StreamingHistogram::new(),
            phases: Vec::new(),
            peak_replicas: 0,
            scale_ups: 0,
            scale_downs: 0,
            replicas_failed: 0,
            starts_by_tier: [0; 4],
            replica_seconds: 0.0,
            gb_seconds: 0.0,
            ghz_seconds: 0.0,
            cost_usd: 0.0,
            busy_replica_seconds: 0.0,
            idle_replica_seconds: 0.0,
            keepalive_tail_seconds: 0.0,
            pool_gb_seconds: 0.0,
            pool_rent_usd: 0.0,
            slo_alerts_fired: 0,
            slo: None,
            regime_changes: 0,
            cluster_digests: Vec::with_capacity(reports.len()),
        };
        for r in reports {
            out.accepted += r.accepted;
            out.completed += r.completed;
            out.lost += r.lost;
            out.forwarded += r.forwarded_out;
            out.requeued_requests += r.requeued_requests;
            out.cold_starts += r.cold_starts;
            out.makespan = out.makespan.max(r.makespan);
            sojourns.merge(&r.sojourns);
            if phases.is_empty() {
                phases = r.phases.clone();
            } else {
                assert_eq!(
                    phases.len(),
                    r.phases.len(),
                    "clusters of one fleet run share the workload's phases"
                );
                for (merged, p) in phases.iter_mut().zip(&r.phases) {
                    merged.absorb(p);
                }
            }
            out.peak_replicas += r.peak_replicas;
            out.scale_ups += r.scale_ups;
            out.scale_downs += r.scale_downs;
            out.replicas_failed += r.replicas_failed;
            for (total, &tier) in out.starts_by_tier.iter_mut().zip(&r.starts_by_tier) {
                *total += tier;
            }
            out.replica_seconds += r.replica_seconds;
            out.gb_seconds += r.gb_seconds;
            out.ghz_seconds += r.ghz_seconds;
            out.cost_usd += r.cost_usd;
            out.busy_replica_seconds += r.busy_replica_seconds;
            out.idle_replica_seconds += r.idle_replica_seconds;
            out.keepalive_tail_seconds += r.keepalive_tail_seconds;
            out.pool_gb_seconds += r.pool_gb_seconds;
            out.pool_rent_usd += r.pool_rent_usd;
            if let Some(slo) = &r.slo {
                out.slo_alerts_fired += slo.alerts_fired;
                out.slo.get_or_insert_with(SloSummary::empty).absorb(slo);
            }
            out.regime_changes += r.regime_changes;
            out.cluster_digests.push(r.digest());
        }
        out.sojourns = sojourns;
        out.phases = phases;
        out
    }

    /// Digest-of-digests: FNV-1a over every `(cluster, digest)` pair plus
    /// the fleet counters. Byte-identical cluster outcomes — for any
    /// shard grouping or worker count — yield the same fleet digest.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (cluster, &digest) in self.cluster_digests.iter().enumerate() {
            eat(cluster as u64);
            eat(digest);
        }
        eat(self.accepted);
        eat(self.completed);
        eat(self.forwarded);
        eat(self.lost);
        hash
    }

    pub fn total_cost_usd(&self) -> f64 {
        self.cost_usd + self.pool_rent_usd
    }

    pub fn cold_start_fraction(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.cold_starts as f64 / self.completed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(arrival: u64, completed: u64, phase: u16) -> RequestRecord {
        RequestRecord {
            arrival_ns: arrival,
            dispatched_ns: Some(arrival),
            completed_ns: Some(completed),
            replica: 0,
            phase,
            cold_start: false,
            tier: 0,
            requeues: 0,
            forwarded: false,
        }
    }

    fn report(records: Vec<RequestRecord>) -> ServeReport {
        let mut sojourns = StreamingHistogram::new();
        for r in &records {
            sojourns.record(r.sojourn());
        }
        ServeReport {
            accepted: records.len() as u64,
            completed: records.len() as u64,
            lost: 0,
            forwarded_out: 0,
            requeued_requests: 0,
            cold_starts: 0,
            makespan: SimDuration::from_nanos(
                records
                    .iter()
                    .filter_map(|r| r.completed_ns)
                    .max()
                    .unwrap_or(0),
            ),
            sojourns,
            phases: Vec::new(),
            peak_replicas: 1,
            scale_ups: 0,
            scale_downs: 0,
            replicas_failed: 0,
            starts_by_tier: [0; 4],
            replica_seconds: 0.0,
            gb_seconds: 0.0,
            ghz_seconds: 0.0,
            cost_usd: 0.0,
            busy_replica_seconds: 0.0,
            idle_replica_seconds: 0.0,
            keepalive_tail_seconds: 0.0,
            pool_gb_seconds: 0.0,
            pool_rent_usd: 0.0,
            replica_timeline: Vec::new(),
            slo: None,
            regime_changes: 0,
            records,
        }
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = report(vec![record(1, 10, 0), record(2, 20, 0)]);
        let b = report(vec![record(1, 10, 0), record(2, 20, 0)]);
        assert_eq!(a.digest(), b.digest());
        let c = report(vec![record(2, 20, 0), record(1, 10, 0)]);
        assert_ne!(a.digest(), c.digest());
        let d = report(vec![record(1, 10, 0), record(2, 21, 0)]);
        assert_ne!(a.digest(), d.digest());
        // The serving tier is part of the observable outcome.
        let mut tiered = record(1, 10, 0);
        tiered.tier = 2;
        let e = report(vec![tiered, record(2, 20, 0)]);
        assert_ne!(a.digest(), e.digest());
    }

    #[test]
    fn completion_at_t0_is_not_misclassified() {
        // The old 0-sentinel encoding could not tell "completed at t=0"
        // from "in flight"; the Option encoding can, and the two digest
        // differently.
        let mut r = record(0, 0, 0);
        assert!(r.is_completed());
        assert_eq!(r.sojourn(), SimDuration::ZERO);
        let completed = report(vec![r]).digest();
        r.completed_ns = None;
        r.dispatched_ns = None;
        assert!(!r.is_completed());
        let in_flight = report(vec![r]).digest();
        assert_ne!(completed, in_flight);
    }

    #[test]
    fn digest_sees_forwarded_flag() {
        let plain = report(vec![record(1, 10, 0)]).digest();
        let mut r = record(1, 10, 0);
        r.forwarded = true;
        r.dispatched_ns = None;
        r.completed_ns = None;
        let spilled = report(vec![r]).digest();
        assert_ne!(plain, spilled);
    }

    #[test]
    fn fleet_merge_is_exact_and_order_pinned() {
        let a = report(vec![record(1, 11, 0), record(2, 30, 0)]);
        let b = report(vec![record(3, 40, 0)]);
        let fleet = FleetReport::merge(&[a.clone(), b.clone()]);
        assert_eq!(fleet.clusters, 2);
        assert_eq!(fleet.accepted, 3);
        assert_eq!(fleet.completed, 3);
        assert_eq!(fleet.lost, 0);
        assert_eq!(fleet.makespan, SimDuration::from_nanos(40));
        // Merged percentiles equal those of the union of all sojourns.
        let mut union = StreamingHistogram::new();
        union.merge(&a.sojourns);
        union.merge(&b.sojourns);
        assert_eq!(fleet.sojourns.percentile(0.99), union.percentile(0.99));
        assert_eq!(fleet.sojourns.mean(), union.mean());
        assert_eq!(fleet.cluster_digests, vec![a.digest(), b.digest()]);
        // The digest-of-digests pins cluster order.
        let swapped = FleetReport::merge(&[b, a]);
        assert_ne!(fleet.digest(), swapped.digest());
    }

    #[test]
    fn fleet_merge_folds_slo_and_regime() {
        let mut a = report(vec![record(1, 10, 0)]);
        a.regime_changes = 2;
        let mut sa = SloSummary::empty();
        sa.total = 10;
        sa.bad = 1;
        sa.alerts_fired = 1;
        sa.first_alert_ns = Some(5_000);
        a.slo = Some(sa);
        let mut b = report(vec![record(2, 20, 0)]);
        b.regime_changes = 1;
        let mut sb = SloSummary::empty();
        sb.total = 30;
        sb.bad = 3;
        sb.first_alert_ns = Some(2_000);
        b.slo = Some(sb);
        let fleet = FleetReport::merge(&[a, b]);
        assert_eq!(fleet.regime_changes, 3);
        assert_eq!(fleet.slo_alerts_fired, 1);
        let slo = fleet.slo.expect("clusters carried SLO summaries");
        assert_eq!(slo.total, 40);
        assert_eq!(slo.bad, 4);
        assert_eq!(slo.alerts_fired, 1);
        assert_eq!(slo.first_alert_ns, Some(2_000));
        assert!((slo.compliance - 0.9).abs() < 1e-12);
        // No SLO anywhere → the merged view stays None.
        let plain = FleetReport::merge(&[report(vec![record(1, 10, 0)])]);
        assert!(plain.slo.is_none());
    }

    #[test]
    fn phase_summaries_absorb_exactly() {
        let mut h1 = StreamingHistogram::new();
        let mut h2 = StreamingHistogram::new();
        let mut union = StreamingHistogram::new();
        for ns in [10_000u64, 20_000, 30_000] {
            h1.record(SimDuration::from_nanos(ns));
            union.record(SimDuration::from_nanos(ns));
        }
        for ns in [1_000_000u64, 2_000_000] {
            h2.record(SimDuration::from_nanos(ns));
            union.record(SimDuration::from_nanos(ns));
        }
        let mut merged = PhaseSummary::from_histogram(10.0, 3, 1, h1);
        merged.absorb(&PhaseSummary::from_histogram(5.0, 2, 0, h2));
        assert_eq!(merged.completed, 5);
        assert_eq!(merged.cold_starts, 1);
        assert!((merged.offered_rps - 15.0).abs() < 1e-12);
        assert_eq!(merged.p99_sojourn, union.percentile(0.99));
        assert_eq!(merged.mean_sojourn, union.mean());
        assert_eq!(merged.max_sojourn, union.max());
    }

    #[test]
    fn tail_p99_skips_transient() {
        // Phase 1: 10 slow requests (transient) then 90 fast ones.
        let mut records = Vec::new();
        for i in 0..10u64 {
            records.push(record(i, i + 1_000_000_000, 1)); // 1s sojourn
        }
        for i in 10..100u64 {
            records.push(record(i, i + 1_000_000, 1)); // 1ms sojourn
        }
        let rep = report(records);
        let with_transient = rep.tail_p99_of_phase(1, 0.0);
        let steady = rep.tail_p99_of_phase(1, 0.2);
        assert!(with_transient > SimDuration::from_millis(500));
        assert!(steady < SimDuration::from_millis(2));
    }
}
