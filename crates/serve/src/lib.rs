//! chiron-serve: an online serving control plane over the virtual cluster.
//!
//! The rest of the repo answers "what is the best deployment of one
//! workflow?"; this crate answers "how does that deployment behave under
//! sustained traffic?". It drives an open-loop request stream through a
//! deterministic discrete-event simulation of:
//!
//! * a **router** with pluggable architectures — one central FIFO gateway
//!   vs Archipelago-style per-node partitioned schedulers (the §7
//!   centralised-vs-decentralised trade-off, operationalised);
//! * an **autoscaler** reacting to queue depth and windowed p99 latency,
//!   paying the paper's 167 ms sandbox cold start on every scale-up unless
//!   a prewarm pool has stock, and retiring replicas on keepalive expiry;
//! * **failure recovery** — crash-stop node kills detected by missed
//!   heartbeats, with replica write-off, in-flight re-queueing and
//!   replacement placement, losing no accepted request;
//! * **metering** — streaming sojourn percentiles, cold-start fraction and
//!   GB-s / GHz-s dollar cost per run;
//! * a **federation** layer ([`fleet`]) — many clusters under one
//!   epoch-barrier driver, with gossiped admission rates, cross-cluster
//!   spillover, and exactly-merged fleet reports, byte-identical for any
//!   shard grouping or worker count.
//!
//! Everything is deterministic in the `(workload, seed)` pair, so serving
//! experiments are reproducible byte for byte.

pub mod autoscaler;
pub mod config;
pub mod events;
pub mod faults;
pub mod fleet;
pub mod report;
pub mod router;
pub mod sim;

pub use autoscaler::{Autoscaler, AutoscalerConfig};
pub use config::{RouterPolicy, ServeConfig, TrafficPhase, Workload};
pub use events::{Event, EventKind, EventQueue};
pub use faults::FaultPlan;
pub use fleet::{FleetConfig, FleetPhase, FleetSimulation, FleetWorkload};
pub use report::{FleetReport, PhaseSummary, RequestRecord, ServeReport};
pub use router::{Router, Shard};
pub use sim::{ServeError, ServeSimulation};

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_deploy::{planners, NodeId};
    use chiron_model::{apps, ReplicaConfig, SimDuration, SimTime};

    fn simulation(config: ServeConfig) -> ServeSimulation {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf);
        ServeSimulation::new(wf, plan, config)
    }

    #[test]
    fn steady_load_completes_everything() {
        let sim = simulation(ServeConfig::paper_testbed());
        let report = sim.run(&Workload::steady(20.0, 2_000), 7).unwrap();
        assert_eq!(report.accepted, 2_000);
        assert_eq!(report.completed, 2_000);
        assert_eq!(report.lost, 0);
        assert!(report.sojourns.percentile(0.5) > SimDuration::ZERO);
        assert!(report.cost_usd > 0.0);
    }

    #[test]
    fn seeded_runs_are_byte_identical() {
        let sim = simulation(ServeConfig::paper_testbed());
        let workload = Workload::step(20.0, 10.0, 500, 2_000);
        let a = sim.run(&workload, 42).unwrap();
        let b = sim.run(&workload, 42).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.records, b.records);
        let c = sim.run(&workload, 43).unwrap();
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn traffic_step_triggers_scale_up() {
        let sim = simulation(ServeConfig::paper_testbed());
        let report = sim.run(&Workload::step(10.0, 10.0, 300, 3_000), 1).unwrap();
        assert_eq!(report.lost, 0);
        assert!(report.scale_ups > 0, "10× step must add replicas");
        assert!(report.peak_replicas > 1);
        assert!(report.cold_starts > 0, "scale-up pays cold starts");
    }

    #[test]
    fn prewarm_pool_avoids_cold_starts() {
        let config = ServeConfig::paper_testbed()
            .with_replicas(ReplicaConfig::default().with_prewarm_pool(64));
        let sim = simulation(config);
        let report = sim.run(&Workload::step(10.0, 10.0, 300, 3_000), 1).unwrap();
        assert_eq!(report.lost, 0);
        assert!(report.scale_ups > 0);
        assert_eq!(
            report.cold_starts, 0,
            "prewarmed replicas skip the cold start"
        );
    }

    #[test]
    fn tiered_pools_replace_cold_boots_and_bill_rent() {
        use chiron_lifecycle::LifecycleConfig;
        let workload = Workload::step(10.0, 10.0, 300, 3_000);

        let legacy = simulation(ServeConfig::paper_testbed())
            .run(&workload, 1)
            .unwrap();
        let tiered = simulation(
            ServeConfig::paper_testbed().with_lifecycle(LifecycleConfig::paper_calibrated()),
        )
        .run(&workload, 1)
        .unwrap();

        assert_eq!(tiered.lost, 0);
        assert!(tiered.scale_ups > 0);
        // The step's scale-up is absorbed by the pools: some starts come
        // from the snapshot or zygote tiers, and full cold boots shrink.
        let tier_starts = tiered.starts_by_tier[1] + tiered.starts_by_tier[2];
        assert!(
            tier_starts > 0,
            "starts_by_tier={:?}",
            tiered.starts_by_tier
        );
        assert!(
            tiered.starts_by_tier[3] < legacy.starts_by_tier[3],
            "tiered {:?} vs legacy {:?}",
            tiered.starts_by_tier,
            legacy.starts_by_tier
        );
        // Legacy runs only ever record warm handovers and cold boots.
        assert_eq!(legacy.starts_by_tier[1], 0);
        assert_eq!(legacy.starts_by_tier[2], 0);
        // Held pool slots pay standing rent, surfaced separately from
        // replica capacity and folded into the total bill.
        assert!(tiered.pool_gb_seconds > 0.0);
        assert!(tiered.pool_rent_usd > 0.0);
        assert!(tiered.total_cost_usd() > tiered.cost_usd);
        assert_eq!(legacy.pool_gb_seconds, 0.0);
        // Start fractions are a distribution over the four tiers.
        let fractions = tiered.tier_start_fractions();
        assert!((fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);

        // Tiered runs stay deterministic: same seed, same bytes.
        let again = simulation(
            ServeConfig::paper_testbed().with_lifecycle(LifecycleConfig::paper_calibrated()),
        )
        .run(&workload, 1)
        .unwrap();
        assert_eq!(tiered.digest(), again.digest());
        assert_eq!(tiered.records, again.records);
        assert_eq!(tiered.pool_gb_seconds, again.pool_gb_seconds);
    }

    #[test]
    fn replica_seconds_split_busy_idle_and_keepalive_tail() {
        let report = simulation(ServeConfig::paper_testbed())
            .run(&Workload::step(10.0, 10.0, 300, 3_000), 1)
            .unwrap();
        // The busy/idle split partitions total reserved capacity.
        assert!(report.busy_replica_seconds > 0.0);
        assert!(report.idle_replica_seconds > 0.0);
        let split = report.busy_replica_seconds + report.idle_replica_seconds;
        assert!(
            (split - report.replica_seconds).abs() < 1e-6 * report.replica_seconds,
            "busy {} + idle {} != total {}",
            report.busy_replica_seconds,
            report.idle_replica_seconds,
            report.replica_seconds
        );
        // Scaled-up replicas alive at the last completion drain their
        // keepalive before releasing capacity — billed, not free.
        assert!(report.scale_ups > 0);
        assert!(report.keepalive_tail_seconds > 0.0);
        assert!(report.replica_seconds > report.busy_replica_seconds);
    }

    #[test]
    fn node_kill_loses_no_accepted_request() {
        for router in RouterPolicy::ALL {
            let config = ServeConfig::paper_testbed().with_router(router);
            let sim = simulation(config).with_faults(
                FaultPlan::none().kill_at(SimTime::from_millis_f64(5_000.0), NodeId(0)),
            );
            let report = sim.run(&Workload::steady(25.0, 2_000), 3).unwrap();
            assert_eq!(
                report.lost,
                0,
                "{}: accepted requests must all finish",
                router.name()
            );
            assert_eq!(report.completed, 2_000);
            assert!(
                report.replicas_failed > 0,
                "{}: the kill must hit replicas",
                router.name()
            );
            assert!(
                report.requeued_requests > 0,
                "{}: in-flight work must be re-queued, not dropped",
                router.name()
            );
        }
    }

    /// One test fn for both tracing contracts — the process-global
    /// tracing flag must not be flipped from concurrent tests.
    ///
    /// Disabled (the default), the sink must be free: a full serve run
    /// records zero events and allocates zero capture buffers, and the
    /// report is bit-identical to an instrumented-later run. Enabled, a
    /// capture holds the whole causal request life and two captures of
    /// the same `(workload, seed)` are byte-identical.
    #[test]
    fn tracing_is_free_when_disabled_and_deterministic_when_on() {
        let sim = simulation(ServeConfig::paper_testbed())
            .with_faults(FaultPlan::none().kill_at(SimTime::from_millis_f64(5_000.0), NodeId(0)));
        let workload = Workload::steady(25.0, 600);

        // Phase 1: disabled — zero events, zero capture buffers.
        chiron_obs::reset_trace_stats();
        chiron_obs::set_tracing(false);
        let base = sim.run(&workload, 9).unwrap();
        assert_eq!(
            chiron_obs::trace_stats(),
            chiron_obs::TraceStats::default(),
            "a disabled sink must not record or allocate anything"
        );

        // Phase 2: enabled — full life cycle captured, deterministically,
        // without perturbing the simulation itself.
        chiron_obs::set_tracing(true);
        chiron_obs::begin_capture();
        let a = sim.run(&workload, 9).unwrap();
        let ta = chiron_obs::end_capture();
        chiron_obs::begin_capture();
        let b = sim.run(&workload, 9).unwrap();
        let tb = chiron_obs::end_capture();
        chiron_obs::set_tracing(false);

        assert_eq!(base.digest(), a.digest(), "tracing must not change the sim");
        assert_eq!(a.digest(), b.digest());
        assert_eq!(ta.render(), tb.render(), "captures must be byte-identical");
        let render = ta.render();
        for needle in [
            "RunContext",
            "Arrival",
            "Enqueue",
            "Dispatch",
            "Complete",
            "Requeue",
            "ReplicaSpawn",
            "ReplicaReady",
            "NodeKill",
            "NodeDeath",
            "DesSpan",
            "DesBreakdown",
        ] {
            assert!(render.contains(needle), "{needle} missing from the trace");
        }

        // Phase 3: the captured trace supports exact latency attribution.
        let attrib = chiron_obs::attribute(&ta);
        assert_eq!(attrib.workflow, "FINRA-12");
        assert!(attrib.sums_exact(), "components must sum to sojourn");
        assert_eq!(attrib.requests.len() as u64, a.completed);
        assert_eq!(attrib.incomplete, 0);
        assert!(
            attrib.profiles.len() > 1,
            "DES breakdowns must yield stage profiles"
        );
        assert!(
            attrib.requests.iter().any(|r| r.components[5] > 0),
            "the node kill must leave retry time on some request"
        );
        assert_eq!(
            attrib.render(),
            chiron_obs::attribute(&tb).render(),
            "attribution must be byte-identical across captures"
        );
    }

    #[test]
    fn slo_burn_rate_alerts_fire_on_incident_and_stay_quiet_otherwise() {
        let workload = Workload::steady(25.0, 2_000);
        let healthy = simulation(ServeConfig::paper_testbed())
            .run(&workload, 3)
            .unwrap();
        // SLO target: 20% above the worst healthy sojourn (which includes
        // the scale-up transient), so only an incident can breach it.
        let policy = chiron_obs::SloPolicy::multi_window(healthy.sojourns.max().mul_f64(1.2));

        let quiet = simulation(ServeConfig::paper_testbed().with_slo(policy))
            .run(&workload, 3)
            .unwrap();
        let quiet_slo = quiet.slo.as_ref().expect("slo configured");
        assert_eq!(quiet_slo.alerts_fired, 0, "{}", quiet_slo.render_timeline());
        assert_eq!(
            quiet.digest(),
            healthy.digest(),
            "monitoring must not perturb the sim"
        );

        // A single-node kill only strands ~3 in-flight requests (replicas
        // are spread thin); take out half the cluster so the incident is
        // unambiguous rather than threshold-marginal.
        let mut faults = FaultPlan::none();
        for node in 0..4 {
            faults = faults.kill_at(SimTime::from_millis_f64(5_000.0), NodeId(node));
        }
        let faulted = simulation(ServeConfig::paper_testbed().with_slo(policy))
            .with_faults(faults)
            .run(&workload, 3)
            .unwrap();
        let slo = faulted.slo.expect("slo configured");
        assert!(slo.alerts_fired >= 1, "{}", slo.render_timeline());
        let first = slo.first_alert_ns.expect("fired");
        assert!(
            first > 5_000_000_000,
            "alert must follow the kill, got {first}"
        );
        assert!(slo.time_in_alert_ns > 0);
        assert!(slo.compliance < quiet_slo.compliance);
        // The timeline renders deterministically.
        assert_eq!(slo.render_timeline(), slo.clone().render_timeline());
    }

    #[test]
    fn partitioned_router_beats_central_overhead() {
        // With multi-wrap stages the partitioned architecture skips the
        // per-invocation gateway detour, so its service time is lower.
        let wl = Workload::steady(10.0, 500);
        let central = simulation(ServeConfig::paper_testbed())
            .run(&wl, 5)
            .unwrap();
        let partitioned =
            simulation(ServeConfig::paper_testbed().with_router(RouterPolicy::PartitionedByNode))
                .run(&wl, 5)
                .unwrap();
        assert!(
            partitioned.sojourns.percentile(0.5) <= central.sojourns.percentile(0.5),
            "partitioned {} vs central {}",
            partitioned.sojourns.percentile(0.5),
            central.sojourns.percentile(0.5)
        );
    }
}
