//! The event-driven serving simulator: open-loop arrivals → router →
//! replicas, with reactive autoscaling and heartbeat-based failure
//! recovery. Deterministic for a given (workload, seed) pair.
//!
//! ## Model
//!
//! A *replica* is one placed copy of the deployment plan (every sandbox,
//! on concrete nodes) serving one request at a time. Its service time is
//! the warm single-request latency of the plan under the virtual platform,
//! plus the placement's cross-node overhead and the routing architecture's
//! scheduling overhead ([`chiron_deploy::scheduling_architectures`]),
//! jittered per request by `ServeConfig::service_jitter`.
//!
//! Replicas spawned by the autoscaler pay the 167 ms sandbox cold start
//! unless the prewarm pool has stock; the `min_replicas` baseline is
//! provisioned at deployment time, off the serving path. With
//! `ServeConfig::lifecycle` set, the scalar prewarm pool is replaced by
//! the tiered start ladder of `chiron-lifecycle`: scale-ups acquire from
//! the cheapest pooled tier (snapshot restore, zygote fork) and fall
//! through to the cold boot, pool slot builds ride the autoscaler tick,
//! and the pools' standing rent lands on the bill next to replica
//! capacity.
//!
//! Node kills are crash-stop: completions from a failed node are lost,
//! and the control plane only learns of the failure after
//! `heartbeat_miss_limit` missed heartbeats — then it writes off the
//! node's replicas, re-queues their in-flight requests (at the queue
//! front, preserving arrival order), re-shards the dead node's queue, and
//! spawns replacements. Accepted requests are therefore never dropped,
//! only delayed, unless the whole cluster is gone.
//!
//! ## Hot path
//!
//! The per-event cost is what bounds fleet-scale throughput, so the loop
//! keeps all the state it consults per event incremental: usable-replica
//! and idle-replica counts, the per-node usable map, and the router's
//! total queue depth are maintained at each (rare) state transition
//! instead of being rescanned per arrival/completion, and the global
//! sojourn metric is batched locally and folded into the registry once
//! per run.
//!
//! ## Fleet mode
//!
//! [`crate::fleet`] runs many of these simulations — one per cluster —
//! under an epoch-barrier federation driver. In fleet mode a `Run` is
//! advanced epoch by epoch ([`Run::advance_until`]), draws arrivals at a
//! per-epoch rate the federation router gossips to it, can shed its
//! newest queued requests to peers ([`Run::spill_excess`]) and absorb
//! theirs ([`Run::inject_forwarded`]). Trace ids get per-cluster bases so
//! one capture holds a fleet's worth of causally-correct traces.

use crate::autoscaler::Autoscaler;
use crate::config::{RouterPolicy, ServeConfig, Workload};
use crate::events::{Event, EventKind, EventQueue};
use crate::faults::FaultPlan;
use crate::report::{PhaseSummary, RequestRecord, ServeReport};
use crate::router::{Router, Shard};
use chiron_deploy::{
    placement_overhead, scheduling_architectures, ClusterState, NodeId, Placement, PlacementError,
};
use chiron_lifecycle::{PoolAction, PrewarmPools, StartTier, TierTable};
use chiron_metrics::{plan_resources, ArrivalGen, FastRng, StreamingHistogram};
use chiron_model::{DeploymentPlan, PlanError, SimDuration, SimTime, Workflow};
use chiron_obs::{
    emit, BurnRateMonitor, RegimeDetector, StaticCounter, StaticGauge, StaticHistogram, Trace,
    TraceEvent, TraceEventKind,
};
use chiron_runtime::VirtualPlatform;
use std::collections::VecDeque;

/// [`Run::record`] over disjoint field borrows, for handlers that have
/// destructured the run: fleet clusters append to their banked buffer,
/// standalone runs go through the thread-local capture. The caller has
/// already checked the run's `trace` flag.
#[inline]
fn record_into(
    trace_events: &mut Vec<TraceEvent>,
    fleet: bool,
    time_ns: u64,
    kind: TraceEventKind,
) {
    if fleet {
        trace_events.push(TraceEvent { time_ns, kind });
    } else {
        emit(time_ns, kind);
    }
}

/// Highest queue depth any autoscaler tick observed.
static QUEUE_DEPTH_PEAK: StaticGauge = StaticGauge::new("serve.autoscaler.queue_depth_peak");
/// Sum of per-tick queue depths (mean = sum / ticks).
static QUEUE_DEPTH_SUM: StaticCounter = StaticCounter::new("serve.autoscaler.queue_depth_sum");
static AUTOSCALER_TICKS: StaticCounter = StaticCounter::new("serve.autoscaler.ticks");
/// In-flight requests re-queued by failure recovery.
static REQUEUES: StaticCounter = StaticCounter::new("serve.failures.requeues");
/// Completed-request sojourn distribution, across every run this process
/// executed since the last `chiron_obs::reset_metrics()`. Batched: each
/// run folds its local histogram in once at report time.
static SOJOURNS: StaticHistogram = StaticHistogram::new("serve.sojourn");

/// Trace encoding of a queue shard (see [`TraceEventKind::Enqueue`]).
fn shard_code(shard: Shard) -> i64 {
    match shard {
        Shard::Global => -1,
        Shard::Overflow => -2,
        Shard::Node(i) => i as i64,
    }
}

/// Why a serving run could not start.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The deployment plan is invalid for the workflow.
    Plan(PlanError),
    /// The baseline `min_replicas` do not fit the cluster.
    Placement(PlacementError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Plan(e) => write!(f, "invalid plan: {e}"),
            ServeError::Placement(e) => write!(f, "baseline placement failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError::Plan(e)
    }
}

impl From<PlacementError> for ServeError {
    fn from(e: PlacementError) -> Self {
        ServeError::Placement(e)
    }
}

/// A configured serving simulation, reusable across runs.
#[derive(Debug, Clone)]
pub struct ServeSimulation {
    workflow: Workflow,
    plan: DeploymentPlan,
    config: ServeConfig,
    faults: FaultPlan,
    /// Replaces the DES-measured warm service base (what-if experiments
    /// and fleet runs use this to skip the per-cluster profiling execute).
    service_base_override: Option<SimDuration>,
}

impl ServeSimulation {
    pub fn new(workflow: Workflow, plan: DeploymentPlan, config: ServeConfig) -> Self {
        ServeSimulation {
            workflow,
            plan,
            config,
            faults: FaultPlan::none(),
            service_base_override: None,
        }
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Forces the warm per-request service base instead of measuring it
    /// on the virtual platform. The DES profiling execute (and its trace
    /// spans) is skipped, so this is for what-if re-runs on plans the
    /// baseline already validated.
    pub fn with_service_base_override(mut self, base: SimDuration) -> Self {
        self.service_base_override = Some(base);
        self
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Drives `workload` through the cluster. Deterministic in
    /// `(workload, seed)`: two runs yield byte-identical reports.
    pub fn run(&self, workload: &Workload, seed: u64) -> Result<ServeReport, ServeError> {
        Run::new(self, workload, seed, None)?.run()
    }

    /// Starts one federated cluster's event loop (fleet mode): arrivals
    /// are drawn at `initial_rate` until the federation driver gossips a
    /// new one, and trace ids carry cluster-derived bases.
    pub(crate) fn fleet_cluster<'a>(
        &'a self,
        workload: &'a Workload,
        seed: u64,
        cluster: u32,
        initial_rate: f64,
    ) -> Result<Run<'a>, ServeError> {
        Run::new(self, workload, seed, Some((cluster, initial_rate)))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplicaState {
    /// Cold-starting (or prewarm-activating); schedulable once ready.
    Starting,
    Idle {
        since: SimTime,
    },
    Busy {
        request: u64,
        dispatch_seq: u64,
    },
    /// Written off by failure detection.
    Dead,
    /// Scaled down after its keepalive expired.
    Retired,
}

#[derive(Debug, Clone)]
struct Replica {
    placement: Placement,
    /// Node of stage 1's primary wrap — the shard this replica drains.
    node: usize,
    /// Warm per-request service time including placement + routing
    /// overheads (before jitter).
    service: SimDuration,
    state: ReplicaState,
    /// How this replica's sandboxes came up.
    start_tier: StartTier,
    /// On-path startup latency the start paid (zero for warm handovers).
    start_latency: SimDuration,
    /// Deployment-time baseline (`min_replicas`): held for the whole
    /// run, so no keepalive drain tail applies.
    baseline: bool,
    /// Nanoseconds spent serving requests (for the busy/idle split).
    busy_ns: u64,
    served: u64,
    started_at: SimTime,
    ended_at: Option<SimTime>,
}

impl Replica {
    fn usable(&self) -> bool {
        matches!(
            self.state,
            ReplicaState::Starting | ReplicaState::Idle { .. } | ReplicaState::Busy { .. }
        )
    }
}

/// Per-cluster federation state (fleet mode only).
#[derive(Debug, Clone)]
struct FleetMode {
    /// Arrival rate for the current epoch, set by the federation router's
    /// gossiped admission weights.
    rate: f64,
    /// Cleared when the fleet workload ends; stray pre-drawn arrivals are
    /// then dropped deterministically while the backlog drains.
    accepting: bool,
    /// Whether a next-arrival event is pending (the arrival train
    /// disarms itself when admission stops or the rate hits zero).
    arrival_armed: bool,
    /// Fleet workload phase arrivals are currently stamped with.
    phase: u16,
    /// Service-time multiplier of the current fleet phase (regime shifts
    /// are injected by stepping this between phases).
    service_mult: f64,
    /// Forwarding hops awaiting admission: `(hop id, origin cluster,
    /// hop ns)` in injection order, popped by the `Forwarded` handler to
    /// emit the causally-paired `RemoteAdmit` event. Only populated while
    /// tracing.
    pending_remote: VecDeque<(u32, u16, u32)>,
}

pub(crate) struct Run<'a> {
    sim: &'a ServeSimulation,
    workload: &'a Workload,
    /// Warm single-request e2e latency of the plan (no placement/routing).
    service_base: SimDuration,
    /// Routing-architecture overhead added to every request.
    policy_overhead: SimDuration,
    cluster: ClusterState,
    router: Router,
    autoscaler: Autoscaler,
    events: EventQueue,
    rng: FastRng,
    gaps: ArrivalGen,
    replicas: Vec<Replica>,
    records: Vec<RequestRecord>,
    /// Usable replicas per node, maintained at every replica state
    /// transition — the dispatch path never rescans the replica table.
    node_replicas: Vec<u32>,
    /// Whether each node hosts a usable replica (mirror of
    /// `node_replicas`, the shape `Router::next_for` consumes).
    node_usable: Vec<bool>,
    /// Ascending node indices with a usable replica; rebuilt lazily when
    /// `hosts_dirty` (host-set changes only on spawn/retire/death).
    hosts_scratch: Vec<usize>,
    hosts_dirty: bool,
    /// Usable replicas (live + starting), maintained incrementally.
    usable: u32,
    /// Idle replicas, maintained incrementally — `kick` exits in O(1)
    /// when there is nobody to hand work to.
    idle: u32,
    /// Bitmask of idle replica indices (word `i >> 6`, bit `i & 63`),
    /// maintained at every Idle transition. `kick` hands work out by bit
    /// scan — the exact lowest-index-first order of a linear replica
    /// sweep, without touching the replica table per arrival.
    idle_bits: Vec<u64>,
    /// Set by the first `NodeKill`; while false, the completion path
    /// skips the per-assignment failed-node scan entirely.
    has_failed_nodes: bool,
    /// Scratch: node deaths detected in one heartbeat sweep.
    detected_scratch: Vec<NodeId>,
    /// Scratch: in-flight requests to re-queue after a node death.
    requeue_scratch: Vec<u64>,
    /// Scratch: a dead node's stranded queue entries awaiting re-shard.
    stranded_scratch: Vec<u64>,
    /// Cumulative request count at the end of each phase.
    phase_ends: Vec<u64>,
    total: u64,
    arrived: u64,
    completed: u64,
    /// Requests spilled to peer clusters (fleet mode; zero otherwise).
    forwarded_out: u64,
    dispatch_seq: u64,
    prewarm_stock: u32,
    /// Tiered start pools; `None` = legacy scalar-prewarm behaviour.
    pools: Option<PrewarmPools>,
    /// Scratch: slot builds scheduled by one pool tick.
    pool_actions_scratch: Vec<PoolAction>,
    starts_by_tier: [u32; 4],
    /// Kills whose detection is still pending.
    undetected: Vec<(SimTime, NodeId)>,
    deadlocked: bool,
    last_completion: SimTime,
    cold_starts: u64,
    scale_ups: u32,
    scale_downs: u32,
    replicas_failed: u32,
    peak_replicas: u32,
    timeline: Vec<(u64, u32)>,
    /// Online SLO burn-rate monitor, fed at each completion (event time,
    /// so alerts are identical for any worker count).
    slo: Option<BurnRateMonitor>,
    /// Online regime-change sensor, fed each completion's sojourn at
    /// event time (so detections are identical for any worker count).
    regime: Option<RegimeDetector>,
    /// Per-phase sojourn histograms; the report-level `sojourns` histogram
    /// is their exact merge (bucket counts, min/max and sums all add), so
    /// the hot path records each completion once, not twice.
    phase_hists: Vec<StreamingHistogram>,
    phase_completed: Vec<u64>,
    phase_cold: Vec<u64>,
    /// Whether an `AutoscaleTick` is pending (the train parks itself
    /// when the run goes quiet; fleet injections re-arm it).
    tick_armed: bool,
    /// Federation state; `None` for standalone runs.
    fleet: Option<FleetMode>,
    /// Trace id bases (zero outside fleet mode): emitted ids are
    /// `base + local id`, so one fleet capture stays collision-free.
    req_base: u64,
    rep_base: u32,
    node_base: u32,
    /// Fleet mode's per-cluster trace: events banked window by window
    /// (each `advance_until` opens and closes a thread-local capture, so
    /// a cluster's events survive work-stealing across worker threads).
    /// Standalone runs leave this empty — their caller owns the capture.
    trace_events: Vec<TraceEvent>,
    /// `tracing_enabled()` snapshotted at construction — captures are
    /// opened before a run starts and closed after it ends, so the
    /// per-request emit sites can branch on a plain bool instead of
    /// paying an atomic load (and eager event-payload packing) each.
    trace: bool,
}

impl<'a> Run<'a> {
    fn new(
        sim: &'a ServeSimulation,
        workload: &'a Workload,
        seed: u64,
        fleet: Option<(u32, f64)>,
    ) -> Result<Self, ServeError> {
        // Fleet clusters own their trace: the construction window runs
        // inside a thread-local capture whose events are banked into
        // `trace_events` (standalone runs keep the caller-owned capture
        // untouched). The banked buffer itself comes from the spare pool
        // — pulled *before* the capture opens so successive traced runs
        // hand the largest recycled allocation (last run's merged trace)
        // to the event stream, keeping its pages warm.
        let fleet_traced = fleet.is_some() && chiron_obs::tracing_enabled();
        let banked = if fleet_traced {
            chiron_obs::take_buffer()
        } else {
            Vec::new()
        };
        if fleet_traced {
            chiron_obs::begin_capture_sized(0);
        }
        // Names the capture before any other event so attribution knows
        // which (workflow, plan) this trace belongs to.
        if chiron_obs::tracing_enabled() {
            emit(
                0,
                TraceEventKind::RunContext {
                    workflow: chiron_obs::intern(&sim.workflow.name),
                    plan: chiron_obs::drift::plan_key(&sim.plan),
                },
            );
        }
        // Warm service time: one request on the virtual platform, cold
        // starts excluded (they are modelled at replica granularity here).
        // Its DES spans land in the trace and give attribution the
        // service-window component profile.
        let service_base = match sim.service_base_override {
            Some(base) => base,
            None => {
                let platform =
                    VirtualPlatform::new(sim.config.platform.clone()).with_cold_starts(false);
                platform.execute(&sim.workflow, &sim.plan, 0)?.e2e
            }
        };
        let (central, decentral) = scheduling_architectures(&sim.plan, &sim.config.platform.costs);
        let policy_overhead = match sim.config.router {
            RouterPolicy::CentralFifo => central,
            RouterPolicy::PartitionedByNode => decentral,
        };

        // The tier pools price slots off the plan's resident footprint;
        // derived once, the table is shared by billing and the planner.
        let pools = sim.config.lifecycle.as_ref().map(|cfg| {
            let usage = plan_resources(&sim.plan, &sim.workflow, &sim.config.platform.costs);
            let table = TierTable::derive(
                &sim.config.platform.costs,
                &cfg.costs,
                usage.memory_bytes,
                sim.plan.sandbox_count() as u32,
                cfg.snapshot_capacity,
                cfg.zygote_capacity,
            );
            PrewarmPools::new(cfg.clone(), table, SimTime::ZERO)
        });

        let nodes = sim.config.cluster.nodes as usize;
        let mut phase_ends = Vec::with_capacity(workload.phases.len());
        let mut cum = 0u64;
        for p in &workload.phases {
            cum += p.requests;
            phase_ends.push(cum);
        }

        let (req_base, rep_base, node_base, fleet_mode) = match fleet {
            Some((cluster, rate)) => {
                let bases = (u64::from(cluster) << 40, cluster << 22, cluster << 16);
                if chiron_obs::tracing_enabled() {
                    emit(
                        0,
                        TraceEventKind::ClusterContext {
                            cluster,
                            request_base: bases.0,
                            replica_base: bases.1,
                            node_base: bases.2,
                        },
                    );
                }
                let mode = FleetMode {
                    rate,
                    accepting: true,
                    arrival_armed: rate > 0.0,
                    phase: 0,
                    service_mult: 1.0,
                    pending_remote: VecDeque::new(),
                };
                (bases.0, bases.1, bases.2, Some(mode))
            }
            None => (0, 0, 0, None),
        };

        let mut run = Run {
            sim,
            workload,
            service_base,
            policy_overhead,
            cluster: ClusterState::new(sim.config.cluster.clone()),
            router: Router::new(sim.config.router, nodes),
            autoscaler: Autoscaler::new(sim.config.autoscaler),
            events: EventQueue::with_capacity(
                sim.config.replicas.max_replicas as usize + sim.faults.node_kills.len() + 8,
            ),
            rng: FastRng::seed_from_u64(seed ^ 0x5e2e_5e2e_5e2e_5e2e),
            gaps: workload.arrivals.gaps(),
            replicas: Vec::new(),
            records: Vec::with_capacity(cum as usize),
            node_replicas: vec![0; nodes],
            node_usable: vec![false; nodes],
            hosts_scratch: Vec::with_capacity(nodes),
            hosts_dirty: true,
            usable: 0,
            idle: 0,
            idle_bits: Vec::new(),
            has_failed_nodes: false,
            detected_scratch: Vec::new(),
            requeue_scratch: Vec::new(),
            stranded_scratch: Vec::new(),
            phase_ends,
            total: cum,
            arrived: 0,
            completed: 0,
            forwarded_out: 0,
            dispatch_seq: 0,
            prewarm_stock: sim.config.replicas.prewarm_pool,
            pools,
            pool_actions_scratch: Vec::new(),
            starts_by_tier: [0; 4],
            // Kills aimed at node ids outside the cluster have nothing to
            // hit; drop them rather than index past the node tables.
            undetected: sim
                .faults
                .node_kills
                .iter()
                .copied()
                .filter(|&(_, node)| node.0 < sim.config.cluster.nodes)
                .collect(),
            deadlocked: false,
            last_completion: SimTime::ZERO,
            cold_starts: 0,
            scale_ups: 0,
            scale_downs: 0,
            replicas_failed: 0,
            peak_replicas: 0,
            timeline: Vec::new(),
            slo: sim.config.slo.map(BurnRateMonitor::new),
            regime: sim.config.regime.map(RegimeDetector::new),
            phase_hists: workload
                .phases
                .iter()
                .map(|_| StreamingHistogram::new())
                .collect(),
            phase_completed: vec![0; workload.phases.len()],
            phase_cold: vec![0; workload.phases.len()],
            tick_armed: false,
            fleet: fleet_mode,
            req_base,
            rep_base,
            node_base,
            trace_events: banked,
            trace: chiron_obs::tracing_enabled(),
        };

        // Deployment-time baseline: min_replicas warm at t=0 (their cold
        // starts happened before serving began, off the measured path).
        for _ in 0..sim.config.replicas.min_replicas {
            let placement =
                run.cluster
                    .place_replica(&sim.plan, &sim.workflow, sim.config.placement)?;
            run.push_replica(placement, SimTime::ZERO, StartTier::Warm, SimDuration::ZERO);
            let id = run.replicas.len() - 1;
            run.replicas[id].state = ReplicaState::Idle {
                since: SimTime::ZERO,
            };
            run.replicas[id].baseline = true;
            run.idle += 1;
            run.idle_bits[id >> 6] |= 1 << (id & 63);
            run.starts_by_tier[StartTier::Warm.code() as usize] += 1;
            emit(
                0,
                TraceEventKind::ReplicaSpawn {
                    replica: run.rep_base + id as u32,
                    node: run.node_base + run.replicas[id].node as u32,
                    cold: false,
                    tier: StartTier::Warm.code(),
                },
            );
            emit(
                0,
                TraceEventKind::ReplicaReady {
                    replica: run.rep_base + id as u32,
                },
            );
        }
        run.push_timeline(SimTime::ZERO);

        let arm_arrival = match &run.fleet {
            Some(f) => f.arrival_armed,
            None => run.total > 0,
        };
        if arm_arrival {
            run.events.push(SimTime::ZERO, EventKind::Arrival);
        }
        run.events.push(
            SimTime::ZERO + sim.config.autoscaler.tick,
            EventKind::AutoscaleTick,
        );
        run.tick_armed = true;
        if !sim.faults.is_empty() {
            for &(at, node) in &sim.faults.node_kills {
                run.events.push(at, EventKind::NodeKill { node });
            }
            run.events.push(
                SimTime::ZERO + sim.config.heartbeat_interval,
                EventKind::Heartbeat,
            );
        }
        run.capture_close();
        Ok(run)
    }

    fn run(mut self) -> Result<ServeReport, ServeError> {
        while let Some(event) = self.events.pop() {
            self.handle(event);
        }
        Ok(self.into_report())
    }

    fn handle(&mut self, event: Event) {
        let now = event.at;
        match event.kind {
            EventKind::Arrival => self.on_arrival(now),
            EventKind::Forwarded => {
                let phase = self.fleet.as_ref().map_or(0, |f| f.phase);
                // The paired RemoteAdmit precedes the same-stamp Arrival
                // (recorded in emit order), carrying the hop id and
                // latency attribution needs; `self.arrived` is the id
                // `admit` is about to assign.
                if self.trace {
                    if let Some((hop, from_cluster, hop_ns)) = self
                        .fleet
                        .as_mut()
                        .and_then(|f| f.pending_remote.pop_front())
                    {
                        self.record(
                            now.as_nanos(),
                            TraceEventKind::RemoteAdmit {
                                request: self.req_base + self.arrived,
                                hop,
                                from_cluster,
                                hop_ns,
                            },
                        );
                    }
                }
                self.admit(now, phase);
            }
            EventKind::Completion {
                replica,
                request,
                dispatch_seq,
            } => self.on_completion(now, replica, request, dispatch_seq),
            EventKind::ReplicaReady { replica } => {
                if self.replicas[replica as usize].state == ReplicaState::Starting {
                    self.replicas[replica as usize].state = ReplicaState::Idle { since: now };
                    self.idle += 1;
                    self.idle_bits[replica as usize >> 6] |= 1 << (replica as usize & 63);
                    self.record(
                        now.as_nanos(),
                        TraceEventKind::ReplicaReady {
                            replica: self.rep_base + replica,
                        },
                    );
                    self.kick(now);
                }
            }
            EventKind::AutoscaleTick => self.on_tick(now),
            EventKind::PoolSlotReady { tier } => {
                if let Some(pools) = &mut self.pools {
                    pools.slot_ready(StartTier::from_code(tier), now);
                }
            }
            EventKind::Heartbeat => self.on_heartbeat(now),
            EventKind::NodeKill { node } => {
                self.record(
                    now.as_nanos(),
                    TraceEventKind::NodeKill {
                        node: self.node_base + node.0,
                    },
                );
                self.has_failed_nodes = true;
                self.cluster.fail_node(node)
            }
        }
    }

    // ---- fleet-mode driver interface ------------------------------------

    /// Processes every event strictly before `until` (the epoch barrier).
    /// Pre-sizes the request log. Fleet phases are open-ended (`requests:
    /// 0`), so `Run::new` cannot size it from the workload; the federation
    /// driver knows the offered `rate × duration` and reserves here, which
    /// saves the doubling-growth copies of a multi-megabyte record vector.
    pub(crate) fn reserve_records(&mut self, expected: usize) {
        let len = self.records.len();
        self.records.reserve(expected.saturating_sub(len));
    }

    /// Closes the construction capture and banks its events. Only
    /// `Run::new` opens one (the platform probe and the context events
    /// emit through the thread-local sink before the struct exists);
    /// every post-construction event [`Run::record`]s straight into
    /// `trace_events`, so a cluster's events survive work-stealing
    /// across worker threads with no per-epoch capture windows, banking
    /// copies, or thread-local hops.
    fn capture_close(&mut self) {
        if self.trace && self.fleet.is_some() {
            let part = chiron_obs::end_capture();
            self.trace_events.extend_from_slice(&part.events);
            chiron_obs::recycle(part);
        }
    }

    /// Records one trace event: fleet clusters append straight to their
    /// own banked buffer, standalone runs emit into the caller-owned
    /// thread-local capture. Handlers run in event-time order, so
    /// `trace_events` stays internally sorted and the final
    /// [`Trace::chain`] stitch needs no per-cluster re-sort.
    #[inline]
    fn record(&mut self, time_ns: u64, kind: TraceEventKind) {
        if !self.trace {
            return;
        }
        record_into(&mut self.trace_events, self.fleet.is_some(), time_ns, kind);
    }

    pub(crate) fn advance_until(&mut self, until: SimTime) {
        while let Some(event) = self.events.pop_before(until) {
            self.handle(event);
        }
    }

    /// Drains every remaining event and produces the cluster's report
    /// plus its trace (empty unless this is a traced fleet run).
    pub(crate) fn finish(mut self) -> (ServeReport, Trace) {
        while let Some(event) = self.events.pop() {
            self.handle(event);
        }
        let events = std::mem::take(&mut self.trace_events);
        // Handlers run in event-time order and coordinator records land
        // at the barrier they were computed for, so the banked stream is
        // already sorted — no normalisation pass on the timed path.
        debug_assert!(
            events.is_sorted_by_key(|e| e.time_ns),
            "banked cluster trace out of time order"
        );
        (self.into_report(), Trace { events })
    }

    /// Gossips the next epoch's admission rate to this cluster, re-arming
    /// the arrival train if it had parked on a zero rate.
    pub(crate) fn set_rate(&mut self, rate: f64, now: SimTime) {
        let rearm = {
            let f = self.fleet.as_mut().expect("fleet mode");
            f.rate = rate;
            f.accepting && rate > 0.0 && !f.arrival_armed
        };
        if rearm {
            self.fleet.as_mut().expect("fleet mode").arrival_armed = true;
            let gap = self.gaps.next_gap(rate);
            self.events.push(now + gap, EventKind::Arrival);
        }
    }

    /// Stamps subsequent arrivals with the fleet workload phase and
    /// applies its service-time multiplier (regime-shift injection).
    pub(crate) fn set_phase(&mut self, phase: u16, service_mult: f64) {
        let f = self.fleet.as_mut().expect("fleet mode");
        f.phase = phase;
        f.service_mult = service_mult;
    }

    /// The fleet workload ended: stop admitting; pre-drawn arrivals are
    /// dropped when they fire, and the backlog drains.
    pub(crate) fn stop_accepting(&mut self) {
        self.fleet.as_mut().expect("fleet mode").accepting = false;
    }

    pub(crate) fn queued(&self) -> usize {
        self.router.queued()
    }

    pub(crate) fn usable_replicas(&self) -> u32 {
        self.usable
    }

    /// Sheds the newest queued requests down to `threshold`, handing them
    /// to the federation router. Shed records are marked `forwarded` and
    /// leave this cluster's loss accounting; their local ids are appended
    /// to `shed_ids` so the coordinator can pair each with a forwarding
    /// hop for the causal trace.
    pub(crate) fn spill_excess(&mut self, threshold: usize, shed_ids: &mut Vec<u64>) -> u64 {
        let mut shed = 0u64;
        while self.router.queued() > threshold {
            let Some(req) = self.router.pop_newest() else {
                break;
            };
            self.records[req as usize].forwarded = true;
            self.forwarded_out += 1;
            shed_ids.push(req);
            shed += 1;
        }
        shed
    }

    /// Records the origin half of one spilled request's forwarding hop.
    /// The coordinator calls this between capture windows, so the event
    /// goes straight into the banked per-cluster trace; `hop` pairs it
    /// with the destination's `RemoteAdmit`.
    pub(crate) fn note_forward(&mut self, at: SimTime, request: u64, hop: u32, to_cluster: u16) {
        if !self.trace {
            return;
        }
        self.trace_events.push(TraceEvent {
            time_ns: at.as_nanos(),
            kind: TraceEventKind::Forward {
                request: self.req_base + request,
                hop,
                from_cluster: (self.req_base >> 40) as u16,
                to_cluster,
            },
        });
    }

    /// Delivers requests spilled by peer clusters at `at` (barrier +
    /// forwarding latency), one per `(hop id, origin cluster)` pair.
    /// Re-arms the autoscaler tick train if the cluster had gone quiet.
    pub(crate) fn inject_forwarded(&mut self, at: SimTime, hops: &[(u32, u16)], hop_ns: u32) {
        for _ in hops {
            self.events.push(at, EventKind::Forwarded);
        }
        if self.trace {
            let f = self.fleet.as_mut().expect("fleet mode");
            for &(hop, from_cluster) in hops {
                f.pending_remote.push_back((hop, from_cluster, hop_ns));
            }
        }
        if !hops.is_empty() && !self.tick_armed {
            self.tick_armed = true;
            self.events.push(
                at + self.sim.config.autoscaler.tick,
                EventKind::AutoscaleTick,
            );
        }
    }

    // ---- event handlers -------------------------------------------------

    fn on_arrival(&mut self, now: SimTime) {
        if let Some(f) = &self.fleet {
            let (accepting, rate, phase) = (f.accepting, f.rate, f.phase);
            if !accepting || rate <= 0.0 {
                self.fleet.as_mut().expect("fleet mode").arrival_armed = false;
                return;
            }
            self.admit(now, phase);
            let gap = self.gaps.next_gap(rate);
            self.events.push(now + gap, EventKind::Arrival);
            return;
        }
        let phase = self.phase_of(self.arrived) as u16;
        self.admit(now, phase);
        if self.arrived < self.total {
            let rps = self.workload.phases[self.phase_of(self.arrived)].rps;
            let gap = self.gaps.next_gap(rps);
            self.events.push(now + gap, EventKind::Arrival);
        }
    }

    /// Admits one request: record it, queue it, hand it out if anyone is
    /// idle. Shared by open-loop arrivals and federation injections.
    fn admit(&mut self, now: SimTime, phase: u16) {
        let id = self.arrived;
        self.arrived += 1;
        if let Some(pools) = &mut self.pools {
            pools.observe_arrival();
        }
        self.records.push(RequestRecord {
            arrival_ns: now.as_nanos(),
            dispatched_ns: None,
            completed_ns: None,
            replica: 0,
            phase,
            cold_start: false,
            tier: 0,
            requeues: 0,
            forwarded: false,
        });
        if self.trace {
            self.record(
                now.as_nanos(),
                TraceEventKind::Arrival {
                    request: self.req_base + id,
                    phase,
                },
            );
        }
        if self.sim.config.router == RouterPolicy::PartitionedByNode {
            self.refresh_hosts();
        }
        let shard = self.router.choose_shard(&self.hosts_scratch);
        self.router.push_back(shard, id);
        if self.trace {
            self.record(
                now.as_nanos(),
                TraceEventKind::Enqueue {
                    request: self.req_base + id,
                    shard: shard_code(shard),
                },
            );
        }
        self.kick(now);
    }

    fn on_completion(&mut self, now: SimTime, replica: u32, request: u64, dispatch_seq: u64) {
        let rep = &self.replicas[replica as usize];
        let current = matches!(
            rep.state,
            ReplicaState::Busy { request: r, dispatch_seq: s }
                if r == request && s == dispatch_seq
        );
        // A completion from a crashed node never reaches the router; the
        // request stays Busy until heartbeat detection re-queues it. The
        // per-assignment scan only runs once a node has actually failed.
        let broken = self.has_failed_nodes
            && rep
                .placement
                .assignments
                .iter()
                .any(|&(_, n)| self.cluster.is_failed(n));
        if !current || broken {
            return; // stale (re-queued / replica dead) or physically lost
        }

        let rec = &mut self.records[request as usize];
        rec.completed_ns = Some(now.as_nanos());
        let sojourn = SimDuration::from_nanos(now.as_nanos() - rec.arrival_ns);
        let dispatched_ns = rec.dispatched_ns;
        let phase = rec.phase as usize;
        let cold = rec.cold_start;
        if self.trace {
            self.record(
                now.as_nanos(),
                TraceEventKind::Complete {
                    request: self.req_base + request,
                    replica: self.rep_base + replica,
                },
            );
        }
        self.phase_hists[phase].record(sojourn);
        self.phase_completed[phase] += 1;
        if cold {
            self.cold_starts += 1;
            self.phase_cold[phase] += 1;
        }
        self.autoscaler.observe(sojourn);
        if let Some(monitor) = &mut self.slo {
            if let Some(t) = monitor.observe(now.as_nanos(), sojourn) {
                let (short_burn_centi, long_burn_centi) = t.burns_centi();
                self.record(
                    now.as_nanos(),
                    TraceEventKind::SloAlert {
                        fired: t.fired,
                        short_burn_centi,
                        long_burn_centi,
                    },
                );
            }
        }
        if let Some(detector) = &mut self.regime {
            if let Some(change) =
                detector.observe(now.as_nanos(), chiron_obs::E2E_STAGE, sojourn.as_nanos())
            {
                self.record(now.as_nanos(), change.to_event_kind());
            }
        }
        self.completed += 1;
        self.last_completion = now;

        let rep = &mut self.replicas[replica as usize];
        rep.served += 1;
        if let Some(d) = dispatched_ns {
            rep.busy_ns += now.as_nanos().saturating_sub(d);
        }
        rep.state = ReplicaState::Idle { since: now };
        let node = rep.node;
        self.idle += 1;
        self.idle_bits[replica as usize >> 6] |= 1 << (replica as usize & 63);
        if let Some(next) = self.router.next_for(node, &self.node_usable) {
            self.dispatch(replica, next, now);
        }
    }

    fn on_tick(&mut self, now: SimTime) {
        if !self.work_remains() || self.deadlocked {
            self.tick_armed = false;
            return; // stop the tick train once the run is over (or wedged)
        }
        let queued = self.router.queued();
        QUEUE_DEPTH_PEAK.set_max(queued as u64);
        QUEUE_DEPTH_SUM.add(queued as u64);
        AUTOSCALER_TICKS.incr();
        let usable = self.usable;
        let want = self.autoscaler.replicas_to_add(queued, usable);
        for _ in 0..want {
            if self.usable >= self.sim.config.replicas.max_replicas {
                break;
            }
            if !self.try_spawn(now) {
                break;
            }
        }
        self.retire_idle(now);
        self.kick(now);
        // The pool policy rides the same tick: re-forecast, restock
        // toward target (slot builds become future PoolSlotReady
        // events), evict surplus rent.
        if let Some(pools) = &mut self.pools {
            let mut actions = std::mem::take(&mut self.pool_actions_scratch);
            actions.clear();
            pools.on_tick(now, self.sim.config.autoscaler.tick, &mut actions);
            for a in &actions {
                self.events.push(
                    now + a.ready_in,
                    EventKind::PoolSlotReady {
                        tier: a.tier.code(),
                    },
                );
            }
            self.pool_actions_scratch = actions;
        }
        self.events.push(
            now + self.sim.config.autoscaler.tick,
            EventKind::AutoscaleTick,
        );
    }

    fn on_heartbeat(&mut self, now: SimTime) {
        let threshold =
            self.sim.config.heartbeat_interval * u64::from(self.sim.config.heartbeat_miss_limit);
        // Taken (not borrowed) so `handle_node_death` can take `&mut self`
        // inside the loop; restored afterwards so the buffer is reused.
        let mut detected = std::mem::take(&mut self.detected_scratch);
        detected.clear();
        self.undetected.retain(|&(at, node)| {
            if now.as_nanos() >= (at + threshold).as_nanos() {
                detected.push(node);
                false
            } else {
                true
            }
        });
        for &node in &detected {
            self.handle_node_death(node, now);
        }
        self.detected_scratch = detected;
        if !self.undetected.is_empty() {
            self.events.push(
                now + self.sim.config.heartbeat_interval,
                EventKind::Heartbeat,
            );
        }
    }

    fn handle_node_death(&mut self, node: NodeId, now: SimTime) {
        self.record(
            now.as_nanos(),
            TraceEventKind::NodeDeath {
                node: self.node_base + node.0,
            },
        );
        let mut requeue = std::mem::take(&mut self.requeue_scratch);
        requeue.clear();
        let mut dead = 0u32;
        // Disjoint field borrows: the cluster refund reads the replica's
        // placement in place instead of cloning it per failure.
        let Run {
            replicas,
            cluster,
            sim,
            replicas_failed,
            usable,
            idle,
            idle_bits,
            node_replicas,
            node_usable,
            hosts_dirty,
            ..
        } = self;
        for (id, rep) in replicas.iter_mut().enumerate() {
            let touches = rep.placement.assignments.iter().any(|&(_, n)| n == node);
            if !touches || !rep.usable() {
                continue;
            }
            if let ReplicaState::Busy { request, .. } = rep.state {
                requeue.push(request);
            }
            if matches!(rep.state, ReplicaState::Idle { .. }) {
                *idle -= 1;
                idle_bits[id >> 6] &= !(1 << (id & 63));
            }
            rep.state = ReplicaState::Dead;
            rep.ended_at = Some(now);
            // Refunds only the replica's live-node share; the dead node's
            // capacity was written off by fail_node.
            cluster.remove_replica(&sim.plan, &sim.workflow, &rep.placement);
            *usable -= 1;
            node_replicas[rep.node] -= 1;
            if node_replicas[rep.node] == 0 {
                node_usable[rep.node] = false;
                *hosts_dirty = true;
            }
            *replicas_failed += 1;
            dead += 1;
        }
        self.push_timeline(now);

        // The host set is stable for the rest of this handler (only the
        // router changes below), so one refresh serves every re-shard.
        self.refresh_hosts();

        // The dead node's own queue never dispatched: re-shard in order.
        if self.sim.config.router == RouterPolicy::PartitionedByNode {
            let mut stranded = std::mem::take(&mut self.stranded_scratch);
            stranded.clear();
            self.router.drain_node_into(node.0 as usize, &mut stranded);
            for &req in &stranded {
                let shard = self.router.choose_shard(&self.hosts_scratch);
                self.router.push_back(shard, req);
            }
            self.stranded_scratch = stranded;
        }

        // In-flight work goes back to the front, oldest request foremost.
        requeue.sort_unstable();
        for &req in requeue.iter().rev() {
            self.records[req as usize].requeues += 1;
            self.record(
                now.as_nanos(),
                TraceEventKind::Requeue {
                    request: self.req_base + req,
                    replica: self.rep_base + self.records[req as usize].replica,
                },
            );
            let shard = self.router.choose_shard(&self.hosts_scratch);
            self.router.push_front(shard, req);
        }
        REQUEUES.add(requeue.len() as u64);
        self.requeue_scratch = requeue;

        // Replace the lost capacity immediately (cold starts apply).
        for _ in 0..dead {
            if self.usable >= self.sim.config.replicas.max_replicas {
                break;
            }
            if !self.try_spawn(now) {
                break;
            }
        }
        self.kick(now);
    }

    // ---- mechanics ------------------------------------------------------

    /// Spawns one replica; returns false (and flags deadlock when fatal)
    /// if the cluster is full.
    fn try_spawn(&mut self, now: SimTime) -> bool {
        match self.cluster.place_replica(
            &self.sim.plan,
            &self.sim.workflow,
            self.sim.config.placement,
        ) {
            Ok(placement) => {
                // Tiered pools pick the cheapest start with stock; the
                // legacy path keeps the scalar prewarm semantics (zero-
                // latency handover while stock lasts, then a cold boot).
                let (tier, latency) = match &mut self.pools {
                    Some(pools) => {
                        let tier = pools.acquire(now);
                        (tier, pools.table().startup_of(tier))
                    }
                    None => {
                        if self.prewarm_stock > 0 {
                            self.prewarm_stock -= 1;
                            (StartTier::Warm, SimDuration::ZERO)
                        } else {
                            (
                                StartTier::ColdBoot,
                                self.sim.config.platform.costs.sandbox_cold_start,
                            )
                        }
                    }
                };
                self.push_replica(placement, now, tier, latency);
                let id = (self.replicas.len() - 1) as u32;
                self.starts_by_tier[tier.code() as usize] += 1;
                self.record(
                    now.as_nanos(),
                    TraceEventKind::ReplicaSpawn {
                        replica: self.rep_base + id,
                        node: self.node_base + self.replicas[id as usize].node as u32,
                        cold: latency > SimDuration::ZERO,
                        tier: tier.code(),
                    },
                );
                self.events
                    .push(now + latency, EventKind::ReplicaReady { replica: id });
                self.scale_ups += 1;
                self.push_timeline(now);
                true
            }
            Err(_) => {
                if self.usable == 0 && self.router.queued() > 0 {
                    // Nothing can ever progress again: no replicas, no room.
                    self.deadlocked = true;
                }
                false
            }
        }
    }

    fn push_replica(
        &mut self,
        placement: Placement,
        now: SimTime,
        tier: StartTier,
        latency: SimDuration,
    ) {
        let primary = self.sim.plan.stages[0].wraps[0].sandbox;
        let node = placement.node_of(primary).expect("placed plan").0 as usize;
        let service = self.service_base
            + placement_overhead(&self.sim.plan, &placement, self.cluster.config())
            + self.policy_overhead;
        if self.replicas.len() >= self.idle_bits.len() * 64 {
            self.idle_bits.push(0);
        }
        self.replicas.push(Replica {
            placement,
            node,
            service,
            state: ReplicaState::Starting,
            start_tier: tier,
            start_latency: latency,
            baseline: false,
            busy_ns: 0,
            served: 0,
            started_at: now,
            ended_at: None,
        });
        self.usable += 1;
        self.node_replicas[node] += 1;
        if self.node_replicas[node] == 1 {
            self.node_usable[node] = true;
            self.hosts_dirty = true;
        }
    }

    fn dispatch(&mut self, replica: u32, request: u64, now: SimTime) {
        self.dispatch_seq += 1;
        let seq = self.dispatch_seq;
        let u = self.rng.next_f64();
        let mut mult = 1.0 + self.sim.config.service_jitter * (2.0 * u - 1.0);
        if let Some(f) = &self.fleet {
            mult *= f.service_mult;
        }
        let rep = &mut self.replicas[replica as usize];
        let cold = rep.start_latency > SimDuration::ZERO && rep.served == 0;
        rep.state = ReplicaState::Busy {
            request,
            dispatch_seq: seq,
        };
        self.idle -= 1;
        self.idle_bits[replica as usize >> 6] &= !(1 << (replica as usize & 63));
        let service = rep.service.mul_f64(mult);
        let node = rep.node as u32;
        let tier = rep.start_tier;
        let rec = &mut self.records[request as usize];
        rec.dispatched_ns = Some(now.as_nanos());
        rec.replica = replica;
        rec.cold_start = cold;
        rec.tier = tier.code();
        if self.trace {
            self.record(
                now.as_nanos(),
                TraceEventKind::Dispatch {
                    request: self.req_base + request,
                    replica: self.rep_base + replica,
                    node: self.node_base + node,
                    cold,
                },
            );
        }
        self.events.push(
            now + service,
            EventKind::Completion {
                replica,
                request,
                dispatch_seq: seq,
            },
        );
    }

    /// Hands queued work to every idle replica that can take some, in
    /// ascending replica-index order. O(1) when there is nothing to do —
    /// and near O(idle) otherwise: candidates come off the idle bitmask
    /// by bit scan, so an arrival never sweeps the replica table.
    fn kick(&mut self, now: SimTime) {
        if self.idle == 0 || self.router.queued() == 0 {
            return;
        }
        for w in 0..self.idle_bits.len() {
            // Snapshot of the word: `dispatch` clears exactly the bit we
            // just consumed and sets none, so the snapshot stays accurate
            // for the remaining candidates.
            let mut word = self.idle_bits[w];
            while word != 0 {
                if self.idle == 0 || self.router.queued() == 0 {
                    return;
                }
                let i = (w << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                if let Some(req) = self
                    .router
                    .next_for(self.replicas[i].node, &self.node_usable)
                {
                    self.dispatch(i as u32, req, now);
                }
            }
        }
    }

    fn retire_idle(&mut self, now: SimTime) {
        let keepalive = self.sim.config.replicas.keepalive;
        let min = self.sim.config.replicas.min_replicas;
        let rep_base = self.rep_base;
        // Each retirement removes exactly one usable replica; the disjoint
        // field borrows avoid cloning each placement.
        let Run {
            replicas,
            cluster,
            router,
            sim,
            scale_downs,
            peak_replicas,
            timeline,
            usable,
            idle,
            idle_bits,
            node_replicas,
            node_usable,
            hosts_dirty,
            trace,
            trace_events,
            fleet,
            ..
        } = self;
        let fleet = fleet.is_some();
        for (id, rep) in replicas.iter_mut().enumerate() {
            if *usable <= min {
                break;
            }
            let ReplicaState::Idle { since } = rep.state else {
                continue;
            };
            if now.since(since) < keepalive {
                continue;
            }
            // A partitioned replica with work sharded to its node stays.
            if sim.config.router == RouterPolicy::PartitionedByNode
                && router.queued_on(rep.node) > 0
            {
                continue;
            }
            rep.state = ReplicaState::Retired;
            rep.ended_at = Some(now);
            if *trace {
                record_into(
                    trace_events,
                    fleet,
                    now.as_nanos(),
                    TraceEventKind::ReplicaRetired {
                        replica: rep_base + id as u32,
                    },
                );
            }
            cluster.remove_replica(&sim.plan, &sim.workflow, &rep.placement);
            *scale_downs += 1;
            *usable -= 1;
            *idle -= 1;
            idle_bits[id >> 6] &= !(1 << (id & 63));
            node_replicas[rep.node] -= 1;
            if node_replicas[rep.node] == 0 {
                node_usable[rep.node] = false;
                *hosts_dirty = true;
            }
            *peak_replicas = (*peak_replicas).max(*usable);
            timeline.push((now.as_nanos(), *usable));
        }
    }

    // ---- bookkeeping ----------------------------------------------------

    fn phase_of(&self, request: u64) -> usize {
        self.phase_ends
            .iter()
            .position(|&end| request < end)
            .unwrap_or(self.phase_ends.len() - 1)
    }

    /// Rebuilds the ascending usable-host list if it went stale.
    fn refresh_hosts(&mut self) {
        if !self.hosts_dirty {
            return;
        }
        self.hosts_dirty = false;
        self.hosts_scratch.clear();
        self.hosts_scratch.extend(
            self.node_usable
                .iter()
                .enumerate()
                .filter_map(|(i, &h)| h.then_some(i)),
        );
    }

    fn work_remains(&self) -> bool {
        match &self.fleet {
            Some(f) => f.accepting || self.completed + self.forwarded_out < self.arrived,
            None => self.arrived < self.total || self.completed < self.arrived,
        }
    }

    fn push_timeline(&mut self, now: SimTime) {
        self.peak_replicas = self.peak_replicas.max(self.usable);
        self.timeline.push((now.as_nanos(), self.usable));
    }

    fn into_report(mut self) -> ServeReport {
        let end = self.last_completion;
        let keepalive = self.sim.config.replicas.keepalive;
        let usage = plan_resources(
            &self.sim.plan,
            &self.sim.workflow,
            &self.sim.config.platform.costs,
        );
        let mut replica_seconds = 0.0f64;
        let mut busy_replica_seconds = 0.0f64;
        let mut keepalive_tail_seconds = 0.0f64;
        for r in &self.replicas {
            let until = r
                .ended_at
                .unwrap_or(end)
                .as_nanos()
                .max(r.started_at.as_nanos());
            // Keepalive drain tail: an autoscaled replica still alive at
            // the last completion keeps occupying its nodes until its
            // keepalive expires — capacity that used to go unbilled. The
            // deployment-time baseline is excluded: it is held
            // indefinitely by configuration, not by keepalive.
            let tail = if r.ended_at.is_none() && !r.baseline {
                match r.state {
                    ReplicaState::Idle { since } => {
                        let expiry = (since + keepalive).as_nanos();
                        SimDuration::from_nanos(expiry.saturating_sub(until)).as_secs_f64()
                    }
                    ReplicaState::Starting | ReplicaState::Busy { .. } => keepalive.as_secs_f64(),
                    ReplicaState::Dead | ReplicaState::Retired => 0.0,
                }
            } else {
                0.0
            };
            keepalive_tail_seconds += tail;
            replica_seconds +=
                SimDuration::from_nanos(until - r.started_at.as_nanos()).as_secs_f64() + tail;
            busy_replica_seconds += r.busy_ns as f64 / 1e9;
        }
        let idle_replica_seconds = (replica_seconds - busy_replica_seconds).max(0.0);
        let gb = usage.memory_bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        let gb_seconds = replica_seconds * gb;
        let ghz_seconds =
            replica_seconds * f64::from(usage.cpus) * self.sim.config.platform.costs.cpu_ghz;
        let billing = &self.sim.config.platform.billing;
        let cost_usd =
            gb_seconds * billing.usd_per_gb_second + ghz_seconds * billing.usd_per_ghz_second;
        let (pool_gb_seconds, pool_rent_usd) = match &mut self.pools {
            Some(pools) => {
                pools.finish(end);
                let gbs = pools.rent_gb_seconds();
                (gbs, gbs * billing.usd_per_gb_second)
            }
            None => (0.0, 0.0),
        };

        let phase_hists = std::mem::take(&mut self.phase_hists);
        // Exact reconstruction: a StreamingHistogram merge adds bucket
        // counts and combines min/max/sum losslessly, so merging the phase
        // histograms equals having recorded every sojourn directly.
        let mut sojourns = StreamingHistogram::new();
        for hist in &phase_hists {
            sojourns.merge(hist);
        }
        let phases = self
            .workload
            .phases
            .iter()
            .zip(phase_hists)
            .zip(self.phase_completed.iter().zip(self.phase_cold.iter()))
            .map(|((p, hist), (&completed, &cold))| {
                PhaseSummary::from_histogram(p.rps, completed, cold, hist)
            })
            .collect();

        let requeued_requests = self.records.iter().filter(|r| r.requeues > 0).count() as u64;

        // One registry-lock acquisition instead of one per completion.
        SOJOURNS.merge(&sojourns);

        ServeReport {
            accepted: self.arrived,
            completed: self.completed,
            lost: self.arrived - self.completed - self.forwarded_out,
            forwarded_out: self.forwarded_out,
            requeued_requests,
            cold_starts: self.cold_starts,
            makespan: SimDuration::from_nanos(end.as_nanos()),
            sojourns,
            phases,
            peak_replicas: self.peak_replicas,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            replicas_failed: self.replicas_failed,
            starts_by_tier: self.starts_by_tier,
            replica_seconds,
            gb_seconds,
            ghz_seconds,
            cost_usd,
            busy_replica_seconds,
            idle_replica_seconds,
            keepalive_tail_seconds,
            pool_gb_seconds,
            pool_rent_usd,
            replica_timeline: self.timeline,
            slo: self.slo.map(BurnRateMonitor::into_summary),
            regime_changes: self
                .regime
                .as_ref()
                .map_or(0, RegimeDetector::changes_fired),
            records: self.records,
        }
    }
}
