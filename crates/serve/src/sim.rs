//! The event-driven serving simulator: open-loop arrivals → router →
//! replicas, with reactive autoscaling and heartbeat-based failure
//! recovery. Deterministic for a given (workload, seed) pair.
//!
//! ## Model
//!
//! A *replica* is one placed copy of the deployment plan (every sandbox,
//! on concrete nodes) serving one request at a time. Its service time is
//! the warm single-request latency of the plan under the virtual platform,
//! plus the placement's cross-node overhead and the routing architecture's
//! scheduling overhead ([`chiron_deploy::scheduling_architectures`]),
//! jittered per request by `ServeConfig::service_jitter`.
//!
//! Replicas spawned by the autoscaler pay the 167 ms sandbox cold start
//! unless the prewarm pool has stock; the `min_replicas` baseline is
//! provisioned at deployment time, off the serving path. With
//! `ServeConfig::lifecycle` set, the scalar prewarm pool is replaced by
//! the tiered start ladder of `chiron-lifecycle`: scale-ups acquire from
//! the cheapest pooled tier (snapshot restore, zygote fork) and fall
//! through to the cold boot, pool slot builds ride the autoscaler tick,
//! and the pools' standing rent lands on the bill next to replica
//! capacity.
//!
//! Node kills are crash-stop: completions from a failed node are lost,
//! and the control plane only learns of the failure after
//! `heartbeat_miss_limit` missed heartbeats — then it writes off the
//! node's replicas, re-queues their in-flight requests (at the queue
//! front, preserving arrival order), re-shards the dead node's queue, and
//! spawns replacements. Accepted requests are therefore never dropped,
//! only delayed, unless the whole cluster is gone.

use crate::autoscaler::Autoscaler;
use crate::config::{RouterPolicy, ServeConfig, Workload};
use crate::events::{EventKind, EventQueue};
use crate::faults::FaultPlan;
use crate::report::{PhaseSummary, RequestRecord, ServeReport};
use crate::router::{Router, Shard};
use chiron_deploy::{
    placement_overhead, scheduling_architectures, ClusterState, NodeId, Placement, PlacementError,
};
use chiron_lifecycle::{PoolAction, PrewarmPools, StartTier, TierTable};
use chiron_metrics::{plan_resources, ArrivalGen, StreamingHistogram};
use chiron_model::{DeploymentPlan, PlanError, SimDuration, SimTime, Workflow};
use chiron_obs::{
    emit, BurnRateMonitor, StaticCounter, StaticGauge, StaticHistogram, TraceEventKind,
};
use chiron_runtime::VirtualPlatform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Highest queue depth any autoscaler tick observed.
static QUEUE_DEPTH_PEAK: StaticGauge = StaticGauge::new("serve.autoscaler.queue_depth_peak");
/// Sum of per-tick queue depths (mean = sum / ticks).
static QUEUE_DEPTH_SUM: StaticCounter = StaticCounter::new("serve.autoscaler.queue_depth_sum");
static AUTOSCALER_TICKS: StaticCounter = StaticCounter::new("serve.autoscaler.ticks");
/// In-flight requests re-queued by failure recovery.
static REQUEUES: StaticCounter = StaticCounter::new("serve.failures.requeues");
/// Completed-request sojourn distribution, across every run this process
/// executed since the last `chiron_obs::reset_metrics()`.
static SOJOURNS: StaticHistogram = StaticHistogram::new("serve.sojourn");

/// Trace encoding of a queue shard (see [`TraceEventKind::Enqueue`]).
fn shard_code(shard: Shard) -> i64 {
    match shard {
        Shard::Global => -1,
        Shard::Overflow => -2,
        Shard::Node(i) => i as i64,
    }
}

/// Why a serving run could not start.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The deployment plan is invalid for the workflow.
    Plan(PlanError),
    /// The baseline `min_replicas` do not fit the cluster.
    Placement(PlacementError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Plan(e) => write!(f, "invalid plan: {e}"),
            ServeError::Placement(e) => write!(f, "baseline placement failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError::Plan(e)
    }
}

impl From<PlacementError> for ServeError {
    fn from(e: PlacementError) -> Self {
        ServeError::Placement(e)
    }
}

/// A configured serving simulation, reusable across runs.
#[derive(Debug, Clone)]
pub struct ServeSimulation {
    workflow: Workflow,
    plan: DeploymentPlan,
    config: ServeConfig,
    faults: FaultPlan,
    /// Replaces the DES-measured warm service base (what-if experiments
    /// use this to virtually speed up one latency component).
    service_base_override: Option<SimDuration>,
}

impl ServeSimulation {
    pub fn new(workflow: Workflow, plan: DeploymentPlan, config: ServeConfig) -> Self {
        ServeSimulation {
            workflow,
            plan,
            config,
            faults: FaultPlan::none(),
            service_base_override: None,
        }
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Forces the warm per-request service base instead of measuring it
    /// on the virtual platform. The DES profiling execute (and its trace
    /// spans) is skipped, so this is for what-if re-runs on plans the
    /// baseline already validated.
    pub fn with_service_base_override(mut self, base: SimDuration) -> Self {
        self.service_base_override = Some(base);
        self
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Drives `workload` through the cluster. Deterministic in
    /// `(workload, seed)`: two runs yield byte-identical reports.
    pub fn run(&self, workload: &Workload, seed: u64) -> Result<ServeReport, ServeError> {
        Run::new(self, workload, seed)?.run()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplicaState {
    /// Cold-starting (or prewarm-activating); schedulable once ready.
    Starting,
    Idle {
        since: SimTime,
    },
    Busy {
        request: u64,
        dispatch_seq: u64,
    },
    /// Written off by failure detection.
    Dead,
    /// Scaled down after its keepalive expired.
    Retired,
}

#[derive(Debug, Clone)]
struct Replica {
    placement: Placement,
    /// Node of stage 1's primary wrap — the shard this replica drains.
    node: usize,
    /// Warm per-request service time including placement + routing
    /// overheads (before jitter).
    service: SimDuration,
    state: ReplicaState,
    /// How this replica's sandboxes came up.
    start_tier: StartTier,
    /// On-path startup latency the start paid (zero for warm handovers).
    start_latency: SimDuration,
    /// Deployment-time baseline (`min_replicas`): held for the whole
    /// run, so no keepalive drain tail applies.
    baseline: bool,
    /// Nanoseconds spent serving requests (for the busy/idle split).
    busy_ns: u64,
    served: u64,
    started_at: SimTime,
    ended_at: Option<SimTime>,
}

impl Replica {
    fn usable(&self) -> bool {
        matches!(
            self.state,
            ReplicaState::Starting | ReplicaState::Idle { .. } | ReplicaState::Busy { .. }
        )
    }
}

struct Run<'a> {
    sim: &'a ServeSimulation,
    workload: &'a Workload,
    /// Warm single-request e2e latency of the plan (no placement/routing).
    service_base: SimDuration,
    /// Routing-architecture overhead added to every request.
    policy_overhead: SimDuration,
    cluster: ClusterState,
    router: Router,
    autoscaler: Autoscaler,
    events: EventQueue,
    rng: StdRng,
    gaps: ArrivalGen,
    replicas: Vec<Replica>,
    records: Vec<RequestRecord>,
    /// Current queue shard of each request (for re-queues).
    shards: Vec<Shard>,
    /// Scratch: whether each node hosts a usable replica. Refreshed by
    /// [`Run::refresh_node_usable`]; reused across events so the hot
    /// dispatch path (one lookup per completion) allocates nothing.
    node_usable: Vec<bool>,
    /// Scratch: ascending node indices with a usable replica, derived from
    /// `node_usable` by [`Run::refresh_hosts`].
    hosts_scratch: Vec<usize>,
    /// Scratch: node deaths detected in one heartbeat sweep.
    detected_scratch: Vec<NodeId>,
    /// Scratch: in-flight requests to re-queue after a node death.
    requeue_scratch: Vec<u64>,
    /// Scratch: a dead node's stranded queue entries awaiting re-shard.
    stranded_scratch: Vec<u64>,
    /// Cumulative request count at the end of each phase.
    phase_ends: Vec<u64>,
    total: u64,
    arrived: u64,
    completed: u64,
    dispatch_seq: u64,
    prewarm_stock: u32,
    /// Tiered start pools; `None` = legacy scalar-prewarm behaviour.
    pools: Option<PrewarmPools>,
    /// Scratch: slot builds scheduled by one pool tick.
    pool_actions_scratch: Vec<PoolAction>,
    starts_by_tier: [u32; 4],
    /// Kills whose detection is still pending.
    undetected: Vec<(SimTime, NodeId)>,
    deadlocked: bool,
    last_completion: SimTime,
    cold_starts: u64,
    scale_ups: u32,
    scale_downs: u32,
    replicas_failed: u32,
    peak_replicas: u32,
    timeline: Vec<(u64, u32)>,
    /// Online SLO burn-rate monitor, fed at each completion (event time,
    /// so alerts are identical for any worker count).
    slo: Option<BurnRateMonitor>,
    sojourns: StreamingHistogram,
    phase_hists: Vec<StreamingHistogram>,
    phase_completed: Vec<u64>,
    phase_cold: Vec<u64>,
}

impl<'a> Run<'a> {
    fn new(
        sim: &'a ServeSimulation,
        workload: &'a Workload,
        seed: u64,
    ) -> Result<Self, ServeError> {
        // Names the capture before any other event so attribution knows
        // which (workflow, plan) this trace belongs to.
        if chiron_obs::tracing_enabled() {
            emit(
                0,
                TraceEventKind::RunContext {
                    workflow: chiron_obs::intern(&sim.workflow.name),
                    plan: chiron_obs::drift::plan_key(&sim.plan),
                },
            );
        }
        // Warm service time: one request on the virtual platform, cold
        // starts excluded (they are modelled at replica granularity here).
        // Its DES spans land in the trace and give attribution the
        // service-window component profile.
        let service_base = match sim.service_base_override {
            Some(base) => base,
            None => {
                let platform =
                    VirtualPlatform::new(sim.config.platform.clone()).with_cold_starts(false);
                platform.execute(&sim.workflow, &sim.plan, 0)?.e2e
            }
        };
        let (central, decentral) = scheduling_architectures(&sim.plan, &sim.config.platform.costs);
        let policy_overhead = match sim.config.router {
            RouterPolicy::CentralFifo => central,
            RouterPolicy::PartitionedByNode => decentral,
        };

        // The tier pools price slots off the plan's resident footprint;
        // derived once, the table is shared by billing and the planner.
        let pools = sim.config.lifecycle.as_ref().map(|cfg| {
            let usage = plan_resources(&sim.plan, &sim.workflow, &sim.config.platform.costs);
            let table = TierTable::derive(
                &sim.config.platform.costs,
                &cfg.costs,
                usage.memory_bytes,
                sim.plan.sandbox_count() as u32,
                cfg.snapshot_capacity,
                cfg.zygote_capacity,
            );
            PrewarmPools::new(cfg.clone(), table, SimTime::ZERO)
        });

        let nodes = sim.config.cluster.nodes as usize;
        let mut phase_ends = Vec::with_capacity(workload.phases.len());
        let mut cum = 0u64;
        for p in &workload.phases {
            cum += p.requests;
            phase_ends.push(cum);
        }

        let mut run = Run {
            sim,
            workload,
            service_base,
            policy_overhead,
            cluster: ClusterState::new(sim.config.cluster.clone()),
            router: Router::new(sim.config.router, nodes),
            autoscaler: Autoscaler::new(sim.config.autoscaler),
            events: EventQueue::with_capacity(
                sim.config.replicas.max_replicas as usize + sim.faults.node_kills.len() + 8,
            ),
            rng: StdRng::seed_from_u64(seed ^ 0x5e2e_5e2e_5e2e_5e2e),
            gaps: workload.arrivals.gaps(),
            replicas: Vec::new(),
            records: Vec::with_capacity(cum as usize),
            shards: Vec::with_capacity(cum as usize),
            node_usable: Vec::with_capacity(nodes),
            hosts_scratch: Vec::with_capacity(nodes),
            detected_scratch: Vec::new(),
            requeue_scratch: Vec::new(),
            stranded_scratch: Vec::new(),
            phase_ends,
            total: cum,
            arrived: 0,
            completed: 0,
            dispatch_seq: 0,
            prewarm_stock: sim.config.replicas.prewarm_pool,
            pools,
            pool_actions_scratch: Vec::new(),
            starts_by_tier: [0; 4],
            // Kills aimed at node ids outside the cluster have nothing to
            // hit; drop them rather than index past the node tables.
            undetected: sim
                .faults
                .node_kills
                .iter()
                .copied()
                .filter(|&(_, node)| node.0 < sim.config.cluster.nodes)
                .collect(),
            deadlocked: false,
            last_completion: SimTime::ZERO,
            cold_starts: 0,
            scale_ups: 0,
            scale_downs: 0,
            replicas_failed: 0,
            peak_replicas: 0,
            timeline: Vec::new(),
            slo: sim.config.slo.map(BurnRateMonitor::new),
            sojourns: StreamingHistogram::new(),
            phase_hists: workload
                .phases
                .iter()
                .map(|_| StreamingHistogram::new())
                .collect(),
            phase_completed: vec![0; workload.phases.len()],
            phase_cold: vec![0; workload.phases.len()],
        };

        // Deployment-time baseline: min_replicas warm at t=0 (their cold
        // starts happened before serving began, off the measured path).
        for _ in 0..sim.config.replicas.min_replicas {
            let placement =
                run.cluster
                    .place_replica(&sim.plan, &sim.workflow, sim.config.placement)?;
            run.push_replica(placement, SimTime::ZERO, StartTier::Warm, SimDuration::ZERO);
            let id = run.replicas.len() - 1;
            run.replicas[id].state = ReplicaState::Idle {
                since: SimTime::ZERO,
            };
            run.replicas[id].baseline = true;
            run.starts_by_tier[StartTier::Warm.code() as usize] += 1;
            emit(
                0,
                TraceEventKind::ReplicaSpawn {
                    replica: id as u32,
                    node: run.replicas[id].node as u32,
                    cold: false,
                    tier: StartTier::Warm.code(),
                },
            );
            emit(0, TraceEventKind::ReplicaReady { replica: id as u32 });
        }
        run.push_timeline(SimTime::ZERO);

        if run.total > 0 {
            run.events.push(SimTime::ZERO, EventKind::Arrival);
        }
        run.events.push(
            SimTime::ZERO + sim.config.autoscaler.tick,
            EventKind::AutoscaleTick,
        );
        if !sim.faults.is_empty() {
            for &(at, node) in &sim.faults.node_kills {
                run.events.push(at, EventKind::NodeKill { node });
            }
            run.events.push(
                SimTime::ZERO + sim.config.heartbeat_interval,
                EventKind::Heartbeat,
            );
        }
        Ok(run)
    }

    fn run(mut self) -> Result<ServeReport, ServeError> {
        while let Some(event) = self.events.pop() {
            let now = event.at;
            match event.kind {
                EventKind::Arrival => self.on_arrival(now),
                EventKind::Completion {
                    replica,
                    request,
                    dispatch_seq,
                } => self.on_completion(now, replica, request, dispatch_seq),
                EventKind::ReplicaReady { replica } => {
                    if self.replicas[replica as usize].state == ReplicaState::Starting {
                        self.replicas[replica as usize].state = ReplicaState::Idle { since: now };
                        emit(now.as_nanos(), TraceEventKind::ReplicaReady { replica });
                        self.kick(now);
                    }
                }
                EventKind::AutoscaleTick => self.on_tick(now),
                EventKind::PoolSlotReady { tier } => {
                    if let Some(pools) = &mut self.pools {
                        pools.slot_ready(StartTier::from_code(tier), now);
                    }
                }
                EventKind::Heartbeat => self.on_heartbeat(now),
                EventKind::NodeKill { node } => {
                    emit(now.as_nanos(), TraceEventKind::NodeKill { node: node.0 });
                    self.cluster.fail_node(node)
                }
            }
        }
        Ok(self.into_report())
    }

    // ---- event handlers -------------------------------------------------

    fn on_arrival(&mut self, now: SimTime) {
        let id = self.arrived;
        self.arrived += 1;
        if let Some(pools) = &mut self.pools {
            pools.observe_arrival();
        }
        let phase = self.phase_of(id);
        self.records.push(RequestRecord {
            arrival_ns: now.as_nanos(),
            dispatched_ns: None,
            completed_ns: None,
            replica: 0,
            phase: phase as u16,
            cold_start: false,
            tier: 0,
            requeues: 0,
        });
        emit(
            now.as_nanos(),
            TraceEventKind::Arrival {
                request: id,
                phase: phase as u16,
            },
        );
        self.refresh_hosts();
        let shard = self.router.choose_shard(&self.hosts_scratch);
        self.router.push_back(shard, id);
        self.shards.push(shard);
        emit(
            now.as_nanos(),
            TraceEventKind::Enqueue {
                request: id,
                shard: shard_code(shard),
            },
        );
        self.kick(now);
        if self.arrived < self.total {
            let rps = self.workload.phases[self.phase_of(self.arrived)].rps;
            let gap = self.gaps.next_gap(rps);
            self.events.push(now + gap, EventKind::Arrival);
        }
    }

    fn on_completion(&mut self, now: SimTime, replica: u32, request: u64, dispatch_seq: u64) {
        let rep = &self.replicas[replica as usize];
        let current = matches!(
            rep.state,
            ReplicaState::Busy { request: r, dispatch_seq: s }
                if r == request && s == dispatch_seq
        );
        // A completion from a crashed node never reaches the router; the
        // request stays Busy until heartbeat detection re-queues it.
        let broken = rep
            .placement
            .assignments
            .iter()
            .any(|&(_, n)| self.cluster.is_failed(n));
        if !current || broken {
            return; // stale (re-queued / replica dead) or physically lost
        }

        let rec = &mut self.records[request as usize];
        rec.completed_ns = Some(now.as_nanos());
        let sojourn = SimDuration::from_nanos(now.as_nanos() - rec.arrival_ns);
        emit(
            now.as_nanos(),
            TraceEventKind::Complete { request, replica },
        );
        let phase = rec.phase as usize;
        let cold = rec.cold_start;
        self.sojourns.record(sojourn);
        SOJOURNS.record(sojourn);
        self.phase_hists[phase].record(sojourn);
        self.phase_completed[phase] += 1;
        if cold {
            self.cold_starts += 1;
            self.phase_cold[phase] += 1;
        }
        self.autoscaler.observe(sojourn);
        if let Some(monitor) = &mut self.slo {
            if let Some(t) = monitor.observe(now.as_nanos(), sojourn) {
                let (short_burn_centi, long_burn_centi) = t.burns_centi();
                emit(
                    now.as_nanos(),
                    TraceEventKind::SloAlert {
                        fired: t.fired,
                        short_burn_centi,
                        long_burn_centi,
                    },
                );
            }
        }
        self.completed += 1;
        self.last_completion = now;

        let rep = &mut self.replicas[replica as usize];
        rep.served += 1;
        if let Some(d) = self.records[request as usize].dispatched_ns {
            rep.busy_ns += now.as_nanos().saturating_sub(d);
        }
        rep.state = ReplicaState::Idle { since: now };
        let node = rep.node;
        self.refresh_node_usable();
        if let Some(next) = self.router.next_for(node, &self.node_usable) {
            self.dispatch(replica, next, now);
        }
    }

    fn on_tick(&mut self, now: SimTime) {
        if !self.work_remains() || self.deadlocked {
            return; // stop the tick train once the run is over (or wedged)
        }
        let queued = self.router.queued();
        QUEUE_DEPTH_PEAK.set_max(queued as u64);
        QUEUE_DEPTH_SUM.add(queued as u64);
        AUTOSCALER_TICKS.incr();
        let usable = self.usable_count();
        let want = self.autoscaler.replicas_to_add(queued, usable);
        for _ in 0..want {
            if self.usable_count() >= self.sim.config.replicas.max_replicas {
                break;
            }
            if !self.try_spawn(now) {
                break;
            }
        }
        self.retire_idle(now);
        self.kick(now);
        // The pool policy rides the same tick: re-forecast, restock
        // toward target (slot builds become future PoolSlotReady
        // events), evict surplus rent.
        if let Some(pools) = &mut self.pools {
            let mut actions = std::mem::take(&mut self.pool_actions_scratch);
            actions.clear();
            pools.on_tick(now, self.sim.config.autoscaler.tick, &mut actions);
            for a in &actions {
                self.events.push(
                    now + a.ready_in,
                    EventKind::PoolSlotReady {
                        tier: a.tier.code(),
                    },
                );
            }
            self.pool_actions_scratch = actions;
        }
        self.events.push(
            now + self.sim.config.autoscaler.tick,
            EventKind::AutoscaleTick,
        );
    }

    fn on_heartbeat(&mut self, now: SimTime) {
        let threshold =
            self.sim.config.heartbeat_interval * u64::from(self.sim.config.heartbeat_miss_limit);
        // Taken (not borrowed) so `handle_node_death` can take `&mut self`
        // inside the loop; restored afterwards so the buffer is reused.
        let mut detected = std::mem::take(&mut self.detected_scratch);
        detected.clear();
        self.undetected.retain(|&(at, node)| {
            if now.as_nanos() >= (at + threshold).as_nanos() {
                detected.push(node);
                false
            } else {
                true
            }
        });
        for &node in &detected {
            self.handle_node_death(node, now);
        }
        self.detected_scratch = detected;
        if !self.undetected.is_empty() {
            self.events.push(
                now + self.sim.config.heartbeat_interval,
                EventKind::Heartbeat,
            );
        }
    }

    fn handle_node_death(&mut self, node: NodeId, now: SimTime) {
        emit(now.as_nanos(), TraceEventKind::NodeDeath { node: node.0 });
        let mut requeue = std::mem::take(&mut self.requeue_scratch);
        requeue.clear();
        let mut dead = 0u32;
        // Disjoint field borrows: the cluster refund reads the replica's
        // placement in place instead of cloning it per failure.
        let Run {
            replicas,
            cluster,
            sim,
            replicas_failed,
            ..
        } = self;
        for rep in replicas.iter_mut() {
            let touches = rep.placement.assignments.iter().any(|&(_, n)| n == node);
            if !touches || !rep.usable() {
                continue;
            }
            if let ReplicaState::Busy { request, .. } = rep.state {
                requeue.push(request);
            }
            rep.state = ReplicaState::Dead;
            rep.ended_at = Some(now);
            // Refunds only the replica's live-node share; the dead node's
            // capacity was written off by fail_node.
            cluster.remove_replica(&sim.plan, &sim.workflow, &rep.placement);
            *replicas_failed += 1;
            dead += 1;
        }
        self.push_timeline(now);

        // The host set is stable for the rest of this handler (only the
        // router changes below), so one refresh serves every re-shard.
        self.refresh_hosts();

        // The dead node's own queue never dispatched: re-shard in order.
        if self.sim.config.router == RouterPolicy::PartitionedByNode {
            let mut stranded = std::mem::take(&mut self.stranded_scratch);
            stranded.clear();
            self.router.drain_node_into(node.0 as usize, &mut stranded);
            for &req in &stranded {
                let shard = self.router.choose_shard(&self.hosts_scratch);
                self.router.push_back(shard, req);
                self.shards[req as usize] = shard;
            }
            self.stranded_scratch = stranded;
        }

        // In-flight work goes back to the front, oldest request foremost.
        requeue.sort_unstable();
        for &req in requeue.iter().rev() {
            self.records[req as usize].requeues += 1;
            emit(
                now.as_nanos(),
                TraceEventKind::Requeue {
                    request: req,
                    replica: self.records[req as usize].replica,
                },
            );
            let shard = self.router.choose_shard(&self.hosts_scratch);
            self.router.push_front(shard, req);
            self.shards[req as usize] = shard;
        }
        REQUEUES.add(requeue.len() as u64);
        self.requeue_scratch = requeue;

        // Replace the lost capacity immediately (cold starts apply).
        for _ in 0..dead {
            if self.usable_count() >= self.sim.config.replicas.max_replicas {
                break;
            }
            if !self.try_spawn(now) {
                break;
            }
        }
        self.kick(now);
    }

    // ---- mechanics ------------------------------------------------------

    /// Spawns one replica; returns false (and flags deadlock when fatal)
    /// if the cluster is full.
    fn try_spawn(&mut self, now: SimTime) -> bool {
        match self.cluster.place_replica(
            &self.sim.plan,
            &self.sim.workflow,
            self.sim.config.placement,
        ) {
            Ok(placement) => {
                // Tiered pools pick the cheapest start with stock; the
                // legacy path keeps the scalar prewarm semantics (zero-
                // latency handover while stock lasts, then a cold boot).
                let (tier, latency) = match &mut self.pools {
                    Some(pools) => {
                        let tier = pools.acquire(now);
                        (tier, pools.table().startup_of(tier))
                    }
                    None => {
                        if self.prewarm_stock > 0 {
                            self.prewarm_stock -= 1;
                            (StartTier::Warm, SimDuration::ZERO)
                        } else {
                            (
                                StartTier::ColdBoot,
                                self.sim.config.platform.costs.sandbox_cold_start,
                            )
                        }
                    }
                };
                self.push_replica(placement, now, tier, latency);
                let id = (self.replicas.len() - 1) as u32;
                self.starts_by_tier[tier.code() as usize] += 1;
                emit(
                    now.as_nanos(),
                    TraceEventKind::ReplicaSpawn {
                        replica: id,
                        node: self.replicas[id as usize].node as u32,
                        cold: latency > SimDuration::ZERO,
                        tier: tier.code(),
                    },
                );
                self.events
                    .push(now + latency, EventKind::ReplicaReady { replica: id });
                self.scale_ups += 1;
                self.push_timeline(now);
                true
            }
            Err(_) => {
                if self.usable_count() == 0 && self.router.queued() > 0 {
                    // Nothing can ever progress again: no replicas, no room.
                    self.deadlocked = true;
                }
                false
            }
        }
    }

    fn push_replica(
        &mut self,
        placement: Placement,
        now: SimTime,
        tier: StartTier,
        latency: SimDuration,
    ) {
        let primary = self.sim.plan.stages[0].wraps[0].sandbox;
        let node = placement.node_of(primary).expect("placed plan").0 as usize;
        let service = self.service_base
            + placement_overhead(&self.sim.plan, &placement, self.cluster.config())
            + self.policy_overhead;
        self.replicas.push(Replica {
            placement,
            node,
            service,
            state: ReplicaState::Starting,
            start_tier: tier,
            start_latency: latency,
            baseline: false,
            busy_ns: 0,
            served: 0,
            started_at: now,
            ended_at: None,
        });
    }

    fn dispatch(&mut self, replica: u32, request: u64, now: SimTime) {
        self.dispatch_seq += 1;
        let seq = self.dispatch_seq;
        let u: f64 = self.rng.random();
        let mult = 1.0 + self.sim.config.service_jitter * (2.0 * u - 1.0);
        let rep = &mut self.replicas[replica as usize];
        let cold = rep.start_latency > SimDuration::ZERO && rep.served == 0;
        rep.state = ReplicaState::Busy {
            request,
            dispatch_seq: seq,
        };
        let service = rep.service.mul_f64(mult);
        let node = rep.node as u32;
        let tier = rep.start_tier;
        let rec = &mut self.records[request as usize];
        rec.dispatched_ns = Some(now.as_nanos());
        rec.replica = replica;
        rec.cold_start = cold;
        rec.tier = tier.code();
        emit(
            now.as_nanos(),
            TraceEventKind::Dispatch {
                request,
                replica,
                node,
                cold,
            },
        );
        self.events.push(
            now + service,
            EventKind::Completion {
                replica,
                request,
                dispatch_seq: seq,
            },
        );
    }

    /// Hands queued work to every idle replica that can take some.
    fn kick(&mut self, now: SimTime) {
        // Dispatching keeps replicas usable (Idle → Busy), so one refresh
        // covers the whole sweep.
        self.refresh_node_usable();
        for i in 0..self.replicas.len() {
            if matches!(self.replicas[i].state, ReplicaState::Idle { .. }) {
                if let Some(req) = self
                    .router
                    .next_for(self.replicas[i].node, &self.node_usable)
                {
                    self.dispatch(i as u32, req, now);
                }
            }
        }
    }

    fn retire_idle(&mut self, now: SimTime) {
        let keepalive = self.sim.config.replicas.keepalive;
        let min = self.sim.config.replicas.min_replicas;
        // Each retirement removes exactly one usable replica, so a local
        // counter tracks `usable_count()` without re-scanning per replica;
        // the disjoint field borrows avoid cloning each placement.
        let mut usable = self.usable_count();
        let Run {
            replicas,
            cluster,
            router,
            sim,
            scale_downs,
            peak_replicas,
            timeline,
            ..
        } = self;
        for (id, rep) in replicas.iter_mut().enumerate() {
            if usable <= min {
                break;
            }
            let ReplicaState::Idle { since } = rep.state else {
                continue;
            };
            if now.since(since) < keepalive {
                continue;
            }
            // A partitioned replica with work sharded to its node stays.
            if sim.config.router == RouterPolicy::PartitionedByNode
                && router.queued_on(rep.node) > 0
            {
                continue;
            }
            rep.state = ReplicaState::Retired;
            rep.ended_at = Some(now);
            emit(
                now.as_nanos(),
                TraceEventKind::ReplicaRetired { replica: id as u32 },
            );
            cluster.remove_replica(&sim.plan, &sim.workflow, &rep.placement);
            *scale_downs += 1;
            usable -= 1;
            *peak_replicas = (*peak_replicas).max(usable);
            timeline.push((now.as_nanos(), usable));
        }
    }

    // ---- bookkeeping ----------------------------------------------------

    fn phase_of(&self, request: u64) -> usize {
        self.phase_ends
            .iter()
            .position(|&end| request < end)
            .unwrap_or(self.phase_ends.len() - 1)
    }

    fn usable_count(&self) -> u32 {
        self.replicas.iter().filter(|r| r.usable()).count() as u32
    }

    fn refresh_node_usable(&mut self) {
        self.node_usable.clear();
        self.node_usable
            .resize(self.sim.config.cluster.nodes as usize, false);
        for r in &self.replicas {
            if r.usable() {
                self.node_usable[r.node] = true;
            }
        }
    }

    fn refresh_hosts(&mut self) {
        self.refresh_node_usable();
        self.hosts_scratch.clear();
        self.hosts_scratch.extend(
            self.node_usable
                .iter()
                .enumerate()
                .filter_map(|(i, &h)| h.then_some(i)),
        );
    }

    fn work_remains(&self) -> bool {
        self.arrived < self.total || self.completed < self.arrived
    }

    fn push_timeline(&mut self, now: SimTime) {
        let usable = self.usable_count();
        self.peak_replicas = self.peak_replicas.max(usable);
        self.timeline.push((now.as_nanos(), usable));
    }

    fn into_report(mut self) -> ServeReport {
        let end = self.last_completion;
        let keepalive = self.sim.config.replicas.keepalive;
        let usage = plan_resources(
            &self.sim.plan,
            &self.sim.workflow,
            &self.sim.config.platform.costs,
        );
        let mut replica_seconds = 0.0f64;
        let mut busy_replica_seconds = 0.0f64;
        let mut keepalive_tail_seconds = 0.0f64;
        for r in &self.replicas {
            let until = r
                .ended_at
                .unwrap_or(end)
                .as_nanos()
                .max(r.started_at.as_nanos());
            // Keepalive drain tail: an autoscaled replica still alive at
            // the last completion keeps occupying its nodes until its
            // keepalive expires — capacity that used to go unbilled. The
            // deployment-time baseline is excluded: it is held
            // indefinitely by configuration, not by keepalive.
            let tail = if r.ended_at.is_none() && !r.baseline {
                match r.state {
                    ReplicaState::Idle { since } => {
                        let expiry = (since + keepalive).as_nanos();
                        SimDuration::from_nanos(expiry.saturating_sub(until)).as_secs_f64()
                    }
                    ReplicaState::Starting | ReplicaState::Busy { .. } => keepalive.as_secs_f64(),
                    ReplicaState::Dead | ReplicaState::Retired => 0.0,
                }
            } else {
                0.0
            };
            keepalive_tail_seconds += tail;
            replica_seconds +=
                SimDuration::from_nanos(until - r.started_at.as_nanos()).as_secs_f64() + tail;
            busy_replica_seconds += r.busy_ns as f64 / 1e9;
        }
        let idle_replica_seconds = (replica_seconds - busy_replica_seconds).max(0.0);
        let gb = usage.memory_bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        let gb_seconds = replica_seconds * gb;
        let ghz_seconds =
            replica_seconds * f64::from(usage.cpus) * self.sim.config.platform.costs.cpu_ghz;
        let billing = &self.sim.config.platform.billing;
        let cost_usd =
            gb_seconds * billing.usd_per_gb_second + ghz_seconds * billing.usd_per_ghz_second;
        let (pool_gb_seconds, pool_rent_usd) = match &mut self.pools {
            Some(pools) => {
                pools.finish(end);
                let gbs = pools.rent_gb_seconds();
                (gbs, gbs * billing.usd_per_gb_second)
            }
            None => (0.0, 0.0),
        };

        let phases = self
            .workload
            .phases
            .iter()
            .zip(self.phase_hists.iter())
            .zip(self.phase_completed.iter().zip(self.phase_cold.iter()))
            .map(|((p, hist), (&completed, &cold))| PhaseSummary {
                offered_rps: p.rps,
                completed,
                mean_sojourn: hist.mean(),
                p50_sojourn: hist.percentile(0.50),
                p99_sojourn: hist.percentile(0.99),
                max_sojourn: hist.max(),
                cold_starts: cold,
            })
            .collect();

        let requeued_requests = self.records.iter().filter(|r| r.requeues > 0).count() as u64;

        ServeReport {
            accepted: self.arrived,
            completed: self.completed,
            lost: self.arrived - self.completed,
            requeued_requests,
            cold_starts: self.cold_starts,
            makespan: SimDuration::from_nanos(end.as_nanos()),
            sojourns: self.sojourns,
            phases,
            peak_replicas: self.peak_replicas,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            replicas_failed: self.replicas_failed,
            starts_by_tier: self.starts_by_tier,
            replica_seconds,
            gb_seconds,
            ghz_seconds,
            cost_usd,
            busy_replica_seconds,
            idle_replica_seconds,
            keepalive_tail_seconds,
            pool_gb_seconds,
            pool_rent_usd,
            replica_timeline: self.timeline,
            slo: self.slo.map(BurnRateMonitor::into_summary),
            records: self.records,
        }
    }
}
