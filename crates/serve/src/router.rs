//! Run-queue state for both routing architectures.
//!
//! The router owns only queues and the shard cursor; replica state lives
//! in the simulator. `CentralFifo` keeps one cluster-wide queue;
//! `PartitionedByNode` keeps one queue per node plus an overflow queue for
//! the (transient) case where no node hosts a replica.

use crate::config::RouterPolicy;
use chiron_obs::StaticCounter;
use std::collections::VecDeque;

/// Requests a partitioned replica drained from another node's orphaned
/// queue (a shard whose last replica died).
static STEALS: StaticCounter = StaticCounter::new("serve.router.steals");

#[derive(Debug, Clone)]
pub struct Router {
    policy: RouterPolicy,
    global: VecDeque<u64>,
    per_node: Vec<VecDeque<u64>>,
    overflow: VecDeque<u64>,
    rr: usize,
    /// Total queued requests across every shard, maintained on each
    /// push/pop so the hot path (`kick` early-exit, autoscaler ticks)
    /// never sums the per-node queues.
    len: usize,
}

/// Where a queued request was put (so re-queues can go back to the same
/// place's front).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shard {
    Global,
    Node(usize),
    Overflow,
}

impl Router {
    pub fn new(policy: RouterPolicy, nodes: usize) -> Self {
        Router {
            policy,
            global: VecDeque::new(),
            per_node: (0..nodes).map(|_| VecDeque::new()).collect(),
            overflow: VecDeque::new(),
            rr: 0,
            len: 0,
        }
    }

    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Picks the shard an arriving request belongs to. `hosts` is the
    /// ascending list of node indices currently hosting at least one
    /// usable replica (ignored by the central router).
    pub fn choose_shard(&mut self, hosts: &[usize]) -> Shard {
        match self.policy {
            RouterPolicy::CentralFifo => Shard::Global,
            RouterPolicy::PartitionedByNode => {
                if hosts.is_empty() {
                    return Shard::Overflow;
                }
                let pick = hosts[self.rr % hosts.len()];
                self.rr += 1;
                Shard::Node(pick)
            }
        }
    }

    pub fn push_back(&mut self, shard: Shard, request: u64) {
        self.len += 1;
        self.queue_mut(shard).push_back(request);
    }

    /// Re-queues a request at the front (failure recovery keeps FIFO order
    /// for work that was already dispatched once).
    pub fn push_front(&mut self, shard: Shard, request: u64) {
        self.len += 1;
        self.queue_mut(shard).push_front(request);
    }

    fn queue_mut(&mut self, shard: Shard) -> &mut VecDeque<u64> {
        match shard {
            Shard::Global => &mut self.global,
            Shard::Node(i) => &mut self.per_node[i],
            Shard::Overflow => &mut self.overflow,
        }
    }

    /// Next request for a replica living on `node`. Partitioned replicas
    /// drain their own node's queue, then the overflow queue, then —
    /// so no shard starves after its last replica dies — the lowest-index
    /// *orphan* queue (a node with work but no usable replica, per
    /// `node_has_replica`).
    pub fn next_for(&mut self, node: usize, node_has_replica: &[bool]) -> Option<u64> {
        let picked = match self.policy {
            RouterPolicy::CentralFifo => self.global.pop_front(),
            RouterPolicy::PartitionedByNode => 'pick: {
                if let Some(req) = self.per_node[node].pop_front() {
                    break 'pick Some(req);
                }
                if let Some(req) = self.overflow.pop_front() {
                    break 'pick Some(req);
                }
                let mut stolen = None;
                for (i, queue) in self.per_node.iter_mut().enumerate() {
                    if !node_has_replica[i] {
                        if let Some(req) = queue.pop_front() {
                            STEALS.incr();
                            stolen = Some(req);
                            break;
                        }
                    }
                }
                stolen
            }
        };
        if picked.is_some() {
            self.len -= 1;
        }
        picked
    }

    /// Removes and returns the most recently queued request — the one
    /// spillover sheds first, since it has waited the least and loses the
    /// least already-paid queueing time by moving clusters. Partitioned
    /// routers shed from their deepest queue (ties: overflow first, then
    /// the lowest node index), which is both deterministic and the shard
    /// the backlog actually sits on.
    pub fn pop_newest(&mut self) -> Option<u64> {
        let popped = match self.policy {
            RouterPolicy::CentralFifo => self.global.pop_back(),
            RouterPolicy::PartitionedByNode => {
                let mut deepest: Option<&mut VecDeque<u64>> = None;
                for q in std::iter::once(&mut self.overflow).chain(self.per_node.iter_mut()) {
                    let depth = q.len();
                    if depth > 0 && deepest.as_ref().map_or(0, |d| d.len()) < depth {
                        deepest = Some(q);
                    }
                }
                deepest.and_then(VecDeque::pop_back)
            }
        };
        if popped.is_some() {
            self.len -= 1;
        }
        popped
    }

    /// Empties a dead node's queue (its requests get re-sharded).
    pub fn drain_node(&mut self, node: usize) -> Vec<u64> {
        let mut out = Vec::new();
        self.drain_node_into(node, &mut out);
        out
    }

    /// Like [`Router::drain_node`], but appends into a caller-owned buffer
    /// so the failure-recovery path can reuse its scratch allocation.
    pub fn drain_node_into(&mut self, node: usize, out: &mut Vec<u64>) {
        self.len -= self.per_node[node].len();
        out.extend(self.per_node[node].drain(..));
    }

    pub fn queued(&self) -> usize {
        self.len
    }

    pub fn queued_on(&self, node: usize) -> usize {
        self.per_node[node].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_is_one_fifo() {
        let mut r = Router::new(RouterPolicy::CentralFifo, 4);
        let s = r.choose_shard(&[]);
        assert_eq!(s, Shard::Global);
        r.push_back(s, 1);
        r.push_back(s, 2);
        r.push_front(s, 0);
        assert_eq!(r.queued(), 3);
        assert_eq!(r.next_for(3, &[true; 4]), Some(0));
        assert_eq!(r.next_for(0, &[true; 4]), Some(1));
        assert_eq!(r.next_for(1, &[true; 4]), Some(2));
        assert_eq!(r.next_for(1, &[true; 4]), None);
    }

    #[test]
    fn partitioned_rotates_over_hosts() {
        let mut r = Router::new(RouterPolicy::PartitionedByNode, 4);
        let hosts = [1usize, 3];
        for req in 0..4u64 {
            let s = r.choose_shard(&hosts);
            r.push_back(s, req);
        }
        assert_eq!(r.queued_on(1), 2);
        assert_eq!(r.queued_on(3), 2);
        assert_eq!(r.queued_on(0), 0);
        // A replica on node 1 drains its own queue first.
        let has = [false, true, false, true];
        assert_eq!(r.next_for(1, &has), Some(0));
        assert_eq!(r.next_for(1, &has), Some(2));
    }

    #[test]
    fn orphan_queues_are_stolen() {
        let mut r = Router::new(RouterPolicy::PartitionedByNode, 3);
        r.push_back(Shard::Node(2), 9);
        // Node 2 lost its replicas; a node-0 replica steals the work.
        let has = [true, false, false];
        assert_eq!(r.next_for(0, &has), Some(9));
    }

    #[test]
    fn overflow_when_no_hosts() {
        let mut r = Router::new(RouterPolicy::PartitionedByNode, 2);
        let s = r.choose_shard(&[]);
        assert_eq!(s, Shard::Overflow);
        r.push_back(s, 7);
        assert_eq!(r.next_for(1, &[false, false]), Some(7));
    }

    #[test]
    fn drain_dead_node() {
        let mut r = Router::new(RouterPolicy::PartitionedByNode, 2);
        r.push_back(Shard::Node(0), 1);
        r.push_back(Shard::Node(0), 2);
        assert_eq!(r.drain_node(0), vec![1, 2]);
        assert_eq!(r.queued(), 0);
    }
}
