//! Fault injection: crash-stop node kills detected via missed heartbeats.

use chiron_deploy::NodeId;
use chiron_model::SimTime;
use serde::{Deserialize, Serialize};

/// Scripted failures for one serving run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// `(time, node)` crash-stop kills; each node dies at most once.
    pub node_kills: Vec<(SimTime, NodeId)>,
}

impl FaultPlan {
    pub fn none() -> Self {
        Self::default()
    }

    pub fn kill_at(mut self, at: SimTime, node: NodeId) -> Self {
        assert!(
            self.node_kills.iter().all(|&(_, n)| n != node),
            "{node:?} already scheduled to die"
        );
        self.node_kills.push((at, node));
        self
    }

    pub fn is_empty(&self) -> bool {
        self.node_kills.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_kills() {
        let plan = FaultPlan::none()
            .kill_at(SimTime::from_nanos(5), NodeId(2))
            .kill_at(SimTime::from_nanos(9), NodeId(0));
        assert_eq!(plan.node_kills.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "already scheduled")]
    fn double_kill_rejected() {
        let _ = FaultPlan::none()
            .kill_at(SimTime::from_nanos(1), NodeId(1))
            .kill_at(SimTime::from_nanos(2), NodeId(1));
    }
}
