//! Reactive autoscaling from queue depth and tail latency.
//!
//! Every tick the autoscaler compares the backlog per usable replica with
//! its target and the tick-window p99 sojourn with the latency target;
//! either signal over budget asks for more replicas (paying the 167 ms
//! sandbox cold start unless the prewarm pool has stock). Scale-*down* is
//! keepalive-driven and lives in the simulator: an idle replica is retired
//! only after `ReplicaConfig::keepalive` of idleness.

use chiron_metrics::StreamingHistogram;
use chiron_model::SimDuration;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerConfig {
    /// Evaluation period.
    pub tick: SimDuration,
    /// Queued requests per usable replica the scaler tolerates before
    /// adding capacity.
    pub target_queue_per_replica: f64,
    /// Tail-latency objective: if the tick window's p99 sojourn exceeds
    /// this, scale up even with a shallow queue.
    pub p99_target: SimDuration,
    /// Upper bound on replicas added per tick (cold starts are paid in
    /// parallel, but placement capacity is consumed).
    pub max_step_up: u32,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            tick: SimDuration::from_secs(1),
            target_queue_per_replica: 2.0,
            p99_target: SimDuration::from_millis(500),
            max_step_up: 8,
        }
    }
}

impl AutoscalerConfig {
    pub fn with_p99_target(mut self, target: SimDuration) -> Self {
        self.p99_target = target;
        self
    }

    pub fn with_tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }
}

/// Per-run autoscaler state: the sliding (per-tick) latency window.
///
/// The window only ever answers one question — "is the windowed p99 over
/// the target?" — so instead of a full histogram (whose bucket array
/// would be rebuilt every tick on the hot path) it keeps three scalars:
/// the sample count, the count at or below [`StreamingHistogram::threshold_cut`]
/// of the target, and whether any sample strictly exceeded the target.
/// `p99 > target` ⟺ `le_cut < ceil(0.99·n) ∧ over`, exactly matching the
/// histogram's bucketed percentile (see `threshold_cut`'s docs).
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    /// Largest sojourn (ns) still entirely below the target's bucket edge.
    cut_ns: u64,
    window_total: u64,
    window_le_cut: u64,
    window_over: bool,
}

impl Autoscaler {
    pub fn new(config: AutoscalerConfig) -> Self {
        let cut_ns = StreamingHistogram::threshold_cut(config.p99_target.as_nanos());
        Autoscaler {
            config,
            cut_ns,
            window_total: 0,
            window_le_cut: 0,
            window_over: false,
        }
    }

    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Feeds one completed request's sojourn into the current window.
    #[inline]
    pub fn observe(&mut self, sojourn: SimDuration) {
        let ns = sojourn.as_nanos();
        self.window_total += 1;
        self.window_le_cut += u64::from(ns <= self.cut_ns);
        self.window_over |= ns > self.config.p99_target.as_nanos();
    }

    /// Tick decision: how many replicas to add given the backlog and the
    /// number of usable replicas (live + still cold-starting). Resets the
    /// latency window.
    pub fn replicas_to_add(&mut self, queued: usize, usable: u32) -> u32 {
        let rank = (0.99 * self.window_total as f64).ceil().max(1.0) as u64;
        let p99_breach = self.window_total > 0 && self.window_le_cut < rank && self.window_over;
        self.window_total = 0;
        self.window_le_cut = 0;
        self.window_over = false;
        let backlog_allowance = self.config.target_queue_per_replica * f64::from(usable.max(1));
        let backlog_breach = queued as f64 > backlog_allowance;
        if !backlog_breach && !p99_breach {
            return 0;
        }
        // Size the step from the backlog: enough replicas that the queue
        // per replica returns to target; a pure-latency breach adds one.
        let desired = (queued as f64 / self.config.target_queue_per_replica).ceil() as u32;
        let add = desired.saturating_sub(usable).max(1);
        add.min(self.config.max_step_up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_system_does_not_scale() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        a.observe(SimDuration::from_millis(50));
        assert_eq!(a.replicas_to_add(1, 2), 0);
    }

    #[test]
    fn deep_backlog_scales_proportionally() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        // 40 queued at target 2/replica with 2 usable → wants 20, add 8 (cap).
        assert_eq!(a.replicas_to_add(40, 2), 8);
        // 7 queued with 2 usable → desired ceil(3.5)=4 → add 2.
        assert_eq!(a.replicas_to_add(7, 2), 2);
    }

    #[test]
    fn tail_latency_breach_scales_even_with_shallow_queue() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        for _ in 0..100 {
            a.observe(SimDuration::from_secs(2)); // far over the 500ms target
        }
        assert_eq!(a.replicas_to_add(0, 4), 1);
        // The window resets after each decision.
        assert_eq!(a.replicas_to_add(0, 4), 0);
    }

    #[test]
    fn step_is_capped() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            max_step_up: 3,
            ..Default::default()
        });
        assert_eq!(a.replicas_to_add(1000, 1), 3);
    }
}
