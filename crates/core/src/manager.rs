//! The Chiron deployment manager — the pipeline of Fig. 9.
//!
//! ➊ the user submits a workflow definition and a latency SLO; ➋ the
//! Profiler collects each function's execution behaviour; ➌ PGP explores
//! the optimal wrap design with the Predictor; ➍ the Generator emits each
//! wrap's orchestrator code; ➎ the platform spawns a sandbox per wrap;
//! ➏ invocations are routed to wrap 1, which drives the rest.

use chiron_deploy::{generate, GeneratedWrap};
use chiron_model::{DeploymentPlan, PlanError, PlatformConfig, SimDuration, Workflow};
use chiron_obs::WhatIfReport;
use chiron_pgp::{PgpConfig, PgpMode, PgpScheduler, ScheduleOutcome};
use chiron_predict::{CacheStats, PredictionCache, Predictor};
use chiron_profiler::{Profiler, WorkflowProfile};
use chiron_runtime::{RequestOutcome, VirtualPlatform};
use chiron_serve::{FaultPlan, ServeConfig, ServeError, ServeReport, ServeSimulation, Workload};

/// A deployed workflow: the artefacts of steps ➋–➎.
#[derive(Debug, Clone)]
pub struct Deployment {
    pub profile: WorkflowProfile,
    pub schedule: ScheduleOutcome,
    pub wraps: Vec<GeneratedWrap>,
}

impl Deployment {
    pub fn plan(&self) -> &DeploymentPlan {
        &self.schedule.plan
    }
}

/// The deployment manager.
#[derive(Debug)]
pub struct Chiron {
    platform: VirtualPlatform,
    profiler: Profiler,
    scheduler: PgpScheduler,
    /// Content-addressed Algorithm 1 memo shared by every schedule this
    /// manager runs: keys are pure functions of thread content, so entries
    /// stay valid across SLOs, modes, margins, re-profiles — and even
    /// across workflows that share function profiles (dynamic-workflow
    /// variants overlap heavily).
    prediction_cache: PredictionCache,
    /// Worker threads for PGP's parallel candidate search. 1 = sequential.
    scheduler_workers: usize,
}

impl Chiron {
    pub fn new(config: PlatformConfig) -> Self {
        let scheduler = PgpScheduler::new(Predictor::from_config(&config));
        Chiron {
            platform: VirtualPlatform::new(config),
            profiler: Profiler::default(),
            scheduler,
            prediction_cache: PredictionCache::new(),
            scheduler_workers: 1,
        }
    }

    /// Replaces the Profiler (e.g. to add measurement noise).
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// Enables PGP's cache-sharing parallel search with `workers` threads.
    pub fn with_scheduler_workers(mut self, workers: usize) -> Self {
        self.scheduler_workers = workers.max(1);
        self
    }

    /// Hit/miss/entry counts of the shared prediction memo.
    pub fn cache_stats(&self) -> CacheStats {
        self.prediction_cache.stats()
    }

    pub fn platform(&self) -> &VirtualPlatform {
        &self.platform
    }

    fn run_scheduler(
        &self,
        workflow: &Workflow,
        profile: &WorkflowProfile,
        config: &PgpConfig,
    ) -> ScheduleOutcome {
        if self.scheduler_workers > 1 {
            self.scheduler.schedule_parallel_with_cache(
                workflow,
                profile,
                config,
                self.scheduler_workers,
                &self.prediction_cache,
            )
        } else {
            self.scheduler
                .schedule_with_cache(workflow, profile, config, &self.prediction_cache)
        }
    }

    /// Steps ➋–➎: profile, schedule, generate.
    pub fn deploy(
        &self,
        workflow: &Workflow,
        slo: Option<SimDuration>,
        mode: PgpMode,
    ) -> Deployment {
        let profile = self.profiler.profile_workflow(workflow);
        let config = match slo {
            Some(slo) => PgpConfig::with_slo(slo).with_mode(mode),
            None => PgpConfig::performance_first().with_mode(mode),
        };
        let schedule = self.run_scheduler(workflow, &profile, &config);
        // Drift monitor (chiron-obs, off by default): the prediction PGP
        // committed to becomes the baseline later observations are
        // compared against.
        if chiron_obs::drift_monitor_enabled() {
            chiron_obs::record_prediction(
                &workflow.name,
                chiron_obs::drift::plan_key(&schedule.plan),
                None,
                schedule.predicted,
            );
        }
        let wraps = generate(workflow, &schedule.plan);
        Deployment {
            profile,
            schedule,
            wraps,
        }
    }

    /// Steps ➋–➎ with a caller-supplied PGP configuration — the hook for
    /// opting into non-default knobs like the shm-ring transfer tier
    /// (`PgpConfig::with_transfer`) while keeping the same profiling,
    /// drift-baseline and wrap-generation pipeline as [`Chiron::deploy`].
    pub fn deploy_with_config(&self, workflow: &Workflow, config: &PgpConfig) -> Deployment {
        let profile = self.profiler.profile_workflow(workflow);
        let schedule = self.run_scheduler(workflow, &profile, config);
        if chiron_obs::drift_monitor_enabled() {
            chiron_obs::record_prediction(
                &workflow.name,
                chiron_obs::drift::plan_key(&schedule.plan),
                None,
                schedule.predicted,
            );
        }
        let wraps = generate(workflow, &schedule.plan);
        Deployment {
            profile,
            schedule,
            wraps,
        }
    }

    /// Step ➏: routes one request through the deployed wraps.
    pub fn invoke(
        &self,
        workflow: &Workflow,
        deployment: &Deployment,
        seed: u64,
    ) -> Result<RequestOutcome, PlanError> {
        let outcome = self.platform.execute(workflow, deployment.plan(), seed)?;
        if chiron_obs::drift_monitor_enabled() {
            chiron_obs::record_observation(
                &workflow.name,
                chiron_obs::drift::plan_key(deployment.plan()),
                None,
                outcome.e2e,
            );
        }
        Ok(outcome)
    }

    /// Online serving: drives an open-loop workload against the deployed
    /// wraps on the virtual cluster — router, autoscaler and failure
    /// recovery per [`chiron_serve`]. Deterministic in `(workload, seed)`.
    pub fn serve(
        &self,
        workflow: &Workflow,
        deployment: &Deployment,
        config: ServeConfig,
        workload: &Workload,
        seed: u64,
    ) -> Result<ServeReport, ServeError> {
        self.serve_with_faults(
            workflow,
            deployment,
            config,
            FaultPlan::none(),
            workload,
            seed,
        )
    }

    /// [`Chiron::serve`] with scripted node kills.
    pub fn serve_with_faults(
        &self,
        workflow: &Workflow,
        deployment: &Deployment,
        config: ServeConfig,
        faults: FaultPlan,
        workload: &Workload,
        seed: u64,
    ) -> Result<ServeReport, ServeError> {
        ServeSimulation::new(workflow.clone(), deployment.plan().clone(), config)
            .with_faults(faults)
            .run(workload, seed)
    }

    /// Traced serving run plus exact latency attribution: enables the
    /// trace sink around one [`Chiron::serve_with_faults`] run, then
    /// reconstructs every request's critical path and decomposes its
    /// sojourn into `{queueing, cold start, GIL block, interaction,
    /// execution, retry}` — the six components sum to the sojourn
    /// *exactly*, in integer nanoseconds.
    ///
    /// Returns the serve report together with the attribution. The
    /// tracing flag is restored to its previous state even on error.
    pub fn attribution_report(
        &self,
        workflow: &Workflow,
        deployment: &Deployment,
        config: ServeConfig,
        faults: FaultPlan,
        workload: &Workload,
        seed: u64,
    ) -> Result<(ServeReport, chiron_obs::AttributionReport), ServeError> {
        let was_tracing = chiron_obs::tracing_enabled();
        chiron_obs::set_tracing(true);
        // ~8 events per request life cycle (arrival/enqueue/dispatch/
        // complete plus replica churn and DES spans).
        chiron_obs::begin_capture_sized(workload.total_requests() as usize * 8);
        let result = ServeSimulation::new(workflow.clone(), deployment.plan().clone(), config)
            .with_faults(faults)
            .run(workload, seed);
        let trace = chiron_obs::end_capture();
        chiron_obs::set_tracing(was_tracing);
        let report = result?;
        Ok((report, chiron_obs::attribute(&trace)))
    }

    /// Coz-style what-if profiling: for the `top_n` most-blamed
    /// components of `attrib`, re-runs the serving DES with that
    /// component's underlying constant scaled to 75% / 50% / 25% and
    /// ranks components by the best predicted p99 improvement.
    ///
    /// Constants scaled per component: cold start → the platform's
    /// `sandbox_cold_start`; execution / GIL block / interaction → the
    /// warm service time, shrunk by the component's share of the DES
    /// service window. Queueing and retry are emergent (no constant to
    /// scale) and are reported as unsupported.
    #[allow(clippy::too_many_arguments)]
    pub fn whatif_report(
        &self,
        workflow: &Workflow,
        deployment: &Deployment,
        config: ServeConfig,
        faults: FaultPlan,
        workload: &Workload,
        seed: u64,
        baseline: &ServeReport,
        attrib: &chiron_obs::AttributionReport,
        top_n: usize,
    ) -> WhatIfReport {
        use chiron_obs::Component;
        let baseline_p99_ms = baseline.sojourns.percentile(0.99).as_millis_f64();
        // The serve sim's own warm-execution service base, reproduced so
        // the service-window components can be scaled around it.
        let service_base = VirtualPlatform::new(config.platform.clone())
            .with_cold_starts(false)
            .execute(workflow, deployment.plan(), 0)
            .map(|outcome| outcome.e2e)
            .ok();
        let weights = attrib.service_weights;
        let weight_total: u64 = weights.iter().sum();
        let candidates: Vec<_> = attrib.blame_ranking().into_iter().take(top_n).collect();
        let runner = |component: Component, scale: f64| -> Option<f64> {
            let sim = match component {
                Component::ColdStart => {
                    let mut cfg = config.clone();
                    cfg.platform.costs.sandbox_cold_start =
                        cfg.platform.costs.sandbox_cold_start.mul_f64(scale);
                    ServeSimulation::new(workflow.clone(), deployment.plan().clone(), cfg)
                }
                Component::Execution | Component::GilBlock | Component::Interaction => {
                    let base = service_base?;
                    if weight_total == 0 {
                        return None;
                    }
                    let slot = match component {
                        Component::GilBlock => 1,
                        Component::Interaction => 2,
                        _ => 3,
                    };
                    let share = weights[slot] as f64 / weight_total as f64;
                    let scaled = base.mul_f64(1.0 - share * (1.0 - scale));
                    ServeSimulation::new(
                        workflow.clone(),
                        deployment.plan().clone(),
                        config.clone(),
                    )
                    .with_service_base_override(scaled)
                }
                // Queueing, retry, and cross-cluster forwarding are
                // emergent properties of the DES — there is no single
                // constant whose virtual speedup models them honestly.
                Component::Queueing | Component::Retry | Component::Forwarding => return None,
            };
            let report = sim.with_faults(faults.clone()).run(workload, seed).ok()?;
            Some(report.sojourns.percentile(0.99).as_millis_f64())
        };
        chiron_obs::whatif::run(&candidates, baseline_p99_ms, runner)
    }

    /// §3.4's periodic re-profiling: refreshes the profile (with a new
    /// measurement seed) and reschedules, letting the wraps adapt to
    /// workload changes.
    pub fn reprofile(
        &self,
        workflow: &Workflow,
        deployment: &Deployment,
        slo: Option<SimDuration>,
        mode: PgpMode,
        seed: u64,
    ) -> Deployment {
        let profiler = self.profiler.clone().with_seed(seed);
        let profile = profiler.profile_workflow(workflow);
        let config = match slo {
            Some(slo) => PgpConfig::with_slo(slo).with_mode(mode),
            None => PgpConfig::performance_first().with_mode(mode),
        };
        let schedule = self.run_scheduler(workflow, &profile, &config);
        let wraps = generate(workflow, &schedule.plan);
        let _ = deployment; // the previous deployment is superseded
        Deployment {
            profile,
            schedule,
            wraps,
        }
    }
}

/// A dynamic workflow deployed variant-by-variant (§7's future-work
/// scenario, implemented): PGP pre-plans every resolvable shape offline;
/// requests are routed to the matching variant's wraps at invocation time.
#[derive(Debug, Clone)]
pub struct DynamicDeployment {
    pub source: chiron_model::DynamicWorkflow,
    /// `(choice vector, concrete workflow, its deployment)` per variant.
    pub variants: Vec<(Vec<usize>, Workflow, Deployment)>,
}

impl Chiron {
    /// Pre-plans every variant of a dynamic workflow (switch stages, §7).
    pub fn deploy_dynamic(
        &self,
        workflow: &chiron_model::DynamicWorkflow,
        slo: Option<SimDuration>,
        mode: PgpMode,
    ) -> DynamicDeployment {
        let variants = workflow
            .variants()
            .into_iter()
            .map(|(choices, wf)| {
                let deployment = self.deploy(&wf, slo, mode);
                (choices, wf, deployment)
            })
            .collect();
        DynamicDeployment {
            source: workflow.clone(),
            variants,
        }
    }

    /// Routes one request through a dynamic deployment: the switch
    /// selectors pick the variant from the request's payload size, then the
    /// variant's pre-deployed wraps serve it.
    pub fn invoke_dynamic(
        &self,
        deployment: &DynamicDeployment,
        request_bytes: u64,
        seed: u64,
    ) -> Result<(Vec<usize>, RequestOutcome), PlanError> {
        let choices = deployment.source.route(request_bytes);
        let (_, wf, dep) = deployment
            .variants
            .iter()
            .find(|(c, _, _)| *c == choices)
            .expect("every routable choice vector was pre-planned");
        let outcome = self.invoke(wf, dep, seed)?;
        Ok((choices, outcome))
    }
}

impl Default for Chiron {
    fn default() -> Self {
        Chiron::new(PlatformConfig::paper_calibrated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::apps;

    #[test]
    fn deploy_and_invoke_roundtrip() {
        let chiron = Chiron::default();
        let wf = apps::finra(5);
        let deployment = chiron.deploy(&wf, None, PgpMode::NativeThread);
        assert_eq!(deployment.wraps.len(), deployment.plan().sandbox_count());
        let outcome = chiron.invoke(&wf, &deployment, 0).unwrap();
        assert!(!outcome.e2e.is_zero());
        assert_eq!(outcome.timelines.len(), wf.function_count());
    }

    #[test]
    fn serve_facade_runs_a_deployment_online() {
        let chiron = Chiron::default();
        let wf = apps::finra(5);
        let deployment = chiron.deploy(&wf, None, PgpMode::NativeThread);
        let report = chiron
            .serve(
                &wf,
                &deployment,
                ServeConfig::paper_testbed(),
                &Workload::steady(20.0, 500),
                11,
            )
            .unwrap();
        assert_eq!(report.completed, 500);
        assert_eq!(report.lost, 0);
        // The warm single-request latency lower-bounds every sojourn.
        let single = chiron.invoke(&wf, &deployment, 0).unwrap().e2e;
        assert!(report.sojourns.min() >= single.mul_f64(1.0 - 0.05 - 1e-9));
    }

    #[test]
    fn slo_deployment_meets_slo_in_ground_truth() {
        let chiron = Chiron::default();
        let wf = apps::slapp();
        // Derive a realistic SLO from a performance-first run.
        let fast = chiron.deploy(&wf, None, PgpMode::NativeThread);
        let slo = fast.schedule.predicted.mul_f64(1.5);
        let deployment = chiron.deploy(&wf, Some(slo), PgpMode::NativeThread);
        assert!(deployment.schedule.met_slo);
        let outcome = chiron.invoke(&wf, &deployment, 0).unwrap();
        assert!(
            outcome.e2e <= slo,
            "ground truth {} exceeded SLO {}",
            outcome.e2e,
            slo
        );
    }

    #[test]
    fn dynamic_workflow_routes_per_request() {
        use chiron_model::{BranchSelector, DynStage, DynamicWorkflow, FunctionId};
        use chiron_model::{FunctionSpec, Segment};
        let f = |name: &str, ms: u64, out: u64| {
            FunctionSpec::new(name, vec![Segment::cpu_ms(ms)]).with_output_bytes(out)
        };
        let dw = DynamicWorkflow {
            name: "VideoFFmpeg".into(),
            functions: vec![
                f("upload", 5, 8 << 20),
                f("simple_process", 20, 1 << 20),
                f("split_a", 12, 2 << 20),
                f("split_b", 12, 2 << 20),
                f("merge", 8, 1 << 20),
            ],
            stages: vec![
                DynStage::Static(vec![FunctionId(0)]),
                DynStage::Switch {
                    selector: BranchSelector::OutputBytesAbove { threshold: 4 << 20 },
                    branches: vec![vec![FunctionId(1)], vec![FunctionId(2), FunctionId(3)]],
                },
                DynStage::Static(vec![FunctionId(4)]),
            ],
        };
        let chiron = Chiron::default();
        let deployment = chiron.deploy_dynamic(&dw, None, PgpMode::NativeThread);
        assert_eq!(deployment.variants.len(), 2);
        let (choices, outcome) = chiron.invoke_dynamic(&deployment, 1024, 0).unwrap();
        // upload's 8MB output exceeds the 4MB threshold → the split branch.
        assert_eq!(choices, vec![1]);
        assert_eq!(outcome.timelines.len(), 4);
        assert!(!outcome.e2e.is_zero());
    }

    #[test]
    fn attribution_and_whatif_facades() {
        use chiron_deploy::NodeId;
        use chiron_model::SimTime;
        let chiron = Chiron::default();
        let wf = apps::finra(12);
        let deployment = chiron.deploy(&wf, None, PgpMode::NativeThread);
        let workload = Workload::steady(25.0, 400);
        let faults = FaultPlan::none().kill_at(SimTime::from_millis_f64(5_000.0), NodeId(0));
        let (report, attrib) = chiron
            .attribution_report(
                &wf,
                &deployment,
                ServeConfig::paper_testbed(),
                faults.clone(),
                &workload,
                3,
            )
            .unwrap();
        assert_eq!(report.completed, 400);
        assert_eq!(attrib.workflow, "FINRA-12");
        assert!(attrib.sums_exact());
        assert_eq!(attrib.requests.len() as u64, report.completed);

        let whatif = chiron.whatif_report(
            &wf,
            &deployment,
            ServeConfig::paper_testbed(),
            faults,
            &workload,
            3,
            &report,
            &attrib,
            4,
        );
        assert!(
            whatif.ranking.len() + whatif.unsupported.len() >= 3,
            "top-4 candidates must produce rankings or explicit unsupporteds"
        );
        assert!(
            !whatif.ranking.is_empty(),
            "at least one component has a scalable constant"
        );
        // Shrinking a constant can only help (or be neutral): the best
        // experiment must not predict a slowdown beyond noise.
        for r in &whatif.ranking {
            assert!(r.best_improvement_ms > -50.0, "{:?}", r);
        }
    }

    #[test]
    fn shared_cache_warms_across_deploys() {
        let chiron = Chiron::default();
        let wf = apps::finra(20);
        chiron.deploy(&wf, None, PgpMode::NativeThread);
        let after_first = chiron.cache_stats();
        assert!(after_first.hits > 0);
        assert!(after_first.entries > 0);
        // A re-deploy re-uses every entry: no new simulations.
        chiron.deploy(&wf, None, PgpMode::NativeThread);
        let after_second = chiron.cache_stats();
        assert_eq!(after_first.misses, after_second.misses);
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn parallel_scheduler_workers_keep_plans_stable() {
        let wf = apps::finra(20);
        let seq = Chiron::default().deploy(&wf, None, PgpMode::NativeThread);
        let par =
            Chiron::default()
                .with_scheduler_workers(4)
                .deploy(&wf, None, PgpMode::NativeThread);
        assert_eq!(seq.plan(), par.plan());
    }

    #[test]
    fn reprofile_supersedes_deployment() {
        let chiron = Chiron::default();
        let wf = apps::movie_reviewing();
        let d1 = chiron.deploy(&wf, None, PgpMode::NativeThread);
        let d2 = chiron.reprofile(&wf, &d1, None, PgpMode::NativeThread, 42);
        // Identical workload → an equivalent plan (profiles are noiseless).
        assert_eq!(d1.plan().stages, d2.plan().stages);
    }
}
