//! The evaluation harness behind every figure of §6: deploy a workflow
//! under any of the eleven systems, replay requests on the virtual
//! platform (optionally jittered), and report latency, resources,
//! throughput and dollar cost.

use chiron_deploy as deploy;
use chiron_metrics::{
    node_throughput, plan_resources, request_cost, CostReport, LatencySamples, ResourceUsage,
    ThroughputReport,
};
use chiron_model::{
    DeploymentPlan, JitterModel, PlatformConfig, SimDuration, SystemKind, Workflow,
};
use chiron_profiler::{Profiler, WorkflowProfile};
use chiron_runtime::{RequestOutcome, VirtualPlatform};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cross-figure memo for the pure, deterministic prefix of every system
/// evaluation: workflow profiles, deployment plans and paper SLOs. The
/// same `(system, workflow, slo)` plan is rebuilt by almost every figure
/// (Fig. 13/14/16/17/19 all replan the full suite), and `paper_slo` runs
/// a Faastlane request from scratch at each call site. Entries are keyed
/// by full structural equality on the stored [`Workflow`] — exact, no
/// hashing — so a hit can never alias two distinct workflows, and because
/// every cached value is a pure function of its key, toggling the cache
/// changes timing only, never any figure row.
struct EvalMemo {
    profiles: Mutex<Vec<(Workflow, Arc<WorkflowProfile>)>>,
    plans: Mutex<Vec<PlanEntry>>,
    slos: Mutex<Vec<(Workflow, SimDuration)>>,
}

struct PlanEntry {
    system: SystemKind,
    slo: Option<SimDuration>,
    workflow: Workflow,
    plan: DeploymentPlan,
}

static MEMO: OnceLock<EvalMemo> = OnceLock::new();
static CACHING: AtomicBool = AtomicBool::new(true);

fn memo() -> &'static EvalMemo {
    MEMO.get_or_init(|| EvalMemo {
        profiles: Mutex::new(Vec::new()),
        plans: Mutex::new(Vec::new()),
        slos: Mutex::new(Vec::new()),
    })
}

/// Enables or disables the cross-figure plan/profile/SLO memo (on by
/// default). Disabling is only useful for timing an uncached run — cached
/// and uncached evaluations produce byte-identical results.
pub fn set_eval_caching(enabled: bool) {
    CACHING.store(enabled, Ordering::SeqCst);
}

pub fn eval_caching() -> bool {
    CACHING.load(Ordering::SeqCst)
}

/// Drops every memoised profile, plan and SLO.
pub fn reset_eval_cache() {
    let memo = memo();
    memo.profiles.lock().unwrap().clear();
    memo.plans.lock().unwrap().clear();
    memo.slos.lock().unwrap().clear();
}

/// Profiles `workflow`, memoised under structural equality.
pub fn profile_for(workflow: &Workflow) -> Arc<WorkflowProfile> {
    if eval_caching() {
        let profiles = memo().profiles.lock().unwrap();
        if let Some((_, profile)) = profiles.iter().find(|(wf, _)| wf == workflow) {
            return Arc::clone(profile);
        }
    }
    let profile = Arc::new(Profiler::default().profile_workflow(workflow));
    if eval_caching() {
        memo()
            .profiles
            .lock()
            .unwrap()
            .push((workflow.clone(), Arc::clone(&profile)));
    }
    profile
}

/// How a system evaluation replays requests.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Requests executed (each with a distinct jitter seed).
    pub requests: u32,
    pub jitter: JitterModel,
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            requests: 10, // §6.2: "at least 10 times"
            jitter: JitterModel::NONE,
            seed: 1,
        }
    }
}

impl EvalConfig {
    pub fn jittered(requests: u32) -> Self {
        EvalConfig {
            requests,
            jitter: JitterModel::cluster(),
            seed: 1,
        }
    }

    /// The virtual platform this config replays requests on.
    pub fn platform(&self) -> VirtualPlatform {
        VirtualPlatform::new(PlatformConfig::paper_calibrated().with_jitter(self.jitter))
    }

    /// Jitter seed of request `r` — the `r`-th request of a sequential
    /// replay, so sweep cells can execute individual requests and still
    /// match [`evaluate_plan`] byte-for-byte.
    pub fn request_seed(&self, r: u32) -> u64 {
        self.seed + u64::from(r)
    }
}

/// Everything §6 reports about one (system, workflow) pair.
#[derive(Debug, Clone)]
pub struct SystemEval {
    pub system: SystemKind,
    pub plan: DeploymentPlan,
    pub latencies: LatencySamples,
    pub mean_latency: SimDuration,
    pub usage: ResourceUsage,
    pub throughput: ThroughputReport,
    pub cost: CostReport,
    /// One representative request outcome (first seed) with full
    /// per-function timelines.
    pub sample_outcome: RequestOutcome,
}

/// Builds the deployment plan for any evaluated system. Chiron variants
/// run PGP against `slo` (or performance-first when `None`).
pub fn plan_for(
    system: SystemKind,
    workflow: &Workflow,
    profile: &WorkflowProfile,
    slo: Option<SimDuration>,
) -> DeploymentPlan {
    if let Some(plan) = deploy::baseline(system, workflow) {
        return plan;
    }
    match system {
        SystemKind::Chiron => deploy::chiron(workflow, profile, slo).plan,
        SystemKind::ChironM => deploy::chiron_m(workflow, profile, slo).plan,
        SystemKind::ChironP => deploy::chiron_p(workflow, profile, slo).plan,
        _ => unreachable!("baseline() covers every other system"),
    }
}

/// Billed ASF state transitions per request: one per function state plus
/// one per stage transition of the state machine.
pub fn state_transitions(workflow: &Workflow) -> u32 {
    (workflow.function_count() + workflow.stage_count()) as u32
}

/// Evaluates one pre-built plan.
pub fn evaluate_plan(workflow: &Workflow, plan: DeploymentPlan, config: &EvalConfig) -> SystemEval {
    let platform_config = PlatformConfig::paper_calibrated().with_jitter(config.jitter);
    let platform = VirtualPlatform::new(platform_config.clone());
    let mut latencies = LatencySamples::new();
    let mut sample_outcome = None;
    // Drift monitor (chiron-obs, off by default): hash the plan once, then
    // feed every observed end-to-end latency into the residual series.
    let drift_key = chiron_obs::drift_monitor_enabled().then(|| chiron_obs::drift::plan_key(&plan));
    for r in 0..config.requests.max(1) {
        let outcome = platform
            .execute(workflow, &plan, config.seed + u64::from(r))
            .expect("plan validated by the planner");
        latencies.push(outcome.e2e);
        if let Some(key) = drift_key {
            chiron_obs::record_observation(&workflow.name, key, None, outcome.e2e);
        }
        if sample_outcome.is_none() {
            sample_outcome = Some(outcome);
        }
    }
    let mean_latency = latencies.mean();
    let usage: ResourceUsage = plan_resources(&plan, workflow, &platform_config.costs);
    let throughput = node_throughput(usage, mean_latency, &platform_config.costs);
    let cost = request_cost(
        plan.system,
        usage,
        mean_latency,
        platform_config.costs.cpu_ghz,
        &platform_config.billing,
        state_transitions(workflow),
    );
    SystemEval {
        system: plan.system,
        latencies,
        mean_latency,
        usage,
        throughput,
        cost,
        sample_outcome: sample_outcome.expect("at least one request"),
        plan,
    }
}

/// [`plan_for`] with profiling folded in, memoised on
/// `(system, slo, workflow)` when eval caching is on.
pub fn system_plan(
    system: SystemKind,
    workflow: &Workflow,
    slo: Option<SimDuration>,
) -> DeploymentPlan {
    if eval_caching() {
        let plans = memo().plans.lock().unwrap();
        if let Some(entry) = plans
            .iter()
            .find(|e| e.system == system && e.slo == slo && e.workflow == *workflow)
        {
            return entry.plan.clone();
        }
    }
    let profile = profile_for(workflow);
    let plan = plan_for(system, workflow, &profile, slo);
    if eval_caching() {
        memo().plans.lock().unwrap().push(PlanEntry {
            system,
            slo,
            workflow: workflow.clone(),
            plan: plan.clone(),
        });
    }
    plan
}

/// Profiles the workflow, builds the system's plan, and evaluates it.
pub fn evaluate_system(
    system: SystemKind,
    workflow: &Workflow,
    slo: Option<SimDuration>,
    config: &EvalConfig,
) -> SystemEval {
    let plan = system_plan(system, workflow, slo);
    evaluate_plan(workflow, plan, config)
}

/// The paper's SLO convention (§6.2): "the average latency of Faastlane
/// with an additional 10 ms slack".
pub fn paper_slo(workflow: &Workflow) -> SimDuration {
    if eval_caching() {
        let slos = memo().slos.lock().unwrap();
        if let Some((_, slo)) = slos.iter().find(|(wf, _)| wf == workflow) {
            return *slo;
        }
    }
    let faastlane = evaluate_plan(
        workflow,
        deploy::faastlane(workflow),
        &EvalConfig {
            requests: 1,
            ..EvalConfig::default()
        },
    );
    let slo = faastlane.mean_latency + SimDuration::from_millis(10);
    if eval_caching() {
        memo().slos.lock().unwrap().push((workflow.clone(), slo));
    }
    slo
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::apps;

    #[test]
    fn chiron_beats_the_deployment_model_baselines() {
        // The headline claim (Fig. 13): Chiron's latency is below ASF,
        // OpenFaaS, SAND and Faastlane on every benchmark we spot-check.
        let cfg = EvalConfig::default();
        for wf in [apps::finra(5), apps::finra(50), apps::slapp()] {
            let slo = Some(paper_slo(&wf));
            let chiron = evaluate_system(SystemKind::Chiron, &wf, slo, &cfg);
            for sys in [
                SystemKind::Asf,
                SystemKind::OpenFaas,
                SystemKind::Sand,
                SystemKind::Faastlane,
            ] {
                let base = evaluate_system(sys, &wf, None, &cfg);
                assert!(
                    chiron.mean_latency <= base.mean_latency,
                    "{}: Chiron {} vs {sys} {}",
                    wf.name,
                    chiron.mean_latency,
                    base.mean_latency
                );
            }
        }
    }

    #[test]
    fn chiron_throughput_dominates_faastlane() {
        // Fig. 16: better latency and fewer resources compound into a
        // large throughput advantage.
        let cfg = EvalConfig::default();
        let wf = apps::finra(50);
        let slo = Some(paper_slo(&wf));
        let chiron = evaluate_system(SystemKind::Chiron, &wf, slo, &cfg);
        let faastlane = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg);
        assert!(
            chiron.throughput.rps > 2.0 * faastlane.throughput.rps,
            "Chiron {} req/s vs Faastlane {} req/s",
            chiron.throughput.rps,
            faastlane.throughput.rps
        );
    }

    #[test]
    fn openfaas_memory_exceeds_many_to_one() {
        // Observation 4 / Fig. 16: runtime-image duplication dominates.
        let cfg = EvalConfig::default();
        let wf = apps::finra(50);
        let openfaas = evaluate_system(SystemKind::OpenFaas, &wf, None, &cfg);
        let faastlane = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg);
        assert!(openfaas.usage.memory_bytes > 5 * faastlane.usage.memory_bytes);
    }

    #[test]
    fn asf_cost_towers_over_chiron() {
        // Fig. 19: state transitions make ASF orders of magnitude dearer.
        let cfg = EvalConfig::default();
        let wf = apps::social_network();
        let asf = evaluate_system(SystemKind::Asf, &wf, None, &cfg);
        let chiron = evaluate_system(SystemKind::Chiron, &wf, Some(paper_slo(&wf)), &cfg);
        assert!(asf.cost.usd_per_million > 20.0 * chiron.cost.usd_per_million);
    }

    #[test]
    fn prewarmed_chiron_plan_deploys_and_stays_competitive() {
        // The tier-mix co-optimised plan is a valid deployment and keeps
        // Chiron's latency edge over Faastlane (the penalty only biases
        // plan selection; it never degrades the plan below the baselines).
        let cfg = EvalConfig::default();
        let wf = apps::finra(50);
        let profile = profile_for(&wf);
        let budget = chiron_pgp::PrewarmBudget::new(1e-4, 50.0);
        let out = deploy::chiron_prewarmed(&wf, &profile, None, budget);
        assert!(out.startup_penalty > SimDuration::ZERO);
        let prewarmed = evaluate_plan(&wf, out.plan, &cfg);
        let faastlane = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg);
        assert!(
            prewarmed.mean_latency <= faastlane.mean_latency,
            "prewarmed Chiron {} vs Faastlane {}",
            prewarmed.mean_latency,
            faastlane.mean_latency
        );
    }

    #[test]
    fn jittered_eval_produces_spread() {
        let cfg = EvalConfig::jittered(20);
        let wf = apps::finra(5);
        let eval = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg);
        assert_eq!(eval.latencies.len(), 20);
        assert!(eval.latencies.std_ms() > 0.0);
    }
}
