//! The evaluation harness behind every figure of §6: deploy a workflow
//! under any of the eleven systems, replay requests on the virtual
//! platform (optionally jittered), and report latency, resources,
//! throughput and dollar cost.

use chiron_deploy as deploy;
use chiron_metrics::{
    node_throughput, plan_resources, request_cost, CostReport, LatencySamples, ResourceUsage,
    ThroughputReport,
};
use chiron_model::{
    DeploymentPlan, JitterModel, PlatformConfig, SimDuration, SystemKind, Workflow,
};
use chiron_profiler::{Profiler, WorkflowProfile};
use chiron_runtime::{RequestOutcome, VirtualPlatform};

/// How a system evaluation replays requests.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Requests executed (each with a distinct jitter seed).
    pub requests: u32,
    pub jitter: JitterModel,
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            requests: 10, // §6.2: "at least 10 times"
            jitter: JitterModel::NONE,
            seed: 1,
        }
    }
}

impl EvalConfig {
    pub fn jittered(requests: u32) -> Self {
        EvalConfig {
            requests,
            jitter: JitterModel::cluster(),
            seed: 1,
        }
    }
}

/// Everything §6 reports about one (system, workflow) pair.
#[derive(Debug, Clone)]
pub struct SystemEval {
    pub system: SystemKind,
    pub plan: DeploymentPlan,
    pub latencies: LatencySamples,
    pub mean_latency: SimDuration,
    pub usage: ResourceUsage,
    pub throughput: ThroughputReport,
    pub cost: CostReport,
    /// One representative request outcome (first seed) with full
    /// per-function timelines.
    pub sample_outcome: RequestOutcome,
}

/// Builds the deployment plan for any evaluated system. Chiron variants
/// run PGP against `slo` (or performance-first when `None`).
pub fn plan_for(
    system: SystemKind,
    workflow: &Workflow,
    profile: &WorkflowProfile,
    slo: Option<SimDuration>,
) -> DeploymentPlan {
    if let Some(plan) = deploy::baseline(system, workflow) {
        return plan;
    }
    match system {
        SystemKind::Chiron => deploy::chiron(workflow, profile, slo).plan,
        SystemKind::ChironM => deploy::chiron_m(workflow, profile, slo).plan,
        SystemKind::ChironP => deploy::chiron_p(workflow, profile, slo).plan,
        _ => unreachable!("baseline() covers every other system"),
    }
}

/// Billed ASF state transitions per request: one per function state plus
/// one per stage transition of the state machine.
pub fn state_transitions(workflow: &Workflow) -> u32 {
    (workflow.function_count() + workflow.stage_count()) as u32
}

/// Evaluates one pre-built plan.
pub fn evaluate_plan(workflow: &Workflow, plan: DeploymentPlan, config: &EvalConfig) -> SystemEval {
    let platform_config = PlatformConfig::paper_calibrated().with_jitter(config.jitter);
    let platform = VirtualPlatform::new(platform_config.clone());
    let mut latencies = LatencySamples::new();
    let mut sample_outcome = None;
    for r in 0..config.requests.max(1) {
        let outcome = platform
            .execute(workflow, &plan, config.seed + u64::from(r))
            .expect("plan validated by the planner");
        latencies.push(outcome.e2e);
        if sample_outcome.is_none() {
            sample_outcome = Some(outcome);
        }
    }
    let mean_latency = latencies.mean();
    let usage: ResourceUsage = plan_resources(&plan, workflow, &platform_config.costs);
    let throughput = node_throughput(usage, mean_latency, &platform_config.costs);
    let cost = request_cost(
        plan.system,
        usage,
        mean_latency,
        platform_config.costs.cpu_ghz,
        &platform_config.billing,
        state_transitions(workflow),
    );
    SystemEval {
        system: plan.system,
        latencies,
        mean_latency,
        usage,
        throughput,
        cost,
        sample_outcome: sample_outcome.expect("at least one request"),
        plan,
    }
}

/// Profiles the workflow, builds the system's plan, and evaluates it.
pub fn evaluate_system(
    system: SystemKind,
    workflow: &Workflow,
    slo: Option<SimDuration>,
    config: &EvalConfig,
) -> SystemEval {
    let profile = Profiler::default().profile_workflow(workflow);
    let plan = plan_for(system, workflow, &profile, slo);
    evaluate_plan(workflow, plan, config)
}

/// The paper's SLO convention (§6.2): "the average latency of Faastlane
/// with an additional 10 ms slack".
pub fn paper_slo(workflow: &Workflow) -> SimDuration {
    let faastlane = evaluate_plan(
        workflow,
        deploy::faastlane(workflow),
        &EvalConfig {
            requests: 1,
            ..EvalConfig::default()
        },
    );
    faastlane.mean_latency + SimDuration::from_millis(10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::apps;

    #[test]
    fn chiron_beats_the_deployment_model_baselines() {
        // The headline claim (Fig. 13): Chiron's latency is below ASF,
        // OpenFaaS, SAND and Faastlane on every benchmark we spot-check.
        let cfg = EvalConfig::default();
        for wf in [apps::finra(5), apps::finra(50), apps::slapp()] {
            let slo = Some(paper_slo(&wf));
            let chiron = evaluate_system(SystemKind::Chiron, &wf, slo, &cfg);
            for sys in [
                SystemKind::Asf,
                SystemKind::OpenFaas,
                SystemKind::Sand,
                SystemKind::Faastlane,
            ] {
                let base = evaluate_system(sys, &wf, None, &cfg);
                assert!(
                    chiron.mean_latency <= base.mean_latency,
                    "{}: Chiron {} vs {sys} {}",
                    wf.name,
                    chiron.mean_latency,
                    base.mean_latency
                );
            }
        }
    }

    #[test]
    fn chiron_throughput_dominates_faastlane() {
        // Fig. 16: better latency and fewer resources compound into a
        // large throughput advantage.
        let cfg = EvalConfig::default();
        let wf = apps::finra(50);
        let slo = Some(paper_slo(&wf));
        let chiron = evaluate_system(SystemKind::Chiron, &wf, slo, &cfg);
        let faastlane = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg);
        assert!(
            chiron.throughput.rps > 2.0 * faastlane.throughput.rps,
            "Chiron {} req/s vs Faastlane {} req/s",
            chiron.throughput.rps,
            faastlane.throughput.rps
        );
    }

    #[test]
    fn openfaas_memory_exceeds_many_to_one() {
        // Observation 4 / Fig. 16: runtime-image duplication dominates.
        let cfg = EvalConfig::default();
        let wf = apps::finra(50);
        let openfaas = evaluate_system(SystemKind::OpenFaas, &wf, None, &cfg);
        let faastlane = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg);
        assert!(openfaas.usage.memory_bytes > 5 * faastlane.usage.memory_bytes);
    }

    #[test]
    fn asf_cost_towers_over_chiron() {
        // Fig. 19: state transitions make ASF orders of magnitude dearer.
        let cfg = EvalConfig::default();
        let wf = apps::social_network();
        let asf = evaluate_system(SystemKind::Asf, &wf, None, &cfg);
        let chiron = evaluate_system(SystemKind::Chiron, &wf, Some(paper_slo(&wf)), &cfg);
        assert!(asf.cost.usd_per_million > 20.0 * chiron.cost.usd_per_million);
    }

    #[test]
    fn jittered_eval_produces_spread() {
        let cfg = EvalConfig::jittered(20);
        let wf = apps::finra(5);
        let eval = evaluate_system(SystemKind::Faastlane, &wf, None, &cfg);
        assert_eq!(eval.latencies.len(), 20);
        assert!(eval.latencies.std_ms() > 0.0);
    }
}
