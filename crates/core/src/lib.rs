//! # chiron
//!
//! The public facade of the Chiron (SC '23) reproduction: the deployment
//! manager of Fig. 9 (profile → predict → schedule → generate → deploy →
//! invoke) plus the evaluation harness behind every figure of §6.
//!
//! ## Quickstart
//!
//! ```
//! use chiron::{Chiron, PgpMode};
//! use chiron_model::{apps, PlatformConfig};
//!
//! let manager = Chiron::new(PlatformConfig::paper_calibrated());
//! let workflow = apps::finra(5);
//! let deployment = manager.deploy(&workflow, None, PgpMode::NativeThread);
//! let outcome = manager.invoke(&workflow, &deployment, 0).unwrap();
//! println!("end-to-end latency: {}", outcome.e2e);
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod manager;

pub use eval::{
    eval_caching, evaluate_plan, evaluate_system, paper_slo, plan_for, profile_for,
    reset_eval_cache, set_eval_caching, state_transitions, system_plan, EvalConfig, SystemEval,
};
pub use manager::{Chiron, Deployment};

// Re-export the building blocks a downstream user needs alongside the
// facade.
pub use chiron_deploy as deploy;
pub use chiron_isolation as isolation;
pub use chiron_lifecycle as lifecycle;
pub use chiron_lifecycle::{LifecycleConfig, PrewarmBudget};
pub use chiron_metrics as metrics;
pub use chiron_ml as ml;
pub use chiron_model as model;
pub use chiron_obs as obs;
pub use chiron_obs::{AttributionReport, SloPolicy, SloSummary, WhatIfReport};
pub use chiron_pgp::{PgpConfig, PgpMode, PgpScheduler, ScheduleOutcome, PARALLEL_WORK_THRESHOLD};
pub use chiron_predict as predict;
pub use chiron_profiler as profiler;
pub use chiron_runtime as runtime;
pub use chiron_serve as serving;
pub use chiron_serve::{
    FaultPlan, FleetConfig, FleetPhase, FleetReport, FleetSimulation, FleetWorkload, ServeConfig,
    ServeReport, Workload,
};
pub use chiron_store as store;
