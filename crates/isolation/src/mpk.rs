//! A functional software model of Intel Memory Protection Keys.
//!
//! Real MPK tags each page with one of 16 protection keys and filters every
//! access through the per-thread PKRU register. Chiron uses MPK to give
//! each function thread a private arena inside the shared address space
//! (§4). This module reproduces those semantics in safe Rust: arenas are
//! tagged with a [`ProtectionKey`], and every access is checked against the
//! calling thread's PKRU-style permission mask. It backs the `-M` system
//! variants' correctness tests and the memory-isolation example.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One of the 16 hardware protection keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProtectionKey(u8);

impl ProtectionKey {
    pub const MAX_KEYS: u8 = 16;

    pub fn new(key: u8) -> Option<Self> {
        (key < Self::MAX_KEYS).then_some(ProtectionKey(key))
    }

    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-thread access rights to one key, mirroring PKRU's two bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    None,
    ReadOnly,
    ReadWrite,
}

impl Access {
    fn allows_read(self) -> bool {
        !matches!(self, Access::None)
    }

    fn allows_write(self) -> bool {
        matches!(self, Access::ReadWrite)
    }
}

/// Identifier of a function thread within a wrap.
pub type ThreadId = u32;

/// Access violations raised by the checked arena operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpkViolation {
    /// The thread's PKRU mask denies reading pages with this key.
    ReadDenied { thread: ThreadId, key: u8 },
    /// The thread's PKRU mask denies writing pages with this key.
    WriteDenied { thread: ThreadId, key: u8 },
    /// Access beyond the arena's allocation.
    OutOfBounds { offset: usize, len: usize },
    /// All 16 keys are already allocated.
    KeysExhausted,
}

impl std::fmt::Display for MpkViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpkViolation::ReadDenied { thread, key } => {
                write!(f, "thread {thread} may not read key-{key} pages")
            }
            MpkViolation::WriteDenied { thread, key } => {
                write!(f, "thread {thread} may not write key-{key} pages")
            }
            MpkViolation::OutOfBounds { offset, len } => {
                write!(f, "access at {offset} beyond arena of {len} bytes")
            }
            MpkViolation::KeysExhausted => write!(f, "no free protection keys"),
        }
    }
}

impl std::error::Error for MpkViolation {}

#[derive(Debug)]
struct Arena {
    key: ProtectionKey,
    data: Vec<u8>,
}

/// A shared address space partitioned into key-tagged arenas.
///
/// This mirrors the `mpk-memalloc-module` Chiron bundles into its OpenFaaS
/// template (§5): each function thread allocates a private arena and is
/// granted `ReadWrite` on its own key only; the orchestrator thread holds
/// `ReadWrite` everywhere to move state between functions.
#[derive(Debug, Default)]
pub struct MpkDomain {
    inner: RwLock<DomainInner>,
}

#[derive(Debug, Default)]
struct DomainInner {
    arenas: HashMap<usize, Arena>,
    next_arena: usize,
    next_key: u8,
    /// PKRU-style masks: per thread, per key.
    pkru: HashMap<ThreadId, [Access; ProtectionKey::MAX_KEYS as usize]>,
}

/// Handle to an allocated arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaHandle {
    id: usize,
    pub key: ProtectionKey,
}

impl MpkDomain {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new arena of `size` bytes under a fresh protection key.
    pub fn allocate(&self, size: usize) -> Result<ArenaHandle, MpkViolation> {
        let mut inner = self.inner.write();
        if inner.next_key >= ProtectionKey::MAX_KEYS {
            return Err(MpkViolation::KeysExhausted);
        }
        let key = ProtectionKey(inner.next_key);
        inner.next_key += 1;
        let id = inner.next_arena;
        inner.next_arena += 1;
        inner.arenas.insert(
            id,
            Arena {
                key,
                data: vec![0; size],
            },
        );
        Ok(ArenaHandle { id, key })
    }

    /// Sets `thread`'s access rights for `key` (the `wrpkru` analogue).
    pub fn grant(&self, thread: ThreadId, key: ProtectionKey, access: Access) {
        let mut inner = self.inner.write();
        let mask = inner
            .pkru
            .entry(thread)
            .or_insert([Access::None; ProtectionKey::MAX_KEYS as usize]);
        mask[key.index()] = access;
    }

    fn access_for(inner: &DomainInner, thread: ThreadId, key: ProtectionKey) -> Access {
        inner
            .pkru
            .get(&thread)
            .map(|mask| mask[key.index()])
            .unwrap_or(Access::None)
    }

    /// Checked read of `len` bytes at `offset`.
    pub fn read(
        &self,
        thread: ThreadId,
        handle: ArenaHandle,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, MpkViolation> {
        let inner = self.inner.read();
        let arena = &inner.arenas[&handle.id];
        if !Self::access_for(&inner, thread, arena.key).allows_read() {
            return Err(MpkViolation::ReadDenied {
                thread,
                key: arena.key.0,
            });
        }
        let end = offset.checked_add(len).filter(|&e| e <= arena.data.len());
        match end {
            Some(end) => Ok(arena.data[offset..end].to_vec()),
            None => Err(MpkViolation::OutOfBounds {
                offset,
                len: arena.data.len(),
            }),
        }
    }

    /// Checked write of `bytes` at `offset`.
    pub fn write(
        &self,
        thread: ThreadId,
        handle: ArenaHandle,
        offset: usize,
        bytes: &[u8],
    ) -> Result<(), MpkViolation> {
        let mut inner = self.inner.write();
        let arena = inner.arenas.get(&handle.id).expect("valid handle");
        if !Self::access_for(&inner, thread, arena.key).allows_write() {
            return Err(MpkViolation::WriteDenied {
                thread,
                key: arena.key.0,
            });
        }
        let arena = inner.arenas.get_mut(&handle.id).expect("valid handle");
        let end = offset
            .checked_add(bytes.len())
            .filter(|&e| e <= arena.data.len());
        match end {
            Some(end) => {
                arena.data[offset..end].copy_from_slice(bytes);
                Ok(())
            }
            None => Err(MpkViolation::OutOfBounds {
                offset,
                len: arena.data.len(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_arena_per_thread() {
        let domain = MpkDomain::new();
        let a = domain.allocate(64).unwrap();
        let b = domain.allocate(64).unwrap();
        assert_ne!(a.key, b.key);

        domain.grant(1, a.key, Access::ReadWrite);
        domain.grant(2, b.key, Access::ReadWrite);

        domain.write(1, a, 0, b"secret").unwrap();
        // Thread 2 holds no rights on arena A.
        assert_eq!(
            domain.read(2, a, 0, 6).unwrap_err(),
            MpkViolation::ReadDenied {
                thread: 2,
                key: a.key.0
            }
        );
        assert_eq!(
            domain.write(2, a, 0, b"x").unwrap_err(),
            MpkViolation::WriteDenied {
                thread: 2,
                key: a.key.0
            }
        );
        // Thread 1 reads its own data back.
        assert_eq!(domain.read(1, a, 0, 6).unwrap(), b"secret");
    }

    #[test]
    fn orchestrator_reads_everything() {
        let domain = MpkDomain::new();
        let a = domain.allocate(16).unwrap();
        let b = domain.allocate(16).unwrap();
        const ORCH: ThreadId = 0;
        domain.grant(ORCH, a.key, Access::ReadWrite);
        domain.grant(ORCH, b.key, Access::ReadWrite);
        domain.write(ORCH, a, 0, b"in").unwrap();
        domain.write(ORCH, b, 0, b"out").unwrap();
        assert_eq!(domain.read(ORCH, a, 0, 2).unwrap(), b"in");
        assert_eq!(domain.read(ORCH, b, 0, 3).unwrap(), b"out");
    }

    #[test]
    fn read_only_grant() {
        let domain = MpkDomain::new();
        let a = domain.allocate(8).unwrap();
        domain.grant(1, a.key, Access::ReadWrite);
        domain.write(1, a, 0, b"data").unwrap();
        domain.grant(2, a.key, Access::ReadOnly);
        assert_eq!(domain.read(2, a, 0, 4).unwrap(), b"data");
        assert!(matches!(
            domain.write(2, a, 0, b"z"),
            Err(MpkViolation::WriteDenied { .. })
        ));
    }

    #[test]
    fn bounds_checked() {
        let domain = MpkDomain::new();
        let a = domain.allocate(4).unwrap();
        domain.grant(1, a.key, Access::ReadWrite);
        assert!(matches!(
            domain.write(1, a, 2, b"long"),
            Err(MpkViolation::OutOfBounds { .. })
        ));
        assert!(matches!(
            domain.read(1, a, 4, 1),
            Err(MpkViolation::OutOfBounds { .. })
        ));
    }

    #[test]
    fn keys_exhaust_at_16() {
        let domain = MpkDomain::new();
        for _ in 0..16 {
            domain.allocate(1).unwrap();
        }
        assert_eq!(domain.allocate(1).unwrap_err(), MpkViolation::KeysExhausted);
    }

    #[test]
    fn key_constructor_bounds() {
        assert!(ProtectionKey::new(15).is_some());
        assert!(ProtectionKey::new(16).is_none());
    }
}
