//! # chiron-isolation
//!
//! Thread memory-isolation substrate for the Chiron reproduction (§4):
//! calibrated cost models for Intel MPK and WebAssembly SFI (Table 1), and
//! a functional software model of MPK protection-key arenas used by the
//! `-M` system variants.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod costs;
pub mod mpk;

pub use costs::IsolationCosts;
pub use mpk::{Access, ArenaHandle, MpkDomain, MpkViolation, ProtectionKey, ThreadId};
