//! Cost models for the thread memory-isolation mechanisms of §4 (Table 1).
//!
//! Table 1 reports, for a Python application on the paper's testbed:
//!
//! | Mechanism | Startup | Interaction | Exec (Fibonacci) | Exec (DiskIO) |
//! |-----------|---------|-------------|------------------|---------------|
//! | SFI       | 18 ms   | 8 ms        | 52.9 %           | 29.4 %        |
//! | Intel MPK | 0.2 ms  | 0           | 35.2 %           | 7.3 %         |
//!
//! We decompose the per-workload execution overhead into a CPU-segment
//! slowdown and a blocking-segment slowdown: MPK instruments user-space
//! instructions only (blocking syscalls are unaffected), while
//! WebAssembly-based SFI also pays trampoline costs on syscalls. With a
//! disk-I/O function that is ≈20 % CPU, these two factors reproduce the
//! table's per-workload percentages.

use chiron_model::{FunctionSpec, IsolationKind, Segment, SimDuration};
use serde::{Deserialize, Serialize};

/// The cost profile of one isolation mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsolationCosts {
    /// One-time cost of entering the isolation domain when a thread starts
    /// (module instantiation for SFI, `wrpkru` setup for MPK).
    pub startup: SimDuration,
    /// Cost of each cross-domain data hand-off between threads.
    pub interaction: SimDuration,
    /// Relative slowdown of CPU segments (0.352 ⇒ 35.2 % slower).
    pub cpu_overhead: f64,
    /// Relative slowdown of blocking segments.
    pub io_overhead: f64,
}

impl IsolationCosts {
    /// No isolation: bare threads.
    pub const NONE: IsolationCosts = IsolationCosts {
        startup: SimDuration::ZERO,
        interaction: SimDuration::ZERO,
        cpu_overhead: 0.0,
        io_overhead: 0.0,
    };

    /// Intel MPK (Table 1, row 2).
    pub fn mpk() -> Self {
        IsolationCosts {
            startup: SimDuration::from_millis_f64(0.2),
            interaction: SimDuration::ZERO,
            cpu_overhead: 0.352,
            io_overhead: 0.003,
        }
    }

    /// WebAssembly SFI (Table 1, row 1).
    pub fn sfi() -> Self {
        IsolationCosts {
            startup: SimDuration::from_millis(18),
            interaction: SimDuration::from_millis(8),
            cpu_overhead: 0.529,
            io_overhead: 0.235,
        }
    }

    pub fn for_kind(kind: IsolationKind) -> Self {
        match kind {
            IsolationKind::None => IsolationCosts::NONE,
            IsolationKind::Mpk => IsolationCosts::mpk(),
            IsolationKind::Sfi => IsolationCosts::sfi(),
        }
    }

    /// The duration of one segment after applying the mechanism's slowdown.
    pub fn stretch_segment(&self, seg: Segment) -> SimDuration {
        match seg {
            Segment::Cpu(d) => d.mul_f64(1.0 + self.cpu_overhead),
            Segment::Block { dur, .. } => dur.mul_f64(1.0 + self.io_overhead),
        }
    }

    /// Overall execution slowdown of a function running solo under this
    /// mechanism (the quantity Table 1 reports per workload).
    pub fn execution_overhead(&self, func: &FunctionSpec) -> f64 {
        let base = func.solo_latency().as_millis_f64();
        if base == 0.0 {
            return 0.0;
        }
        let stretched: f64 = func
            .segments
            .iter()
            .map(|&s| self.stretch_segment(s).as_millis_f64())
            .sum();
        stretched / base - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::SyscallKind;

    fn fibonacci() -> FunctionSpec {
        FunctionSpec::new("fibonacci", vec![Segment::cpu_ms(36)])
    }

    /// A disk-I/O function that is ≈20 % CPU, as in SLApp.
    fn disk_io() -> FunctionSpec {
        FunctionSpec::new(
            "disk_io",
            vec![
                Segment::cpu_ms_f64(4.0),
                Segment::block_ms(SyscallKind::DiskIo, 28.0),
                Segment::cpu_ms_f64(4.0),
            ],
        )
    }

    #[test]
    fn mpk_matches_table_1() {
        let mpk = IsolationCosts::mpk();
        assert_eq!(mpk.startup.as_millis_f64(), 0.2);
        assert_eq!(mpk.interaction, SimDuration::ZERO);
        let fib = mpk.execution_overhead(&fibonacci());
        assert!((fib - 0.352).abs() < 0.01, "MPK fibonacci: {fib}");
        let disk = mpk.execution_overhead(&disk_io());
        assert!((disk - 0.073).abs() < 0.02, "MPK disk-io: {disk}");
    }

    #[test]
    fn sfi_matches_table_1() {
        let sfi = IsolationCosts::sfi();
        assert_eq!(sfi.startup.as_millis_f64(), 18.0);
        assert_eq!(sfi.interaction.as_millis_f64(), 8.0);
        let fib = sfi.execution_overhead(&fibonacci());
        assert!((fib - 0.529).abs() < 0.01, "SFI fibonacci: {fib}");
        let disk = sfi.execution_overhead(&disk_io());
        assert!((disk - 0.294).abs() < 0.03, "SFI disk-io: {disk}");
    }

    #[test]
    fn none_is_free() {
        let none = IsolationCosts::for_kind(IsolationKind::None);
        assert_eq!(none.execution_overhead(&fibonacci()), 0.0);
        assert_eq!(
            none.stretch_segment(Segment::cpu_ms(10)).as_millis_f64(),
            10.0
        );
    }

    #[test]
    fn mpk_strictly_cheaper_than_sfi() {
        let mpk = IsolationCosts::mpk();
        let sfi = IsolationCosts::sfi();
        assert!(mpk.startup < sfi.startup);
        assert!(mpk.interaction < sfi.interaction);
        assert!(mpk.cpu_overhead < sfi.cpu_overhead);
        assert!(mpk.io_overhead < sfi.io_overhead);
    }
}
