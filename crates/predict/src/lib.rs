//! # chiron-predict
//!
//! Chiron's white-box latency Predictor (§3.3): Algorithm 1's GIL-switching
//! simulation for multi-thread execution inside a process, the
//! work-conserving bound for truly parallel execution, and the Eq. 1–4
//! composition from processes through wraps and stages to the workflow's
//! end-to-end latency. Also provides the conservative (inflated-parameter)
//! variant PGP uses to guarantee SLOs (§6.2, Fig. 14).
//!
//! The hot path is allocation-free and memoised: [`SegmentCatalog`] borrows
//! profiled segments, [`SimArena`] reuses simulation state, and
//! [`PredictionCache`] shares content-addressed Algorithm 1 outcomes across
//! the PGP scheduler's KL rounds, candidate swaps, process counts, and
//! parallel search workers.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod latency;
pub mod threadsim;

pub use cache::{
    content_key, distinct_profile_classes, CacheStats, FlatThreads, PredictionCache,
    SegmentCatalog, StaggeredSet,
};
pub use latency::{PredictScratch, Predictor};
pub use threadsim::{
    predict_threads, predict_threads_src, predict_true_parallel, SimArena, SimOutcome, SimThread,
    ThreadSource,
};
