//! The end-to-end latency Predictor (§3.3): Eq. 1–4 composed over profiled
//! function behaviour.
//!
//! * Eq. 1: `T_workflow = Σ_i T_stage_i`
//! * Eq. 2: `T_stage = max(T_wrap1, max_{k>1}(T_wrap_k + (k−1)·T_INV) + T_RPC)`
//! * Eq. 3: `T_wrap = max_j T_P_j + T_IPC · (|P|−1)`
//! * Eq. 4: `T_P_j = (j−1)·T_Block + T_Startup + T_exec_j`
//!
//! `T_exec` comes from the Algorithm 1 GIL simulation
//! ([`crate::threadsim::predict_threads`]) for
//! pseudo-parallel runtimes, or from the work-conserving parallel bound for
//! pools / Java threads. The Predictor deliberately uses constant platform
//! parameters — the gap to the jittered, contention-accurate virtual
//! platform is Chiron's prediction error (Fig. 12).

use crate::cache::{content_key, FlatThreads, PredictionCache, SegmentCatalog, StaggeredSet};
use crate::threadsim::{predict_threads, predict_true_parallel, SimArena, SimThread};
use chiron_isolation::IsolationCosts;
use chiron_model::plan::ProcessSpawn;
use chiron_model::{
    CostModel, DeploymentPlan, NodePlacement, PlatformConfig, SchedulingKind, SchedulingModel,
    Segment, SimDuration, TransferKind, Workflow, WrapPlan,
};
use chiron_profiler::WorkflowProfile;
use chiron_store::TransferModel;

/// Size of the initial request payload entering stage 1 (matches the
/// virtual platform's constant).
const REQUEST_PAYLOAD_BYTES: u64 = 1 << 10;

/// The white-box latency predictor.
#[derive(Debug, Clone)]
pub struct Predictor {
    pub costs: CostModel,
    pub scheduling: SchedulingModel,
    pub transfer: TransferModel,
}

impl Predictor {
    pub fn paper_calibrated() -> Self {
        Predictor {
            costs: CostModel::paper_calibrated(),
            scheduling: SchedulingModel::paper_calibrated(),
            transfer: TransferModel::paper_calibrated(),
        }
    }

    pub fn from_config(config: &PlatformConfig) -> Self {
        Predictor {
            costs: config.costs.clone(),
            scheduling: config.scheduling.clone(),
            transfer: TransferModel::paper_calibrated(),
        }
    }

    /// A predictor with overhead parameters inflated by `margin` (§6.2:
    /// "Chiron adopts larger parameters to estimate the latency, avoiding
    /// performance violation resulting from mispredictions").
    pub fn conservative(&self, margin: f64) -> Self {
        Predictor {
            costs: self.costs.conservative(margin),
            scheduling: self.scheduling.clone(),
            transfer: self.transfer,
        }
    }

    /// Predicts the end-to-end latency of `plan` for one request (Eq. 1).
    pub fn predict(
        &self,
        workflow: &Workflow,
        profile: &WorkflowProfile,
        plan: &DeploymentPlan,
    ) -> SimDuration {
        let iso = IsolationCosts::for_kind(plan.isolation);
        self.compose(workflow, plan, &mut |wrap, bytes, read, write| {
            self.wrap_latency(workflow, profile, plan, wrap, bytes, read, write, &iso)
        })
    }

    /// [`Predictor::predict`] with per-process Algorithm 1 results memoised
    /// in `cache` (keyed by thread content) and all per-call allocations
    /// replaced by `catalog` borrows and `scratch` reuse. Returns exactly
    /// the same latency as `predict` for the same inputs.
    pub fn predict_cached(
        &self,
        workflow: &Workflow,
        plan: &DeploymentPlan,
        catalog: &SegmentCatalog,
        cache: &PredictionCache,
        scratch: &mut PredictScratch,
    ) -> SimDuration {
        let iso = IsolationCosts::for_kind(plan.isolation);
        self.compose(workflow, plan, &mut |wrap, bytes, read, write| {
            self.wrap_latency_cached(
                workflow, plan, wrap, bytes, read, write, &iso, catalog, cache, scratch,
            )
        })
    }

    /// Eq. 1 + Eq. 2: stage composition over a per-wrap latency evaluator
    /// (`predict` and `predict_cached` differ only in that evaluator).
    fn compose(
        &self,
        workflow: &Workflow,
        plan: &DeploymentPlan,
        wrap_latency: &mut dyn FnMut(&WrapPlan, u64, bool, bool) -> SimDuration,
    ) -> SimDuration {
        let store_based = !matches!(
            plan.transfer,
            TransferKind::RpcPayload | TransferKind::ShmRing
        );
        // Mirrors the virtual platform exactly: locality only matters to
        // the shm-ring tier, decided by the same first-fit packing.
        let placement = (plan.transfer == TransferKind::ShmRing)
            .then(|| NodePlacement::first_fit(plan, self.costs.node_cpus));
        let colocated = |a: chiron_model::SandboxId, b: chiron_model::SandboxId| {
            placement.as_ref().is_some_and(|p| p.colocated(a, b))
        };
        let last_stage = plan.stages.len() - 1;
        let mut total = SimDuration::ZERO;
        let mut prev_primary = None;

        for (si, stage_plan) in plan.stages.iter().enumerate() {
            let stage_input_bytes = if si == 0 {
                REQUEST_PAYLOAD_BYTES
            } else {
                workflow.stage_output_bytes(si - 1)
            };

            let primary = stage_plan.wraps[0].sandbox;
            if plan.scheduling == SchedulingKind::PreDeployed {
                if let Some(prev) = prev_primary {
                    if prev != primary {
                        total += if colocated(prev, primary) {
                            self.transfer.shm_ring.latency(stage_input_bytes)
                        } else {
                            self.costs.rpc
                                + self
                                    .transfer
                                    .cross_sandbox(TransferKind::RpcPayload, stage_input_bytes)
                        };
                    }
                }
            }
            prev_primary = Some(primary);

            let mut stage_dur = SimDuration::ZERO;
            for (k, wrap) in stage_plan.wraps.iter().enumerate() {
                let ring_local = k > 0
                    && plan.scheduling == SchedulingKind::PreDeployed
                    && colocated(primary, wrap.sandbox);
                let invoke = match plan.scheduling {
                    SchedulingKind::Asf => self.scheduling.asf_schedule_time(k as u32),
                    SchedulingKind::OpenFaasGateway => {
                        self.scheduling.openfaas_stage_overhead(k as u32 + 1) + self.costs.rpc
                    }
                    SchedulingKind::PreDeployed => {
                        if k == 0 {
                            SimDuration::ZERO
                        } else if ring_local {
                            // T_INV stays; the ring replaces the RPC round
                            // trip + piggy-backed payload copy.
                            self.costs.inv * k as u64
                                + self.transfer.shm_ring.latency(stage_input_bytes)
                        } else {
                            self.costs.inv * k as u64
                                + self.costs.rpc
                                + self
                                    .transfer
                                    .cross_sandbox(TransferKind::RpcPayload, stage_input_bytes)
                        }
                    }
                };
                let read_input = store_based && si > 0;
                let write_output = store_based && si < last_stage;
                let wrap_dur = wrap_latency(wrap, stage_input_bytes, read_input, write_output);
                let remote_return = plan.scheduling != SchedulingKind::PreDeployed || k > 0;
                let mut end = invoke + wrap_dur;
                if remote_return {
                    // A co-located wrap posts its result over the ring:
                    // doorbell floor in place of the return RPC.
                    end += if ring_local {
                        self.transfer.shm_ring.floor
                    } else {
                        self.costs.rpc
                    };
                }
                stage_dur = stage_dur.max(end);
            }
            total += stage_dur;
        }
        total
    }

    /// Eq. 3 + Eq. 4: latency of one wrap from its invocation.
    #[allow(clippy::too_many_arguments)]
    fn wrap_latency(
        &self,
        workflow: &Workflow,
        profile: &WorkflowProfile,
        plan: &DeploymentPlan,
        wrap: &WrapPlan,
        stage_input_bytes: u64,
        read_input: bool,
        write_output: bool,
        iso: &IsolationCosts,
    ) -> SimDuration {
        let cpus = plan.sandbox(wrap.sandbox).expect("validated plan").cpus;
        let mut fork_idx: u64 = 0;
        let mut max_end = SimDuration::ZERO;
        let mut total_cpu = SimDuration::ZERO;
        let mut max_write = SimDuration::ZERO;

        for proc in &wrap.processes {
            let start = match proc.spawn {
                ProcessSpawn::Fork => {
                    let s = self.costs.process_block * fork_idx + self.costs.process_startup;
                    fork_idx += 1;
                    s
                }
                ProcessSpawn::Pool => {
                    // Mirrors the DES: under the shm-ring tier the pool
                    // dispatch payload rides the ring instead of a pipe.
                    self.costs.pool_dispatch
                        + if plan.transfer == TransferKind::ShmRing {
                            self.transfer.shm_ring.latency(stage_input_bytes)
                        } else {
                            self.transfer.cross_process(stage_input_bytes)
                        }
                }
                ProcessSpawn::MainReuse => SimDuration::ZERO,
            };
            let isolated = proc.spawn == ProcessSpawn::MainReuse || proc.functions.len() > 1;

            let mut threads = Vec::with_capacity(proc.functions.len());
            for (ti, &fid) in proc.functions.iter().enumerate() {
                let mut created = self.costs.thread_clone * ti as u64;
                if isolated {
                    created += iso.startup;
                }
                if read_input {
                    created += self
                        .transfer
                        .cross_sandbox(plan.transfer, stage_input_bytes);
                }
                let segments: Vec<Segment> = profile
                    .function(fid)
                    .segments()
                    .into_iter()
                    .map(|seg| {
                        if !isolated {
                            return seg;
                        }
                        match seg {
                            Segment::Cpu(_) => Segment::Cpu(iso.stretch_segment(seg)),
                            Segment::Block { kind, .. } => Segment::Block {
                                kind,
                                dur: iso.stretch_segment(seg),
                            },
                        }
                    })
                    .collect();
                threads.push(SimThread {
                    created_at: created,
                    segments,
                });
            }

            let exec = match plan.runtime {
                chiron_model::RuntimeKind::PseudoParallel => {
                    predict_threads(&threads, self.costs.gil_switch_interval)
                }
                chiron_model::RuntimeKind::TrueParallel => {
                    let max_created = threads
                        .iter()
                        .map(|t| t.created_at)
                        .max()
                        .unwrap_or(SimDuration::ZERO);
                    let tasks: Vec<Vec<Segment>> =
                        threads.into_iter().map(|t| t.segments).collect();
                    let mut out = predict_true_parallel(&tasks, cpus);
                    out.makespan += max_created;
                    out
                }
            };
            max_end = max_end.max(start + exec.makespan);
            total_cpu += exec.cpu_time;

            if write_output {
                for &fid in &proc.functions {
                    let bytes = workflow.function(fid).output_bytes;
                    max_write = max_write.max(self.transfer.cross_sandbox(plan.transfer, bytes));
                }
            }
        }

        // CPU-capacity correction: a wrap cannot finish before its total
        // CPU demand has been served by its allocated CPUs.
        let packed =
            SimDuration::from_nanos((total_cpu.as_nanos() as f64 / f64::from(cpus)).ceil() as u64);
        let exec_end = max_end.max(packed);

        // Eq. 3's serial result drain over the pipe — or the ring floor
        // per process when the wrap's plan rides the shm-ring tier.
        let ipc = self.drain_cost(plan) * (wrap.processes.len() as u64 - 1);
        exec_end + ipc + max_write
    }

    /// Per-process serial drain cost (Eq. 3's `T_IPC` term): a pipe write
    /// by default, the ring's doorbell floor under the shm-ring tier (the
    /// wrap's processes share a node by construction).
    fn drain_cost(&self, plan: &DeploymentPlan) -> SimDuration {
        if plan.transfer == TransferKind::ShmRing {
            self.transfer.shm_ring.floor
        } else {
            self.costs.ipc_pipe
        }
    }

    /// `wrap_latency` with memoised, allocation-free process simulations.
    #[allow(clippy::too_many_arguments)]
    fn wrap_latency_cached(
        &self,
        workflow: &Workflow,
        plan: &DeploymentPlan,
        wrap: &WrapPlan,
        stage_input_bytes: u64,
        read_input: bool,
        write_output: bool,
        iso: &IsolationCosts,
        catalog: &SegmentCatalog,
        cache: &PredictionCache,
        scratch: &mut PredictScratch,
    ) -> SimDuration {
        let cpus = plan.sandbox(wrap.sandbox).expect("validated plan").cpus;
        let interval = self.costs.gil_switch_interval;
        let mut fork_idx: u64 = 0;
        let mut max_end = SimDuration::ZERO;
        let mut total_cpu = SimDuration::ZERO;
        let mut max_write = SimDuration::ZERO;

        for proc in &wrap.processes {
            let start = match proc.spawn {
                ProcessSpawn::Fork => {
                    let s = self.costs.process_block * fork_idx + self.costs.process_startup;
                    fork_idx += 1;
                    s
                }
                ProcessSpawn::Pool => {
                    // Mirrors the DES: under the shm-ring tier the pool
                    // dispatch payload rides the ring instead of a pipe.
                    self.costs.pool_dispatch
                        + if plan.transfer == TransferKind::ShmRing {
                            self.transfer.shm_ring.latency(stage_input_bytes)
                        } else {
                            self.transfer.cross_process(stage_input_bytes)
                        }
                }
                ProcessSpawn::MainReuse => SimDuration::ZERO,
            };
            let isolated = proc.spawn == ProcessSpawn::MainReuse || proc.functions.len() > 1;
            let mut extra = SimDuration::ZERO;
            if isolated {
                extra += iso.startup;
            }
            if read_input {
                extra += self
                    .transfer
                    .cross_sandbox(plan.transfer, stage_input_bytes);
            }
            // Identity stretches (IsolationKind::None has zero overheads)
            // leave segments bit-identical, so the catalog's unstretched
            // slices can be simulated directly.
            let stretched = isolated && (iso.cpu_overhead != 0.0 || iso.io_overhead != 0.0);

            let exec = match plan.runtime {
                chiron_model::RuntimeKind::PseudoParallel if !stretched => {
                    let src = StaggeredSet {
                        set: &proc.functions,
                        catalog,
                        spacing: self.costs.thread_clone,
                        base: extra,
                    };
                    cache.get_or_simulate(src.key(interval), &src, interval, &mut scratch.arena)
                }
                chiron_model::RuntimeKind::PseudoParallel => {
                    let PredictScratch {
                        arena,
                        created,
                        ranges,
                        segments,
                    } = scratch;
                    created.clear();
                    ranges.clear();
                    segments.clear();
                    for (ti, &fid) in proc.functions.iter().enumerate() {
                        created.push(self.costs.thread_clone * ti as u64 + extra);
                        let from = segments.len() as u32;
                        segments.extend(catalog.segments(fid).iter().map(|&seg| match seg {
                            Segment::Cpu(_) => Segment::Cpu(iso.stretch_segment(seg)),
                            Segment::Block { kind, .. } => Segment::Block {
                                kind,
                                dur: iso.stretch_segment(seg),
                            },
                        }));
                        ranges.push((from, segments.len() as u32));
                    }
                    let src = FlatThreads {
                        created,
                        ranges,
                        segments,
                    };
                    cache.get_or_simulate(content_key(&src, interval), &src, interval, arena)
                }
                chiron_model::RuntimeKind::TrueParallel => {
                    // Cold path: PGP never emits truly parallel plans, so
                    // this mirrors the uncached build without memoisation.
                    let mut max_created = SimDuration::ZERO;
                    let mut tasks: Vec<Vec<Segment>> = Vec::with_capacity(proc.functions.len());
                    for (ti, &fid) in proc.functions.iter().enumerate() {
                        max_created = max_created.max(self.costs.thread_clone * ti as u64 + extra);
                        tasks.push(
                            catalog
                                .segments(fid)
                                .iter()
                                .map(|&seg| {
                                    if !stretched {
                                        return seg;
                                    }
                                    match seg {
                                        Segment::Cpu(_) => Segment::Cpu(iso.stretch_segment(seg)),
                                        Segment::Block { kind, .. } => Segment::Block {
                                            kind,
                                            dur: iso.stretch_segment(seg),
                                        },
                                    }
                                })
                                .collect(),
                        );
                    }
                    let mut out = predict_true_parallel(&tasks, cpus);
                    out.makespan += max_created;
                    out
                }
            };
            max_end = max_end.max(start + exec.makespan);
            total_cpu += exec.cpu_time;

            if write_output {
                for &fid in &proc.functions {
                    let bytes = workflow.function(fid).output_bytes;
                    max_write = max_write.max(self.transfer.cross_sandbox(plan.transfer, bytes));
                }
            }
        }

        let packed =
            SimDuration::from_nanos((total_cpu.as_nanos() as f64 / f64::from(cpus)).ceil() as u64);
        let exec_end = max_end.max(packed);
        let ipc = self.drain_cost(plan) * (wrap.processes.len() as u64 - 1);
        exec_end + ipc + max_write
    }
}

/// Reusable buffers for [`Predictor::predict_cached`]: the Algorithm 1
/// state arena plus flat thread-materialisation buffers for isolated
/// (segment-stretched) processes. One per caller or worker thread.
#[derive(Debug, Default)]
pub struct PredictScratch {
    pub arena: SimArena,
    created: Vec<SimDuration>,
    ranges: Vec<(u32, u32)>,
    segments: Vec<Segment>,
}

impl PredictScratch {
    pub fn new() -> Self {
        PredictScratch::default()
    }
}

impl Default for Predictor {
    fn default() -> Self {
        Predictor::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::plan::*;
    use chiron_model::{apps, IsolationKind, RuntimeKind, SandboxId, SandboxPlan};
    use chiron_profiler::Profiler;
    use chiron_runtime::VirtualPlatform;

    fn faastlane_plan(wf: &Workflow, cpus: u32) -> DeploymentPlan {
        // Sequential stages as orchestrator threads, parallel stages as
        // forked processes, one sandbox.
        let stages = wf
            .stages
            .iter()
            .map(|s| StagePlan {
                wraps: vec![WrapPlan {
                    sandbox: SandboxId(0),
                    processes: if s.functions.len() == 1 {
                        vec![ProcessPlan::main_reuse(s.functions.clone())]
                    } else {
                        s.functions
                            .iter()
                            .map(|&f| ProcessPlan::forked(vec![f]))
                            .collect()
                    },
                }],
            })
            .collect();
        DeploymentPlan {
            system: SystemKind::Faastlane,
            workflow: wf.name.clone(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::RpcPayload,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes: vec![SandboxPlan {
                id: SandboxId(0),
                cpus,
                pool_size: 0,
            }],
            stages,
        }
    }

    fn thread_plan(wf: &Workflow, cpus: u32) -> DeploymentPlan {
        let mut plan = faastlane_plan(wf, cpus);
        plan.system = SystemKind::FaastlaneT;
        for (si, s) in wf.stages.iter().enumerate() {
            plan.stages[si].wraps[0].processes = vec![ProcessPlan::main_reuse(s.functions.clone())];
        }
        plan
    }

    /// Prediction error against the noiseless ground-truth platform must be
    /// small for the deployment shapes PGP explores.
    #[test]
    fn tracks_ground_truth_for_process_plans() {
        let wf = apps::finra(5);
        let profile = Profiler::default().profile_workflow(&wf);
        let plan = faastlane_plan(&wf, 5);
        let predicted = Predictor::paper_calibrated().predict(&wf, &profile, &plan);
        let truth = VirtualPlatform::new(PlatformConfig::paper_calibrated())
            .execute(&wf, &plan, 0)
            .unwrap()
            .e2e;
        let err = (predicted.as_millis_f64() - truth.as_millis_f64()).abs() / truth.as_millis_f64();
        assert!(err < 0.10, "pred {predicted} truth {truth} err {err}");
    }

    #[test]
    fn tracks_ground_truth_for_thread_plans() {
        for wf in [apps::finra(5), apps::slapp(), apps::social_network()] {
            let profile = Profiler::default().profile_workflow(&wf);
            let plan = thread_plan(&wf, 2);
            let predicted = Predictor::paper_calibrated().predict(&wf, &profile, &plan);
            let truth = VirtualPlatform::new(PlatformConfig::paper_calibrated())
                .execute(&wf, &plan, 0)
                .unwrap()
                .e2e;
            let err =
                (predicted.as_millis_f64() - truth.as_millis_f64()).abs() / truth.as_millis_f64();
            assert!(err < 0.15, "{}: pred {predicted} truth {truth}", wf.name);
        }
    }

    /// FINRA split across two wraps (two 2-cpu sandboxes, first-fit packs
    /// both onto one node) so the shm-ring tier's co-location pricing is
    /// actually exercised.
    fn two_wrap_plan(wf: &Workflow, transfer: TransferKind) -> DeploymentPlan {
        let mut plan = faastlane_plan(wf, 2);
        plan.transfer = transfer;
        plan.sandboxes.push(SandboxPlan {
            id: SandboxId(1),
            cpus: 2,
            pool_size: 0,
        });
        for stage in &mut plan.stages {
            let procs = std::mem::take(&mut stage.wraps[0].processes);
            if procs.len() < 2 {
                stage.wraps[0].processes = procs;
                continue;
            }
            let mid = procs.len() / 2;
            let (a, b) = procs.split_at(mid);
            stage.wraps[0].processes = a.to_vec();
            stage.wraps.push(WrapPlan {
                sandbox: SandboxId(1),
                processes: b.to_vec(),
            });
        }
        plan
    }

    #[test]
    fn tracks_ground_truth_for_shm_ring_plans() {
        let wf = apps::finra(5);
        let profile = Profiler::default().profile_workflow(&wf);
        let pred = Predictor::paper_calibrated();
        let platform = VirtualPlatform::new(PlatformConfig::paper_calibrated());
        for transfer in [TransferKind::RpcPayload, TransferKind::ShmRing] {
            let plan = two_wrap_plan(&wf, transfer);
            let predicted = pred.predict(&wf, &profile, &plan);
            let truth = platform.execute(&wf, &plan, 0).unwrap().e2e;
            let err =
                (predicted.as_millis_f64() - truth.as_millis_f64()).abs() / truth.as_millis_f64();
            assert!(
                err < 0.15,
                "{transfer:?}: pred {predicted} truth {truth} err {err}"
            );
        }
        // And the predictor agrees with the DES on the direction: the ring
        // plan is strictly faster than its RPC twin.
        let ring = pred.predict(&wf, &profile, &two_wrap_plan(&wf, TransferKind::ShmRing));
        let rpc = pred.predict(&wf, &profile, &two_wrap_plan(&wf, TransferKind::RpcPayload));
        assert!(ring < rpc, "ring {ring} vs rpc {rpc}");
    }

    #[test]
    fn conservative_predicts_higher() {
        let wf = apps::finra(50);
        let profile = Profiler::default().profile_workflow(&wf);
        let plan = faastlane_plan(&wf, 8);
        let base = Predictor::paper_calibrated();
        let p = base.predict(&wf, &profile, &plan);
        let c = base.conservative(1.25).predict(&wf, &profile, &plan);
        assert!(c > p, "conservative {c} vs {p}");
    }

    #[test]
    fn thread_wrap_beats_process_wrap_for_short_functions() {
        // Observation 3 at FINRA-5: thread execution wins for
        // sub-millisecond functions despite the GIL.
        let wf = apps::finra(5);
        let profile = Profiler::default().profile_workflow(&wf);
        let pred = Predictor::paper_calibrated();
        let t = pred.predict(&wf, &profile, &thread_plan(&wf, 5));
        let p = pred.predict(&wf, &profile, &faastlane_plan(&wf, 5));
        assert!(t < p, "threads {t} vs processes {p}");
    }

    #[test]
    fn process_wrap_wins_for_cpu_heavy_parallelism() {
        // SLApp's stages are ~36ms CPU-heavy: pseudo-parallel threads
        // serialise them, so processes win despite fork overhead.
        let wf = apps::slapp();
        let profile = Profiler::default().profile_workflow(&wf);
        let pred = Predictor::paper_calibrated();
        let t = pred.predict(&wf, &profile, &thread_plan(&wf, 4));
        let p = pred.predict(&wf, &profile, &faastlane_plan(&wf, 4));
        assert!(p < t, "processes {p} vs threads {t}");
    }

    #[test]
    fn fewer_cpus_predictably_slower_for_processes() {
        let wf = apps::slapp();
        let profile = Profiler::default().profile_workflow(&wf);
        let pred = Predictor::paper_calibrated();
        let wide = pred.predict(&wf, &profile, &faastlane_plan(&wf, 4));
        let narrow = pred.predict(&wf, &profile, &faastlane_plan(&wf, 1));
        assert!(narrow > wide);
    }

    #[test]
    fn mpk_plan_predicts_slower_than_bare_threads() {
        let wf = apps::slapp();
        let profile = Profiler::default().profile_workflow(&wf);
        let pred = Predictor::paper_calibrated();
        let mut plan = thread_plan(&wf, 4);
        let bare = pred.predict(&wf, &profile, &plan);
        plan.isolation = IsolationKind::Mpk;
        let mpk = pred.predict(&wf, &profile, &plan);
        assert!(mpk > bare);
    }
}
