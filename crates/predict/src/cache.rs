//! Content-addressed memoisation of Algorithm 1 simulations.
//!
//! The PGP scheduler evaluates the same process contents over and over:
//! every KL candidate swap re-proposes sets that earlier swaps (or earlier
//! values of `n`, or the CPU-trim loop) already simulated. Because
//! [`predict_threads_src`] is a pure function of the thread *contents*
//! (creation times + segment lists + switch interval), its outcome can be
//! keyed by a content hash and shared across KL rounds, candidate swaps,
//! process counts, and search workers.
//!
//! Keys hash actual content, not function ids: two functions with identical
//! profiles (e.g. FINRA's repeated rule checks) collapse to one entry. The
//! key is *order-sensitive* — Algorithm 1 is not invariant under thread
//! permutation because creation times stagger by position — so identical
//! ordered contents are required for a hit, which is exactly the guarantee
//! needed for byte-identical plans.
//!
//! [`PredictionCache`] is sharded behind `parking_lot` mutexes so
//! `schedule_parallel`'s scoped workers share one cache with negligible
//! contention; values are deterministic, so racing duplicate computations
//! of the same key is harmless.

use crate::threadsim::{predict_threads_src, SimArena, SimOutcome, ThreadSource};
use chiron_model::{FunctionId, Segment, SimDuration};
use chiron_obs::StaticCounter;
use chiron_profiler::WorkflowProfile;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide mirrors of the per-cache counters, aggregated across
/// every [`PredictionCache`] instance for the `figures -- obs` snapshot.
static CACHE_HITS: StaticCounter = StaticCounter::new("predict.cache.hits");
static CACHE_MISSES: StaticCounter = StaticCounter::new("predict.cache.misses");
static CACHE_INSERTS: StaticCounter = StaticCounter::new("predict.cache.inserts");

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Domain separation between the two key schemes below, so a staggered-set
/// key can never collide with a flat-content key by construction.
const SALT_STAGGERED: u64 = 0x5347_5354_4147_4745; // "SGSTAGGE"
const SALT_FLAT: u64 = 0x5347_464c_4154_5448; // "SGFLATTH"

/// Incremental FNV-1a.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Finaliser used to mix per-position element hashes into a set key.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_segment(h: &mut Fnv1a, seg: &Segment) {
    match seg {
        Segment::Cpu(d) => {
            h.write_u8(0);
            h.write_u64(d.as_nanos());
        }
        Segment::Block { kind, dur } => {
            h.write_u8(1 + *kind as u8);
            h.write_u64(dur.as_nanos());
        }
    }
}

/// Flattened, pre-hashed segment lists for every function in a workflow.
/// Built once per schedule from the [`WorkflowProfile`]; replaces the
/// per-call `FunctionProfile::segments()` `Vec` reconstruction with a
/// borrow, and precomputes each function's content hash for fast set keys.
#[derive(Debug, Clone)]
pub struct SegmentCatalog {
    flat: Vec<Segment>,
    ranges: Vec<(u32, u32)>,
    hashes: Vec<u64>,
    /// Per function: (total CPU time, total segment span). Feed the KL
    /// bound prune — see [`StaggeredSet::makespan_lower_bound`].
    totals: Vec<(SimDuration, SimDuration)>,
}

impl SegmentCatalog {
    pub fn new(profile: &WorkflowProfile) -> Self {
        let mut flat = Vec::new();
        let mut ranges = Vec::with_capacity(profile.functions.len());
        let mut hashes = Vec::with_capacity(profile.functions.len());
        let mut totals = Vec::with_capacity(profile.functions.len());
        for f in &profile.functions {
            let start = flat.len() as u32;
            flat.extend(f.segments());
            ranges.push((start, flat.len() as u32));
            let mut h = Fnv1a::new();
            let mut cpu = SimDuration::ZERO;
            let mut span = SimDuration::ZERO;
            for seg in &flat[start as usize..] {
                hash_segment(&mut h, seg);
                match seg {
                    Segment::Cpu(d) => {
                        cpu += *d;
                        span += *d;
                    }
                    Segment::Block { dur, .. } => span += *dur,
                }
            }
            hashes.push(h.finish());
            totals.push((cpu, span));
        }
        SegmentCatalog {
            flat,
            ranges,
            hashes,
            totals,
        }
    }

    /// The function's profiled segment list, borrowed.
    pub fn segments(&self, f: FunctionId) -> &[Segment] {
        let (s, e) = self.ranges[f.index()];
        &self.flat[s as usize..e as usize]
    }

    /// FNV-1a over the function's segment contents.
    pub fn content_hash(&self, f: FunctionId) -> u64 {
        self.hashes[f.index()]
    }

    /// Total CPU time of the function's profiled segments.
    pub fn cpu_total(&self, f: FunctionId) -> SimDuration {
        self.totals[f.index()].0
    }

    /// Total duration (CPU + blocks) of the function's profiled segments.
    pub fn span(&self, f: FunctionId) -> SimDuration {
        self.totals[f.index()].1
    }
}

/// Number of distinct function behaviours in a profile: unique
/// segment-content hashes, the exact population [`PredictionCache`]
/// dedupes on. Real fleets deploy families of near-identical functions
/// (FINRA's rule checks repeat with period 5), so this is often far
/// below `function_count` — and once the cache interns a behaviour,
/// every repeat is a lookup, so search *work* scales with this count,
/// not with raw function count. The parallel scheduler's work-size gate
/// uses it to avoid fanning out threads over work that is mostly cache
/// hits.
pub fn distinct_profile_classes(profile: &WorkflowProfile) -> usize {
    let mut hashes: Vec<u64> = profile
        .functions
        .iter()
        .map(|f| {
            let mut h = Fnv1a::new();
            for seg in f.segments() {
                hash_segment(&mut h, &seg);
            }
            h.finish()
        })
        .collect();
    hashes.sort_unstable();
    hashes.dedup();
    hashes.len()
}

/// [`ThreadSource`] for the scheduler's canonical process shape: the set's
/// functions started `spacing` apart (thread clone cost), all offset by
/// `base` (isolation startup + input read, zero in the KL objective), with
/// *unstretched* profiled segments borrowed from the catalog.
#[derive(Debug, Clone, Copy)]
pub struct StaggeredSet<'a> {
    pub set: &'a [FunctionId],
    pub catalog: &'a SegmentCatalog,
    pub spacing: SimDuration,
    pub base: SimDuration,
}

impl ThreadSource for StaggeredSet<'_> {
    fn count(&self) -> usize {
        self.set.len()
    }
    fn created_at(&self, i: usize) -> SimDuration {
        self.base + self.spacing * i as u64
    }
    fn segments(&self, i: usize) -> &[Segment] {
        self.catalog.segments(self.set[i])
    }
}

impl StaggeredSet<'_> {
    /// Content key: a salt over the scalar parameters mixed with each
    /// position's function-content hash. Shared between the KL objective
    /// and the pack/trim plan evaluator, so a set first simulated during
    /// partitioning is a cache hit when the packed plan is priced.
    pub fn key(&self, interval: SimDuration) -> u64 {
        let mut salt = Fnv1a::new();
        salt.write_u64(SALT_STAGGERED);
        salt.write_u64(interval.as_nanos());
        salt.write_u64(self.spacing.as_nanos());
        salt.write_u64(self.base.as_nanos());
        salt.write_u64(self.set.len() as u64);
        let mut key = salt.finish();
        for (i, &f) in self.set.iter().enumerate() {
            key ^= splitmix64(
                self.catalog
                    .content_hash(f)
                    .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            );
        }
        key
    }

    /// A cheap, exact lower bound on the simulated makespan, from the
    /// catalog's per-function totals (no simulation, no allocation):
    ///
    /// * the GIL serialises CPU, so the set cannot finish before
    ///   `base + Σ cpu_total`;
    /// * thread `i` runs its segments sequentially even alone, so it cannot
    ///   finish before `created_at(i) + span(i)`.
    ///
    /// Both are true of every Algorithm 1 run, so a candidate whose bound
    /// already meets the incumbent score is provably not an improvement —
    /// the KL search uses this to skip whole simulations.
    pub fn makespan_lower_bound(&self) -> SimDuration {
        let mut cpu_sum = SimDuration::ZERO;
        let mut tail = SimDuration::ZERO;
        for (i, &f) in self.set.iter().enumerate() {
            cpu_sum += self.catalog.cpu_total(f);
            let end = self.spacing * i as u64 + self.catalog.span(f);
            tail = tail.max(end);
        }
        self.base + cpu_sum.max(tail)
    }
}

/// [`ThreadSource`] over caller-owned flat buffers; used for isolated
/// (segment-stretched) processes that must be materialised before
/// simulation, without allocating per call.
#[derive(Debug, Clone, Copy)]
pub struct FlatThreads<'a> {
    pub created: &'a [SimDuration],
    pub ranges: &'a [(u32, u32)],
    pub segments: &'a [Segment],
}

impl ThreadSource for FlatThreads<'_> {
    fn count(&self) -> usize {
        self.created.len()
    }
    fn created_at(&self, i: usize) -> SimDuration {
        self.created[i]
    }
    fn segments(&self, i: usize) -> &[Segment] {
        let (s, e) = self.ranges[i];
        &self.segments[s as usize..e as usize]
    }
}

/// Full-content key for an arbitrary thread source (order-sensitive FNV
/// over creation times and every segment).
pub fn content_key(src: &impl ThreadSource, interval: SimDuration) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(SALT_FLAT);
    h.write_u64(interval.as_nanos());
    let n = src.count();
    h.write_u64(n as u64);
    for i in 0..n {
        h.write_u64(src.created_at(i).as_nanos());
        for seg in src.segments(i) {
            hash_segment(&mut h, seg);
        }
    }
    h.finish()
}

/// Keys are already uniformly mixed hashes; storing them under a second
/// hash would be wasted work, so the map hasher is the identity.
#[derive(Debug, Default, Clone)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type Shard = Mutex<HashMap<u64, SimOutcome, BuildHasherDefault<IdentityHasher>>>;

const SHARD_COUNT: usize = 16;

/// Hit/miss counters snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded content-addressed store of Algorithm 1 outcomes. One instance
/// serves a whole schedule (or the manager's lifetime — keys are pure
/// content, so entries never go stale) and is shared by reference across
/// `schedule_parallel`'s scoped workers.
pub struct PredictionCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PredictionCache {
    pub fn new() -> Self {
        PredictionCache {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Shard {
        // Identity-hashed maps bucket on the key's low bits; shard on the
        // high bits so the two partitions are independent.
        &self.shards[(key >> 60) as usize & (SHARD_COUNT - 1)]
    }

    pub fn get(&self, key: u64) -> Option<SimOutcome> {
        let out = self.shard(key).lock().get(&key).copied();
        match out {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CACHE_HITS.incr();
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                CACHE_MISSES.incr();
            }
        };
        out
    }

    pub fn put(&self, key: u64, outcome: SimOutcome) {
        CACHE_INSERTS.incr();
        self.shard(key).lock().insert(key, outcome);
    }

    /// Memoised Algorithm 1: look up `key`, else simulate `src` (lock
    /// dropped during the simulation) and store the result. Concurrent
    /// workers may race to compute the same key; outcomes are deterministic
    /// so last-write-wins is correct.
    pub fn get_or_simulate(
        &self,
        key: u64,
        src: &impl ThreadSource,
        interval: SimDuration,
        arena: &mut SimArena,
    ) -> SimOutcome {
        if let Some(out) = self.get(key) {
            return out;
        }
        let out = predict_threads_src(src, interval, arena);
        self.put(key, out);
        out
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len()).sum(),
        }
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl Default for PredictionCache {
    fn default() -> Self {
        PredictionCache::new()
    }
}

impl std::fmt::Debug for PredictionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threadsim::predict_threads;
    use crate::SimThread;
    use chiron_model::{apps, SyscallKind};
    use chiron_profiler::Profiler;

    fn catalog_for(n: usize) -> (SegmentCatalog, usize) {
        let wf = apps::finra(n);
        let profile = Profiler::default().profile_workflow(&wf);
        (SegmentCatalog::new(&profile), profile.functions.len())
    }

    #[test]
    fn catalog_matches_profile_segments() {
        let wf = apps::finra(5);
        let profile = Profiler::default().profile_workflow(&wf);
        let catalog = SegmentCatalog::new(&profile);
        for f in &profile.functions {
            assert_eq!(catalog.segments(f.function), f.segments().as_slice());
        }
    }

    #[test]
    fn identical_profiles_share_content_hash() {
        // FINRA's rule durations cycle with period 5, so rule_000 (id 1)
        // and rule_005 (id 6) have identical profile content.
        let (catalog, n) = catalog_for(8);
        assert!(n > 6);
        assert_eq!(
            catalog.content_hash(FunctionId(1)),
            catalog.content_hash(FunctionId(6))
        );
        assert_ne!(
            catalog.content_hash(FunctionId(1)),
            catalog.content_hash(FunctionId(2))
        );
    }

    #[test]
    fn staggered_key_is_order_sensitive() {
        let (catalog, _) = catalog_for(5);
        // fetch_market_data (0) and validate_rule_000 (1) differ in content.
        assert_ne!(
            catalog.content_hash(FunctionId(0)),
            catalog.content_hash(FunctionId(1))
        );
        let i = SimDuration::from_millis(5);
        let ab = StaggeredSet {
            set: &[FunctionId(0), FunctionId(1)],
            catalog: &catalog,
            spacing: SimDuration::from_micros(100),
            base: SimDuration::ZERO,
        };
        let ba = StaggeredSet {
            set: &[FunctionId(1), FunctionId(0)],
            catalog: &catalog,
            spacing: SimDuration::from_micros(100),
            base: SimDuration::ZERO,
        };
        assert_ne!(ab.key(i), ba.key(i));
    }

    #[test]
    fn staggered_key_matches_flat_content_semantics() {
        // Same ordered contents under different fids hash equal; any
        // parameter change hashes different. In FINRA-12, rules repeat
        // every 5 ids: [1, 2] and [6, 7] carry identical contents.
        let (catalog, _) = catalog_for(12);
        let i = SimDuration::from_millis(5);
        let spacing = SimDuration::from_micros(100);
        let a = StaggeredSet {
            set: &[FunctionId(1), FunctionId(2)],
            catalog: &catalog,
            spacing,
            base: SimDuration::ZERO,
        };
        let b = StaggeredSet {
            set: &[FunctionId(6), FunctionId(7)],
            catalog: &catalog,
            spacing,
            base: SimDuration::ZERO,
        };
        assert_eq!(a.key(i), b.key(i));
        let wider = StaggeredSet {
            spacing: spacing * 2,
            ..a
        };
        assert_ne!(a.key(i), wider.key(i));
        assert_ne!(a.key(i), a.key(SimDuration::from_millis(6)));
    }

    #[test]
    fn cached_simulation_matches_uncached() {
        let (catalog, _) = catalog_for(5);
        let i = SimDuration::from_millis(5);
        let spacing = SimDuration::from_micros(100);
        let set = [FunctionId(0), FunctionId(2), FunctionId(4)];
        let src = StaggeredSet {
            set: &set,
            catalog: &catalog,
            spacing,
            base: SimDuration::ZERO,
        };
        let threads: Vec<SimThread> = set
            .iter()
            .enumerate()
            .map(|(ti, &f)| SimThread {
                created_at: spacing * ti as u64,
                segments: catalog.segments(f).to_vec(),
            })
            .collect();
        let expected = predict_threads(&threads, i);

        let cache = PredictionCache::new();
        let mut arena = SimArena::new();
        let first = cache.get_or_simulate(src.key(i), &src, i, &mut arena);
        let second = cache.get_or_simulate(src.key(i), &src, i, &mut arena);
        assert_eq!(first, expected);
        assert_eq!(second, expected);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.hit_rate() > 0.49);
    }

    #[test]
    fn makespan_lower_bound_never_exceeds_simulation() {
        // The KL prune is only exact if the bound is a true lower bound of
        // every simulated makespan; sweep contiguous FINRA sets of several
        // sizes (mixed CPU-only rules and the blocking fetch function).
        let (catalog, n) = catalog_for(12);
        let interval = SimDuration::from_millis(5);
        let spacing = SimDuration::from_micros(100);
        let mut arena = SimArena::new();
        let all: Vec<FunctionId> = (0..n as u32).map(FunctionId).collect();
        for window in [1usize, 2, 3, 5, 8] {
            for start in 0..=(n - window) {
                let src = StaggeredSet {
                    set: &all[start..start + window],
                    catalog: &catalog,
                    spacing,
                    base: SimDuration::from_micros(250 * (start % 2) as u64),
                };
                let out = predict_threads_src(&src, interval, &mut arena);
                assert!(
                    src.makespan_lower_bound() <= out.makespan,
                    "bound exceeds makespan for window {window} at {start}"
                );
            }
        }
    }

    #[test]
    fn content_key_covers_every_field() {
        let seg = |ms| Segment::cpu_ms(ms);
        let block = Segment::Block {
            kind: SyscallKind::DiskIo,
            dur: SimDuration::from_millis(3),
        };
        let created = [SimDuration::ZERO, SimDuration::from_millis(1)];
        let segments = [seg(2), block, seg(4)];
        let ranges = [(0u32, 2u32), (2, 3)];
        let src = FlatThreads {
            created: &created,
            ranges: &ranges,
            segments: &segments,
        };
        let i = SimDuration::from_millis(5);
        let base = content_key(&src, i);
        let shifted = [SimDuration::ZERO, SimDuration::from_millis(2)];
        assert_ne!(
            base,
            content_key(
                &FlatThreads {
                    created: &shifted,
                    ..src
                },
                i
            )
        );
        let resized = [(0u32, 1u32), (1, 3)];
        assert_ne!(
            base,
            content_key(
                &FlatThreads {
                    ranges: &resized,
                    ..src
                },
                i
            )
        );
        assert_ne!(base, content_key(&src, SimDuration::from_millis(6)));
    }
}
