//! Algorithm 1: Multi-Threads Latency Prediction.
//!
//! Predicts the overall latency of multiple function threads inside one
//! GIL-guarded process by simulating GIL switching over the profiled
//! CPU/block periods: the running thread executes until the switch interval
//! expires or a block operation occurs; blocked threads rejoin when their
//! I/O completes; the next holder is the non-blocked thread with minimum
//! accumulated CPU time (the CFS rule, Algorithm 1 line 17).
//!
//! This is the *model*, deliberately simpler than the ground-truth fluid
//! simulation in `chiron-runtime`: it assumes a dedicated CPU for the
//! process and constant-cost thread creation. The residual between the two
//! (plus platform jitter) is Chiron's prediction error (Fig. 12).
//!
//! The simulator itself is allocation-free on the hot path: thread inputs
//! are described by a [`ThreadSource`] (segments borrowed as `&[Segment]`,
//! not owned), and per-thread bookkeeping lives in a reusable [`SimArena`]
//! so the PGP scheduler's millions of objective evaluations allocate
//! nothing after warm-up.

use chiron_model::{Segment, SimDuration};

/// One thread's input to the simulation: when it is created (relative to
/// process start) and the profiled segment list it executes.
#[derive(Debug, Clone)]
pub struct SimThread {
    pub created_at: SimDuration,
    pub segments: Vec<Segment>,
}

/// Borrowed description of the thread set fed to Algorithm 1. Implementors
/// hand out segment slices without cloning, which keeps the simulation
/// allocation-free regardless of where the segments actually live.
pub trait ThreadSource {
    fn count(&self) -> usize;
    fn created_at(&self, i: usize) -> SimDuration;
    fn segments(&self, i: usize) -> &[Segment];
}

impl ThreadSource for [SimThread] {
    fn count(&self) -> usize {
        self.len()
    }
    fn created_at(&self, i: usize) -> SimDuration {
        self[i].created_at
    }
    fn segments(&self, i: usize) -> &[Segment] {
        &self[i].segments
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SimPhase {
    Waiting,
    Ready,
    Blocked { until: SimDuration },
    Done { at: SimDuration },
}

#[derive(Debug, Clone, Copy)]
struct SimState {
    created_at: SimDuration,
    seg_idx: usize,
    offset: SimDuration,
    phase: SimPhase,
    cpu_used: SimDuration,
}

/// Reusable per-thread state buffer for [`predict_threads_src`]. One arena
/// per caller (or per worker thread) amortises the `Vec<SimState>` across
/// every simulation it runs.
#[derive(Debug, Default)]
pub struct SimArena {
    states: Vec<SimState>,
}

impl SimArena {
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Convenience: run Algorithm 1 over `src` reusing this arena.
    pub fn predict(
        &mut self,
        src: &(impl ThreadSource + ?Sized),
        interval: SimDuration,
    ) -> SimOutcome {
        predict_threads_src(src, interval, self)
    }
}

/// Output of the Algorithm 1 simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// `T_exec`: when the last thread finished.
    pub makespan: SimDuration,
    /// Total CPU time consumed by all threads.
    pub cpu_time: SimDuration,
}

/// Runs Algorithm 1 over `threads` with GIL switch interval `interval`.
pub fn predict_threads(threads: &[SimThread], interval: SimDuration) -> SimOutcome {
    predict_threads_src(threads, interval, &mut SimArena::new())
}

/// Runs Algorithm 1 over the borrowed thread set `src`, reusing `arena`
/// for per-thread state so the call allocates nothing once the arena has
/// grown to the largest set it has seen.
pub fn predict_threads_src(
    src: &(impl ThreadSource + ?Sized),
    interval: SimDuration,
    arena: &mut SimArena,
) -> SimOutcome {
    assert!(!interval.is_zero(), "switch interval must be positive");
    let n = src.count();
    if n == 0 {
        return SimOutcome {
            makespan: SimDuration::ZERO,
            cpu_time: SimDuration::ZERO,
        };
    }
    let states = &mut arena.states;
    states.clear();
    states.reserve(n);
    for i in 0..n {
        states.push(SimState {
            created_at: src.created_at(i),
            seg_idx: 0,
            offset: SimDuration::ZERO,
            phase: SimPhase::Waiting,
            cpu_used: SimDuration::ZERO,
        });
    }

    let mut clock = SimDuration::ZERO;
    let mut total_cpu = SimDuration::ZERO;
    loop {
        // Wake arrivals and completed I/O.
        for (i, s) in states.iter_mut().enumerate() {
            match s.phase {
                SimPhase::Waiting if s.created_at <= clock => enter(s, src.segments(i), clock),
                SimPhase::Blocked { until } if until <= clock => {
                    s.seg_idx += 1;
                    enter(s, src.segments(i), clock);
                }
                _ => {}
            }
        }
        if states
            .iter()
            .all(|s| matches!(s.phase, SimPhase::Done { .. }))
        {
            break;
        }

        // Line 17: minimum-CPU-time non-blocked thread holds the GIL.
        let runnable = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.phase == SimPhase::Ready)
            .min_by_key(|(i, s)| (s.cpu_used, *i))
            .map(|(i, _)| i);

        let Some(i) = runnable else {
            // Everyone is blocked or not yet created: advance to the next
            // wake-up point.
            let next = states
                .iter()
                .filter_map(|s| match s.phase {
                    SimPhase::Waiting => Some(s.created_at),
                    SimPhase::Blocked { until } => Some(until),
                    _ => None,
                })
                .min()
                .expect("not all done");
            clock = clock.max(next);
            continue;
        };

        let s = &mut states[i];
        let segs = src.segments(i);
        let Segment::Cpu(seg_dur) = segs[s.seg_idx] else {
            unreachable!("ready thread always sits on a CPU segment")
        };
        let remaining = seg_dur - s.offset;
        // Lines 8–16: run until the switch timeout or the next block op /
        // completion, whichever comes first.
        let slice = remaining.min(interval);
        clock += slice;
        s.offset += slice;
        s.cpu_used += slice;
        total_cpu += slice;
        if s.offset >= seg_dur {
            s.seg_idx += 1;
            s.offset = SimDuration::ZERO;
            enter(s, segs, clock);
        }
        // Otherwise the quantum expired mid-segment; the thread returns to
        // the ready set and line 17 picks the next holder.
    }

    let makespan = states
        .iter()
        .map(|s| match s.phase {
            SimPhase::Done { at } => at,
            _ => unreachable!("loop exits only when all threads are done"),
        })
        .max()
        .unwrap_or(SimDuration::ZERO);
    SimOutcome {
        makespan,
        cpu_time: total_cpu,
    }
}

/// Positions a thread on its current segment at `clock`.
fn enter(s: &mut SimState, segs: &[Segment], clock: SimDuration) {
    match segs.get(s.seg_idx) {
        None => s.phase = SimPhase::Done { at: clock },
        Some(Segment::Cpu(d)) if d.is_zero() => {
            s.seg_idx += 1;
            enter(s, segs, clock);
        }
        Some(Segment::Cpu(_)) => {
            s.offset = SimDuration::ZERO;
            s.phase = SimPhase::Ready;
        }
        Some(Segment::Block { dur, .. }) => {
            s.phase = SimPhase::Blocked {
                until: clock + *dur,
            };
        }
    }
}

/// White-box latency model for truly parallel execution (process pool,
/// Java threads, nogil) of tasks on `cpus` CPUs: the makespan is bounded
/// below by the longest task and by the aggregate CPU demand divided by
/// the CPU count; the model takes the larger bound.
pub fn predict_true_parallel(tasks: &[Vec<Segment>], cpus: u32) -> SimOutcome {
    assert!(cpus > 0);
    let mut longest = SimDuration::ZERO;
    let mut total_cpu = SimDuration::ZERO;
    let mut longest_io = SimDuration::ZERO;
    for segs in tasks {
        let solo: SimDuration = segs.iter().map(|s| s.duration()).sum();
        let cpu: SimDuration = segs
            .iter()
            .filter(|s| s.is_cpu())
            .map(|s| s.duration())
            .sum();
        longest = longest.max(solo);
        longest_io = longest_io.max(solo - cpu);
        total_cpu += cpu;
    }
    // Work-conserving bound: all CPU demand squeezed onto `cpus` cores,
    // overlapped with the longest blocking chain.
    let packed =
        SimDuration::from_nanos((total_cpu.as_nanos() as f64 / f64::from(cpus)).ceil() as u64)
            .max(longest_io);
    SimOutcome {
        makespan: longest.max(packed),
        cpu_time: total_cpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::SyscallKind;

    const I: SimDuration = SimDuration::from_millis(5);

    fn cpu(ms: u64) -> Segment {
        Segment::cpu_ms(ms)
    }

    fn io(ms: u64) -> Segment {
        Segment::Block {
            kind: SyscallKind::NetIo,
            dur: SimDuration::from_millis(ms),
        }
    }

    fn at(ms: u64, segments: Vec<Segment>) -> SimThread {
        SimThread {
            created_at: SimDuration::from_millis(ms),
            segments,
        }
    }

    #[test]
    fn single_thread_is_solo_latency() {
        let out = predict_threads(&[at(0, vec![cpu(10), io(5), cpu(3)])], I);
        assert_eq!(out.makespan.as_millis_f64(), 18.0);
        assert_eq!(out.cpu_time.as_millis_f64(), 13.0);
    }

    #[test]
    fn gil_serialises_cpu() {
        let out = predict_threads(&[at(0, vec![cpu(10)]), at(0, vec![cpu(10)])], I);
        assert_eq!(out.makespan.as_millis_f64(), 20.0);
    }

    #[test]
    fn io_overlaps_with_cpu() {
        let out = predict_threads(&[at(0, vec![io(20)]), at(0, vec![cpu(20)])], I);
        assert_eq!(out.makespan.as_millis_f64(), 20.0);
    }

    #[test]
    fn min_cpu_time_selection() {
        // Thread A blocks early; when it wakes it has less CPU time than B
        // and must preempt at the next switch point.
        let out = predict_threads(
            &[at(0, vec![cpu(2), io(4), cpu(2)]), at(0, vec![cpu(20)])],
            I,
        );
        assert_eq!(out.makespan.as_millis_f64(), 24.0);
        assert_eq!(out.cpu_time.as_millis_f64(), 24.0);
    }

    #[test]
    fn staggered_creation_delays_start() {
        let out = predict_threads(&[at(10, vec![cpu(5)])], I);
        assert_eq!(out.makespan.as_millis_f64(), 15.0);
    }

    #[test]
    fn empty_input() {
        let out = predict_threads(&[], I);
        assert_eq!(out.makespan, SimDuration::ZERO);
    }

    #[test]
    fn arena_reuse_is_equivalent() {
        // Reusing one arena across differently sized simulations yields the
        // same outcomes as fresh allocations per call.
        let sets: Vec<Vec<SimThread>> = vec![
            vec![at(0, vec![cpu(10), io(5), cpu(3)])],
            vec![at(0, vec![cpu(2), io(4), cpu(2)]), at(0, vec![cpu(20)])],
            vec![
                at(0, vec![io(20)]),
                at(0, vec![cpu(20)]),
                at(3, vec![cpu(1)]),
            ],
            vec![at(10, vec![cpu(5)])],
        ];
        let mut arena = SimArena::new();
        for set in &sets {
            let fresh = predict_threads(set, I);
            let reused = arena.predict(set.as_slice(), I);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn matches_runtime_fluid_on_cpu_workload() {
        // Cross-check: the Algorithm 1 model and the ground-truth fluid
        // engine agree exactly for a dedicated-CPU process.
        use chiron_model::{RuntimeKind, SimTime};
        use chiron_runtime::fluid::{execute_sandbox, ThreadTask};
        let segs: Vec<Vec<Segment>> = vec![
            vec![cpu(7), io(3), cpu(2)],
            vec![cpu(4)],
            vec![io(6), cpu(5)],
        ];
        let predicted = predict_threads(
            &segs.iter().map(|s| at(0, s.clone())).collect::<Vec<_>>(),
            I,
        );
        let truth = execute_sandbox(
            &segs
                .iter()
                .map(|s| ThreadTask {
                    process: 0,
                    start: SimTime::ZERO,
                    segments: s.clone(),
                })
                .collect::<Vec<_>>(),
            1,
            RuntimeKind::PseudoParallel,
            I,
        );
        let truth_end = truth
            .iter()
            .map(|r| r.end.as_millis_f64())
            .fold(0.0, f64::max);
        let diff = (predicted.makespan.as_millis_f64() - truth_end).abs();
        assert!(
            diff < 0.5,
            "model {} vs truth {}",
            predicted.makespan,
            truth_end
        );
    }

    #[test]
    fn true_parallel_longest_task_bound() {
        let out = predict_true_parallel(&[vec![cpu(30)], vec![cpu(10)]], 4);
        assert_eq!(out.makespan.as_millis_f64(), 30.0);
        assert_eq!(out.cpu_time.as_millis_f64(), 40.0);
    }

    #[test]
    fn true_parallel_capacity_bound() {
        // 4 × 10ms CPU on 2 CPUs: 20ms of packed work.
        let tasks: Vec<Vec<Segment>> = (0..4).map(|_| vec![cpu(10)]).collect();
        let out = predict_true_parallel(&tasks, 2);
        assert_eq!(out.makespan.as_millis_f64(), 20.0);
    }

    #[test]
    fn true_parallel_io_does_not_consume_cpu() {
        let tasks = vec![vec![io(30), cpu(2)], vec![cpu(10)]];
        let out = predict_true_parallel(&tasks, 1);
        assert_eq!(out.makespan.as_millis_f64(), 32.0);
        assert_eq!(out.cpu_time.as_millis_f64(), 12.0);
    }
}
