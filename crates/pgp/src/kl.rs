//! The Kernighan–Lin element-swapping pass of PGP (Algorithm 2,
//! lines 18–25).
//!
//! In PGP, "a set refers to the collection of functions contained within a
//! process, while element swapping refers to the swapping of functions
//! between two processes" (§3.4). The pass greedily finds the swap sequence
//! that minimises a caller-supplied latency objective, records the gain of
//! every swap, and finally applies the prefix of swaps with the largest
//! cumulative gain.

use chiron_model::FunctionId;

/// Runs one Kernighan–Lin pass over function sets `a` and `b`.
///
/// `objective(a, b)` must return the predicted latency (lower = better) of
/// executing the two candidate sets as two processes. On return, `a` and
/// `b` hold the refined partition; the achieved latency improvement is
/// returned (0.0 when no beneficial swap prefix exists).
pub fn kernighan_lin(
    a: &mut [FunctionId],
    b: &mut [FunctionId],
    mut objective: impl FnMut(&[FunctionId], &[FunctionId]) -> f64,
) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Working copies that virtual swaps are applied to (line 19).
    let mut wa = a.to_vec();
    let mut wb = b.to_vec();
    // Positions still eligible: each element is swapped at most once.
    let mut free_a: Vec<usize> = (0..wa.len()).collect();
    let mut free_b: Vec<usize> = (0..wb.len()).collect();

    let initial = objective(&wa, &wb);
    let mut current = initial;
    let mut gains: Vec<f64> = Vec::new();
    let mut swaps: Vec<(usize, usize)> = Vec::new();

    // Line 20: until one working set is exhausted.
    while !free_a.is_empty() && !free_b.is_empty() {
        // Line 21: the swap that minimises the predicted latency.
        let mut best: Option<(usize, usize, f64)> = None;
        for &ia in &free_a {
            for &ib in &free_b {
                std::mem::swap(&mut wa[ia], &mut wb[ib]);
                let score = objective(&wa, &wb);
                std::mem::swap(&mut wa[ia], &mut wb[ib]);
                let better = match best {
                    Some((_, _, s)) => score < s,
                    None => true,
                };
                if better {
                    best = Some((ia, ib, score));
                }
            }
        }
        let (ia, ib, score) = best.expect("free sets are non-empty");
        // Lines 22–23: record the benefit, lock the pair out.
        std::mem::swap(&mut wa[ia], &mut wb[ib]);
        gains.push(current - score);
        current = score;
        swaps.push((ia, ib));
        free_a.retain(|&i| i != ia);
        free_b.retain(|&i| i != ib);
    }

    // Lines 24–25: choose k maximising the cumulative gain and apply the
    // first k swaps to the real sets.
    let mut best_k = 0;
    let mut best_sum = 0.0;
    let mut acc = 0.0;
    for (k, g) in gains.iter().enumerate() {
        acc += g;
        if acc > best_sum + 1e-12 {
            best_sum = acc;
            best_k = k + 1;
        }
    }
    // Each position appears in at most one swap, so application order does
    // not matter.
    for &(ia, ib) in swaps.iter().take(best_k) {
        std::mem::swap(&mut a[ia], &mut b[ib]);
    }
    best_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(v: u32) -> FunctionId {
        FunctionId(v)
    }

    /// Objective: |sum(weights A) − sum(weights B)| — balanced partitions
    /// minimise the max process latency for CPU-bound functions.
    fn imbalance(weights: &[f64]) -> impl FnMut(&[FunctionId], &[FunctionId]) -> f64 + '_ {
        move |a, b| {
            let wa: f64 = a.iter().map(|f| weights[f.index()]).sum();
            let wb: f64 = b.iter().map(|f| weights[f.index()]).sum();
            wa.max(wb)
        }
    }

    #[test]
    fn balances_heavy_and_light() {
        // A holds both heavy functions; KL should split them.
        let weights = [10.0, 10.0, 1.0, 1.0];
        let mut a = vec![fid(0), fid(1)];
        let mut b = vec![fid(2), fid(3)];
        let gain = kernighan_lin(&mut a, &mut b, imbalance(&weights));
        assert!(gain > 0.0);
        let wa: f64 = a.iter().map(|f| weights[f.index()]).sum();
        let wb: f64 = b.iter().map(|f| weights[f.index()]).sum();
        assert_eq!(wa.max(wb), 11.0, "a={a:?} b={b:?}");
    }

    #[test]
    fn no_gain_on_homogeneous_sets() {
        let weights = [1.0; 6];
        let mut a = vec![fid(0), fid(1), fid(2)];
        let mut b = vec![fid(3), fid(4), fid(5)];
        let before = (a.clone(), b.clone());
        let gain = kernighan_lin(&mut a, &mut b, imbalance(&weights));
        assert_eq!(gain, 0.0);
        assert_eq!((a, b), before, "no swap should be applied");
    }

    #[test]
    fn empty_set_is_noop() {
        let mut a: Vec<FunctionId> = vec![];
        let mut b = vec![fid(0)];
        assert_eq!(kernighan_lin(&mut a, &mut b, |_, _| 0.0), 0.0);
    }

    #[test]
    fn escapes_local_minimum_via_prefix_selection() {
        // Hill-climbing on single swaps gets stuck; KL's look-ahead with
        // cumulative-gain prefix can cross a neutral swap. Sets {9,1} vs
        // {5,5}: any single swap worsens or keeps max=10; the two-swap
        // sequence reaching {5,5} vs {9,1} is neutral overall — so KL must
        // simply not regress here.
        let weights = [9.0, 1.0, 5.0, 5.0];
        let mut a = vec![fid(0), fid(1)];
        let mut b = vec![fid(2), fid(3)];
        let mut obj = imbalance(&weights);
        let before = obj(&a, &b);
        kernighan_lin(&mut a, &mut b, imbalance(&weights));
        let after = imbalance(&weights)(&a, &b);
        assert!(after <= before);
    }

    #[test]
    fn multiset_preserved() {
        let weights = [3.0, 7.0, 2.0, 8.0, 5.0];
        let mut a = vec![fid(0), fid(1), fid(4)];
        let mut b = vec![fid(2), fid(3)];
        kernighan_lin(&mut a, &mut b, imbalance(&weights));
        let mut all: Vec<u32> = a.iter().chain(b.iter()).map(|f| f.0).collect();
        all.sort_unstable();
        assert_eq!(all, [0, 1, 2, 3, 4]);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
    }
}
