//! The Kernighan–Lin element-swapping pass of PGP (Algorithm 2,
//! lines 18–25).
//!
//! In PGP, "a set refers to the collection of functions contained within a
//! process, while element swapping refers to the swapping of functions
//! between two processes" (§3.4). The pass greedily finds the swap sequence
//! that minimises a caller-supplied latency objective, records the gain of
//! every swap, and finally applies the prefix of swaps with the largest
//! cumulative gain.
//!
//! The objective is *per set*: the pair score is
//! `max(objective(a), objective(b))`, computed here. Taking the sides
//! separately lets the caller memoise each process independently (a swap
//! changes both sets, but most candidate sets recur across swaps and
//! rounds) and enables two exact prunes — `max` can only grow, so under
//! strict `<` selection a candidate provably at or above the best score
//! seen could never have won:
//!
//! * the second side is skipped when the first side's score already
//!   matches or exceeds the best;
//! * either side's *evaluation* is skipped entirely when a cheap lower
//!   bound ([`KlObjective::lower_bound`]) already matches or exceeds the
//!   best — for the scheduler this turns most candidate simulations into
//!   an O(set) arithmetic check.

use chiron_model::FunctionId;

/// The latency objective driving a Kernighan–Lin pass, plus the optional
/// machinery the exact prunes need. Any `FnMut(&[FunctionId]) -> f64`
/// closure is an objective (with no usable bound); the scheduler's cached
/// evaluator supplies a real [`lower_bound`](KlObjective::lower_bound),
/// and its reference evaluator opts out of pruning altogether so the
/// pre-optimisation cost model stays faithful.
pub trait KlObjective {
    /// Predicted latency (lower = better) of running `set` as one process.
    fn eval(&mut self, set: &[FunctionId]) -> f64;

    /// A cheap lower bound on [`eval`](KlObjective::eval). Must never
    /// exceed the true score; `NEG_INFINITY` (the default) disables the
    /// bound prune.
    fn lower_bound(&mut self, _set: &[FunctionId]) -> f64 {
        f64::NEG_INFINITY
    }

    /// Whether the pass may prune candidates that provably cannot win.
    /// `false` reproduces the original exhaustive pass: both sides of
    /// every candidate are evaluated.
    fn prunes(&self) -> bool {
        true
    }
}

impl<F: FnMut(&[FunctionId]) -> f64> KlObjective for F {
    fn eval(&mut self, set: &[FunctionId]) -> f64 {
        self(set)
    }
}

/// Search-effort counters of one or more Kernighan–Lin passes, summed
/// into the PGP decision audit. Plain `u64` sums commute, so parallel
/// search workers can accumulate locally and add up deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KlStats {
    /// Non-trivial passes run (both sets non-empty).
    pub passes: u64,
    /// Swap-selection rounds (Algorithm 2 line 20 iterations).
    pub rounds: u64,
    /// Candidate `(ia, ib)` swaps examined.
    pub candidates: u64,
    /// Candidates discharged by the exact prunes without full evaluation.
    pub pruned: u64,
    /// Swaps actually applied (the chosen prefix length, summed).
    pub applied: u64,
}

impl KlStats {
    pub fn merge(&mut self, other: KlStats) {
        self.passes += other.passes;
        self.rounds += other.rounds;
        self.candidates += other.candidates;
        self.pruned += other.pruned;
        self.applied += other.applied;
    }
}

/// Runs one Kernighan–Lin pass over function sets `a` and `b`.
///
/// `objective` scores candidate sets (see [`KlObjective`]); the pair is
/// scored by the worse side. On return, `a` and `b` hold the refined
/// partition; the achieved latency improvement is returned (0.0 when no
/// beneficial swap prefix exists).
pub fn kernighan_lin(
    a: &mut [FunctionId],
    b: &mut [FunctionId],
    objective: impl KlObjective,
) -> f64 {
    kernighan_lin_with_stats(a, b, objective, &mut KlStats::default())
}

/// [`kernighan_lin`], additionally accumulating search-effort counters
/// into `stats` (identical swaps, scores and side effects).
pub fn kernighan_lin_with_stats(
    a: &mut [FunctionId],
    b: &mut [FunctionId],
    mut objective: impl KlObjective,
    stats: &mut KlStats,
) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    stats.passes += 1;
    // Working copies that virtual swaps are applied to (line 19).
    let mut wa = a.to_vec();
    let mut wb = b.to_vec();
    // Positions still eligible: each element is swapped at most once.
    let mut free_a: Vec<usize> = (0..wa.len()).collect();
    let mut free_b: Vec<usize> = (0..wb.len()).collect();

    let initial = objective.eval(&wa).max(objective.eval(&wb));
    let mut current = initial;
    let mut gains: Vec<f64> = Vec::new();
    let mut swaps: Vec<(usize, usize)> = Vec::new();
    let prunes = objective.prunes();

    // Line 20: until one working set is exhausted.
    while !free_a.is_empty() && !free_b.is_empty() {
        stats.rounds += 1;
        // Line 21: the swap that minimises the predicted latency.
        let mut best: Option<(usize, usize, f64)> = None;
        for &ia in &free_a {
            for &ib in &free_b {
                stats.candidates += 1;
                std::mem::swap(&mut wa[ia], &mut wb[ib]);
                // Exact prunes (skipped candidates score INFINITY, which
                // never wins under strict `<`): a candidate is dead as soon
                // as either side — or even a side's cheap lower bound —
                // reaches the incumbent score, because the pair score is
                // the max of the sides and can only grow.
                let score = if !prunes {
                    objective.eval(&wa).max(objective.eval(&wb))
                } else {
                    match best {
                        Some((_, _, s)) if objective.lower_bound(&wa) >= s => f64::INFINITY,
                        _ => {
                            let score_a = objective.eval(&wa);
                            match best {
                                Some((_, _, s)) if score_a >= s => f64::INFINITY,
                                Some((_, _, s)) if objective.lower_bound(&wb) >= s => f64::INFINITY,
                                _ => score_a.max(objective.eval(&wb)),
                            }
                        }
                    }
                };
                if score.is_infinite() {
                    stats.pruned += 1;
                }
                std::mem::swap(&mut wa[ia], &mut wb[ib]);
                let better = match best {
                    Some((_, _, s)) => score < s,
                    None => true,
                };
                if better {
                    best = Some((ia, ib, score));
                }
            }
        }
        let (ia, ib, score) = best.expect("free sets are non-empty");
        // Lines 22–23: record the benefit, lock the pair out.
        std::mem::swap(&mut wa[ia], &mut wb[ib]);
        gains.push(current - score);
        current = score;
        swaps.push((ia, ib));
        free_a.retain(|&i| i != ia);
        free_b.retain(|&i| i != ib);
    }

    // Lines 24–25: choose k maximising the cumulative gain and apply the
    // first k swaps to the real sets.
    let mut best_k = 0;
    let mut best_sum = 0.0;
    let mut acc = 0.0;
    for (k, g) in gains.iter().enumerate() {
        acc += g;
        if acc > best_sum + 1e-12 {
            best_sum = acc;
            best_k = k + 1;
        }
    }
    // Each position appears in at most one swap, so application order does
    // not matter.
    for &(ia, ib) in swaps.iter().take(best_k) {
        std::mem::swap(&mut a[ia], &mut b[ib]);
    }
    stats.applied += best_k as u64;
    best_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(v: u32) -> FunctionId {
        FunctionId(v)
    }

    /// Objective: one set's total weight — the pair score (max of sides)
    /// is minimised by balanced partitions for CPU-bound functions.
    fn weight(weights: &[f64]) -> impl FnMut(&[FunctionId]) -> f64 + '_ {
        move |set| set.iter().map(|f| weights[f.index()]).sum()
    }

    fn pair_score(weights: &[f64], a: &[FunctionId], b: &[FunctionId]) -> f64 {
        let mut obj = weight(weights);
        obj(a).max(obj(b))
    }

    #[test]
    fn balances_heavy_and_light() {
        // A holds both heavy functions; KL should split them.
        let weights = [10.0, 10.0, 1.0, 1.0];
        let mut a = vec![fid(0), fid(1)];
        let mut b = vec![fid(2), fid(3)];
        let gain = kernighan_lin(&mut a, &mut b, weight(&weights));
        assert!(gain > 0.0);
        assert_eq!(pair_score(&weights, &a, &b), 11.0, "a={a:?} b={b:?}");
    }

    #[test]
    fn no_gain_on_homogeneous_sets() {
        let weights = [1.0; 6];
        let mut a = vec![fid(0), fid(1), fid(2)];
        let mut b = vec![fid(3), fid(4), fid(5)];
        let before = (a.clone(), b.clone());
        let gain = kernighan_lin(&mut a, &mut b, weight(&weights));
        assert_eq!(gain, 0.0);
        assert_eq!((a, b), before, "no swap should be applied");
    }

    #[test]
    fn empty_set_is_noop() {
        let mut a: Vec<FunctionId> = vec![];
        let mut b = vec![fid(0)];
        assert_eq!(kernighan_lin(&mut a, &mut b, |_: &[FunctionId]| 0.0), 0.0);
    }

    #[test]
    fn escapes_local_minimum_via_prefix_selection() {
        // Hill-climbing on single swaps gets stuck; KL's look-ahead with
        // cumulative-gain prefix can cross a neutral swap. Sets {9,1} vs
        // {5,5}: any single swap worsens or keeps max=10; the two-swap
        // sequence reaching {5,5} vs {9,1} is neutral overall — so KL must
        // simply not regress here.
        let weights = [9.0, 1.0, 5.0, 5.0];
        let mut a = vec![fid(0), fid(1)];
        let mut b = vec![fid(2), fid(3)];
        let before = pair_score(&weights, &a, &b);
        kernighan_lin(&mut a, &mut b, weight(&weights));
        let after = pair_score(&weights, &a, &b);
        assert!(after <= before);
    }

    #[test]
    fn multiset_preserved() {
        let weights = [3.0, 7.0, 2.0, 8.0, 5.0];
        let mut a = vec![fid(0), fid(1), fid(4)];
        let mut b = vec![fid(2), fid(3)];
        kernighan_lin(&mut a, &mut b, weight(&weights));
        let mut all: Vec<u32> = a.iter().chain(b.iter()).map(|f| f.0).collect();
        all.sort_unstable();
        assert_eq!(all, [0, 1, 2, 3, 4]);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
    }

    /// The pre-prune algorithm: every candidate pays both evaluations.
    fn kl_exhaustive(
        a: &mut [FunctionId],
        b: &mut [FunctionId],
        mut objective: impl FnMut(&[FunctionId]) -> f64,
    ) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let mut wa = a.to_vec();
        let mut wb = b.to_vec();
        let mut free_a: Vec<usize> = (0..wa.len()).collect();
        let mut free_b: Vec<usize> = (0..wb.len()).collect();
        let mut current = objective(&wa).max(objective(&wb));
        let mut gains: Vec<f64> = Vec::new();
        let mut swaps: Vec<(usize, usize)> = Vec::new();
        while !free_a.is_empty() && !free_b.is_empty() {
            let mut best: Option<(usize, usize, f64)> = None;
            for &ia in &free_a {
                for &ib in &free_b {
                    std::mem::swap(&mut wa[ia], &mut wb[ib]);
                    let score = objective(&wa).max(objective(&wb));
                    std::mem::swap(&mut wa[ia], &mut wb[ib]);
                    if best.is_none_or(|(_, _, s)| score < s) {
                        best = Some((ia, ib, score));
                    }
                }
            }
            let (ia, ib, score) = best.unwrap();
            std::mem::swap(&mut wa[ia], &mut wb[ib]);
            gains.push(current - score);
            current = score;
            swaps.push((ia, ib));
            free_a.retain(|&i| i != ia);
            free_b.retain(|&i| i != ib);
        }
        let (mut best_k, mut best_sum, mut acc) = (0, 0.0, 0.0);
        for (k, g) in gains.iter().enumerate() {
            acc += g;
            if acc > best_sum + 1e-12 {
                best_sum = acc;
                best_k = k + 1;
            }
        }
        for &(ia, ib) in swaps.iter().take(best_k) {
            std::mem::swap(&mut a[ia], &mut b[ib]);
        }
        best_sum
    }

    #[test]
    fn pruning_matches_exhaustive_evaluation() {
        // The second-side skip must not change the selected swap sequence
        // or the applied prefix, across a spread of weight vectors.
        let cases: [&[f64]; 4] = [
            &[12.0, 3.0, 7.0, 1.0, 9.0, 4.0],
            &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            &[10.0, 10.0, 0.5, 0.5, 5.0, 5.0],
            &[2.0, 11.0, 6.0, 6.0, 3.0, 8.0],
        ];
        for weights in cases {
            let mut a1 = vec![fid(0), fid(1), fid(2)];
            let mut b1 = vec![fid(3), fid(4), fid(5)];
            let mut a2 = a1.clone();
            let mut b2 = b1.clone();
            let g1 = kernighan_lin(&mut a1, &mut b1, weight(weights));
            let g2 = kl_exhaustive(&mut a2, &mut b2, weight(weights));
            assert_eq!(g1, g2, "{weights:?}");
            assert_eq!((a1, b1), (a2, b2), "{weights:?}");
        }
    }

    /// Objective whose lower bound is a scaled-down copy of the true score
    /// (always sound); counts how many full evaluations happened.
    struct BoundedWeight<'w> {
        weights: &'w [f64],
        tightness: f64,
        evals: &'w std::cell::Cell<usize>,
    }

    impl KlObjective for BoundedWeight<'_> {
        fn eval(&mut self, set: &[FunctionId]) -> f64 {
            self.evals.set(self.evals.get() + 1);
            set.iter().map(|f| self.weights[f.index()]).sum()
        }
        fn lower_bound(&mut self, set: &[FunctionId]) -> f64 {
            set.iter().map(|f| self.weights[f.index()]).sum::<f64>() * self.tightness
        }
    }

    #[test]
    fn lower_bound_prune_is_exact_and_saves_evaluations() {
        let cases: [&[f64]; 4] = [
            &[12.0, 3.0, 7.0, 1.0, 9.0, 4.0],
            &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            &[10.0, 10.0, 0.5, 0.5, 5.0, 5.0],
            &[2.0, 11.0, 6.0, 6.0, 3.0, 8.0],
        ];
        for weights in cases {
            let run = |tightness| {
                let mut a = vec![fid(0), fid(1), fid(2)];
                let mut b = vec![fid(3), fid(4), fid(5)];
                let evals = std::cell::Cell::new(0);
                let gain = kernighan_lin(
                    &mut a,
                    &mut b,
                    BoundedWeight {
                        weights,
                        tightness,
                        evals: &evals,
                    },
                );
                (gain, a, b, evals.get())
            };
            let mut a2 = vec![fid(0), fid(1), fid(2)];
            let mut b2 = vec![fid(3), fid(4), fid(5)];
            let g2 = kl_exhaustive(&mut a2, &mut b2, weight(weights));
            for tightness in [0.0, 0.5, 1.0] {
                let (g1, a1, b1, _) = run(tightness);
                assert_eq!(g1, g2, "{weights:?} tightness {tightness}");
                assert_eq!(
                    (a1, b1),
                    (a2.clone(), b2.clone()),
                    "{weights:?} tightness {tightness}"
                );
            }
            // A perfectly tight bound must never evaluate more than no
            // bound at all.
            assert!(run(1.0).3 <= run(0.0).3, "{weights:?}");
        }
    }
}
