//! # chiron-pgp
//!
//! PGP — the Prediction-based Graph-Partitioning scheduler of Chiron
//! (Algorithm 2, §3.4): Kernighan–Lin swapping of functions between
//! processes, incremental search of the process count, SLO-driven packing
//! of processes into as few wraps as possible, and greedy non-uniform CPU
//! minimisation. Also provides the Intel-MPK and process-pool scheduling
//! modes of §4.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod kl;
pub mod scheduler;

pub use chiron_lifecycle::PrewarmBudget;
pub use kl::{kernighan_lin, kernighan_lin_with_stats, KlObjective, KlStats};
pub use scheduler::{
    PgpAudit, PgpConfig, PgpMode, PgpScheduler, ScheduleOutcome, PARALLEL_WORK_THRESHOLD,
};
