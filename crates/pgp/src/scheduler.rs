//! PGP: the prediction-based graph-partitioning scheduler (Algorithm 2).
//!
//! PGP answers three questions for every workflow stage: how many processes
//! `n` to use, which functions share each process (threads), and how the
//! processes are packed into wraps/sandboxes — then allocates the minimum
//! CPUs that keep the predicted end-to-end latency within the SLO.
//!
//! The search is Algorithm 2's incremental-iterative structure:
//!
//! 1. for `n = 1..M` (max parallelism): round-robin the stage's functions
//!    into `n` processes (line 9), refine every pair of processes with
//!    Kernighan–Lin swapping guided by the Predictor (lines 10–11);
//! 2. the first `n` whose conservatively predicted latency meets the SLO
//!    wins (line 13); its processes are then packed into as few wraps as
//!    possible (lines 14–16) and CPUs are trimmed greedily, both while the
//!    prediction still meets the SLO;
//! 3. with no SLO (performance-first mode) PGP instead keeps the plan with
//!    the lowest predicted latency.
//!
//! §3.4's placement constraints are honoured: functions with conflicting
//! language runtimes or overlapping output files are pinned into singleton
//! wraps of their own.
//!
//! ## Performance
//!
//! Every prediction the search makes goes through a [`PgpEval`] evaluator.
//! The default ([`CachedEval`]) memoises per-process Algorithm 1 outcomes
//! in a content-addressed [`PredictionCache`] shared across KL rounds,
//! candidate swaps, every value of `n`, the wrap-packing sweep and the
//! CPU-trim loop — so each distinct process content is simulated exactly
//! once per schedule — and runs those simulations allocation-free against
//! a [`SegmentCatalog`]. The pre-optimisation path is preserved verbatim
//! as [`PgpScheduler::schedule_reference`]; both produce byte-identical
//! plans (enforced by the `identical_plans` property test).

use crate::kl::{kernighan_lin_with_stats, KlObjective, KlStats};
use chiron_lifecycle::{penalty_for_plan, LifecycleCosts, PrewarmBudget};
use chiron_model::plan::{
    DeploymentPlan, IsolationKind, ProcessPlan, ProcessSpawn, RuntimeKind, SandboxId, SandboxPlan,
    SchedulingKind, StagePlan, SystemKind, TransferKind, WrapPlan,
};
use chiron_model::{BillingModel, CostModel, FunctionId, SimDuration, Workflow};
use chiron_obs::StaticCounter;
use chiron_predict::{
    distinct_profile_classes, predict_threads, PredictScratch, PredictionCache, Predictor,
    SegmentCatalog, SimThread, StaggeredSet,
};
use chiron_profiler::WorkflowProfile;

// Process-wide mirrors of the per-schedule audit counters, registered in
// the chiron-obs metrics registry so `figures -- obs` reports aggregate
// scheduler effort alongside the cache and runtime counters.
static SCHEDULES: StaticCounter = StaticCounter::new("pgp.schedules");
static KL_ROUNDS: StaticCounter = StaticCounter::new("pgp.kl.rounds");
static KL_CANDIDATES: StaticCounter = StaticCounter::new("pgp.kl.candidates");
static KL_PRUNED: StaticCounter = StaticCounter::new("pgp.kl.pruned");
static KL_APPLIED: StaticCounter = StaticCounter::new("pgp.kl.applied");

/// Work-size threshold — *distinct* function behaviours
/// ([`chiron_predict::distinct_profile_classes`]) × candidate process
/// counts — below which [`PgpScheduler::schedule_parallel`] delegates to
/// the sequential memoised rule instead of fanning out worker threads:
/// small searches finish in microseconds per cell, so thread spawn/join —
/// and the parallel contract's full-range `n` sweep — cost more than they
/// save. Distinct behaviours, not raw function count, because the shared
/// prediction cache interns each behaviour once and serves every repeat
/// as a lookup: a 5-class 83-function workflow carries ~5 functions'
/// worth of work, and sizing the gate on 83 made the parallel search 5×
/// slower than memoised-sequential (BENCH_PGP `synthetic-32-c5`).
/// [`PgpScheduler::schedule_parallel_reference`] applies the same
/// threshold, so the parallel search stays byte-identical to its oracle
/// at every work size.
pub const PARALLEL_WORK_THRESHOLD: usize = 2000;

/// Which execution mechanism the generated wraps use (§4's variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PgpMode {
    /// Combined processes and native threads (plain Chiron).
    NativeThread,
    /// Threads isolated with Intel MPK for sequential functions; parallel
    /// functions always fork (§4's fair-comparison configuration). Block
    /// overhead is amortised by spreading processes over multiple wraps.
    Mpk,
    /// A pre-forked process pool in a single wrap (`n = 1` of the m-to-n
    /// model), with CPU sharing via affinity (§4 "True Parallelism").
    Pool,
}

/// PGP's inputs beyond the workflow itself.
#[derive(Debug, Clone, Copy)]
pub struct PgpConfig {
    /// Latency SLO. `None` = performance-first: minimise predicted latency
    /// and allocate CPUs for it.
    pub slo: Option<SimDuration>,
    pub mode: PgpMode,
    /// Inflation applied to the Predictor's overhead parameters when
    /// checking the SLO (§6.2). 1.0 disables it.
    pub conservative_margin: f64,
    /// Cap on the process-count search (the paper parallelises this search
    /// for large workflows; we bound it).
    pub max_process_search: usize,
    /// Tier-mix co-optimisation: with a prewarm budget, every candidate
    /// plan's objective gains the amortised startup exposure its resource
    /// footprint leaves uncovered under that budget
    /// ([`chiron_lifecycle::penalty_for_plan`]). Smaller-footprint plans
    /// buy more fast-start coverage from the same rent, so the search is
    /// biased toward plans that prewarm cheaply. `None` keeps the
    /// latency-only objective — and byte-identical legacy plans. SLO
    /// checks always use the raw predicted latency.
    pub prewarm: Option<PrewarmBudget>,
    /// Wrap-to-wrap transfer mechanism of every emitted plan.
    /// [`TransferKind::RpcPayload`] (the default) keeps legacy plans
    /// byte-identical; [`TransferKind::ShmRing`] lets co-located wrap
    /// pairs ride the zero-copy shared-memory ring while split pairs fall
    /// back to RPC — the evaluator prices both through the same first-fit
    /// node packing the platform uses, so the search sees the savings.
    pub transfer: TransferKind,
}

impl PgpConfig {
    pub fn with_slo(slo: SimDuration) -> Self {
        PgpConfig {
            slo: Some(slo),
            mode: PgpMode::NativeThread,
            conservative_margin: 1.25,
            max_process_search: 32,
            prewarm: None,
            transfer: TransferKind::RpcPayload,
        }
    }

    pub fn performance_first() -> Self {
        PgpConfig {
            slo: None,
            mode: PgpMode::NativeThread,
            conservative_margin: 1.0,
            max_process_search: 32,
            prewarm: None,
            transfer: TransferKind::RpcPayload,
        }
    }

    pub fn with_mode(mut self, mode: PgpMode) -> Self {
        self.mode = mode;
        self
    }

    pub fn with_prewarm(mut self, budget: PrewarmBudget) -> Self {
        self.prewarm = Some(budget);
        self
    }

    pub fn with_transfer(mut self, transfer: TransferKind) -> Self {
        self.transfer = transfer;
        self
    }
}

/// The plan-selection penalty of `config`'s prewarm budget for one
/// candidate plan: zero without a budget (so legacy searches compare raw
/// latencies, bit for bit), otherwise the amortised residual-startup
/// exposure of the tier mix the budget affords this plan's footprint.
fn prewarm_penalty(
    workflow: &Workflow,
    plan: &DeploymentPlan,
    costs: &CostModel,
    config: &PgpConfig,
) -> SimDuration {
    match &config.prewarm {
        Some(budget) => penalty_for_plan(
            plan,
            workflow,
            costs,
            &LifecycleCosts::paper_calibrated(),
            budget,
            BillingModel::paper_calibrated().usd_per_gb_second,
        ),
        None => SimDuration::ZERO,
    }
}

/// What PGP decided.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    pub plan: DeploymentPlan,
    /// Conservatively predicted end-to-end latency of `plan`.
    pub predicted: SimDuration,
    /// Amortised residual-startup penalty of `plan` under the configured
    /// prewarm budget — the tier-mix term the search's objective added on
    /// top of `predicted`. Zero when no budget was configured.
    pub startup_penalty: SimDuration,
    /// Whether the SLO (if any) is met by the prediction.
    pub met_slo: bool,
    /// The chosen process count `n` for parallel stages.
    pub processes: usize,
    /// How the search arrived at the decision (for `figures -- obs`).
    pub audit: PgpAudit,
}

/// The decision audit of one schedule: how much search Algorithm 2
/// performed and what came out, beyond the plan itself. Describes the
/// search actually run — the sequential and parallel paths may legally
/// differ here (different candidate ranges) even though their plans are
/// byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PgpAudit {
    /// Process counts `n` evaluated end-to-end (partition + pack + trim).
    pub candidates_examined: u64,
    /// Kernighan–Lin effort summed over every pass of the search.
    pub kl: KlStats,
    /// Prediction-cache hits attributable to this schedule.
    pub cache_hits: u64,
    /// Prediction-cache misses (fresh simulations) for this schedule.
    pub cache_misses: u64,
    /// Per-function execution mode in the final plan, indexed by
    /// `FunctionId` ("fork", "pool", "main", or "unplaced").
    pub function_modes: Vec<&'static str>,
}

/// One mode label per function, read off the final plan — the
/// per-function-mode component of the decision audit.
fn function_modes(workflow: &Workflow, plan: &DeploymentPlan) -> Vec<&'static str> {
    let mut modes = vec!["unplaced"; workflow.function_count()];
    for stage in &plan.stages {
        for wrap in &stage.wraps {
            for proc in &wrap.processes {
                let label = match proc.spawn {
                    ProcessSpawn::Fork => "fork",
                    ProcessSpawn::Pool => "pool",
                    ProcessSpawn::MainReuse => "main",
                };
                for &f in &proc.functions {
                    modes[f.index()] = label;
                }
            }
        }
    }
    modes
}

/// Folds a finished schedule's audit into the process-wide obs counters.
fn publish_audit(audit: &PgpAudit) {
    SCHEDULES.incr();
    KL_ROUNDS.add(audit.kl.rounds);
    KL_CANDIDATES.add(audit.kl.candidates);
    KL_PRUNED.add(audit.kl.pruned);
    KL_APPLIED.add(audit.kl.applied);
}

/// The two predictions the Algorithm 2 search needs: the makespan of one
/// candidate process (the KL objective) and the end-to-end latency of a
/// candidate plan (packing, trimming, selection). Routing both through one
/// trait lets the cached and reference implementations swap cleanly while
/// the search logic stays shared — and byte-identical.
trait PgpEval {
    /// Makespan (ms) of `set` run as one process of clone-staggered
    /// threads, unstretched — Algorithm 2's KL objective.
    fn set_makespan_ms(&mut self, set: &[FunctionId]) -> f64;
    /// A cheap lower bound on [`set_makespan_ms`](PgpEval::set_makespan_ms)
    /// (`NEG_INFINITY` when none is available). Lets the KL pass discard
    /// candidates without simulating them.
    fn set_makespan_lower_bound_ms(&mut self, set: &[FunctionId]) -> f64;
    /// Whether the KL pass may use its exact prunes. The reference
    /// evaluator says no, preserving the pre-optimisation cost model.
    fn kl_prunes(&self) -> bool;
    /// Conservative end-to-end latency of `plan`.
    fn plan_latency(&mut self, plan: &DeploymentPlan) -> SimDuration;
}

/// Adapts a [`PgpEval`] to the KL pass's objective interface.
struct SetObjective<'e>(&'e mut dyn PgpEval);

impl KlObjective for SetObjective<'_> {
    fn eval(&mut self, set: &[FunctionId]) -> f64 {
        self.0.set_makespan_ms(set)
    }
    fn lower_bound(&mut self, set: &[FunctionId]) -> f64 {
        self.0.set_makespan_lower_bound_ms(set)
    }
    fn prunes(&self) -> bool {
        self.0.kl_prunes()
    }
}

/// Memoised, allocation-free evaluator (the default).
struct CachedEval<'a> {
    predictor: &'a Predictor,
    check: &'a Predictor,
    workflow: &'a Workflow,
    catalog: &'a SegmentCatalog,
    cache: &'a PredictionCache,
    scratch: PredictScratch,
}

impl PgpEval for CachedEval<'_> {
    fn set_makespan_ms(&mut self, set: &[FunctionId]) -> f64 {
        let interval = self.predictor.costs.gil_switch_interval;
        let src = StaggeredSet {
            set,
            catalog: self.catalog,
            spacing: self.predictor.costs.thread_clone,
            base: SimDuration::ZERO,
        };
        self.cache
            .get_or_simulate(src.key(interval), &src, interval, &mut self.scratch.arena)
            .makespan
            .as_millis_f64()
    }

    fn set_makespan_lower_bound_ms(&mut self, set: &[FunctionId]) -> f64 {
        StaggeredSet {
            set,
            catalog: self.catalog,
            spacing: self.predictor.costs.thread_clone,
            base: SimDuration::ZERO,
        }
        .makespan_lower_bound()
        .as_millis_f64()
    }

    fn kl_prunes(&self) -> bool {
        true
    }

    fn plan_latency(&mut self, plan: &DeploymentPlan) -> SimDuration {
        self.check.predict_cached(
            self.workflow,
            plan,
            self.catalog,
            self.cache,
            &mut self.scratch,
        )
    }
}

/// The pre-optimisation evaluator: owned `Vec<SimThread>` per objective
/// call, no memoisation. Kept as the oracle for the identical-output
/// guarantee and the before/after benchmarks.
struct ReferenceEval<'a> {
    predictor: &'a Predictor,
    check: &'a Predictor,
    workflow: &'a Workflow,
    profile: &'a WorkflowProfile,
}

impl PgpEval for ReferenceEval<'_> {
    fn set_makespan_ms(&mut self, set: &[FunctionId]) -> f64 {
        let clone_cost = self.predictor.costs.thread_clone;
        let threads: Vec<SimThread> = set
            .iter()
            .enumerate()
            .map(|(ti, &fid)| SimThread {
                created_at: clone_cost * ti as u64,
                segments: self.profile.function(fid).segments(),
            })
            .collect();
        predict_threads(&threads, self.predictor.costs.gil_switch_interval)
            .makespan
            .as_millis_f64()
    }

    fn set_makespan_lower_bound_ms(&mut self, _set: &[FunctionId]) -> f64 {
        f64::NEG_INFINITY
    }

    // The pre-optimisation pass evaluated both sides of every candidate
    // swap; disabling the prunes reproduces that cost model exactly.
    fn kl_prunes(&self) -> bool {
        false
    }

    fn plan_latency(&mut self, plan: &DeploymentPlan) -> SimDuration {
        self.check.predict(self.workflow, self.profile, plan)
    }
}

/// The PGP scheduler.
#[derive(Debug, Clone)]
pub struct PgpScheduler {
    predictor: Predictor,
}

impl PgpScheduler {
    pub fn new(predictor: Predictor) -> Self {
        PgpScheduler { predictor }
    }

    pub fn paper_calibrated() -> Self {
        PgpScheduler::new(Predictor::paper_calibrated())
    }

    /// Runs Algorithm 2 and returns the chosen deployment plan.
    pub fn schedule(
        &self,
        workflow: &Workflow,
        profile: &WorkflowProfile,
        config: &PgpConfig,
    ) -> ScheduleOutcome {
        self.schedule_with_cache(workflow, profile, config, &PredictionCache::new())
    }

    /// [`PgpScheduler::schedule`] against a caller-owned prediction cache.
    /// Keys are content-addressed, so one cache can outlive many schedules
    /// (e.g. re-scheduling variants of a workflow, or online re-runs on
    /// autoscale events) and keeps getting warmer.
    pub fn schedule_with_cache(
        &self,
        workflow: &Workflow,
        profile: &WorkflowProfile,
        config: &PgpConfig,
        cache: &PredictionCache,
    ) -> ScheduleOutcome {
        let check = self.predictor.conservative(config.conservative_margin);
        let catalog = SegmentCatalog::new(profile);
        let mut eval = CachedEval {
            predictor: &self.predictor,
            check: &check,
            workflow,
            catalog: &catalog,
            cache,
            scratch: PredictScratch::new(),
        };
        let before = cache.stats();
        let mut outcome = self.dispatch(workflow, config, &mut eval);
        let after = cache.stats();
        outcome.audit.cache_hits = after.hits - before.hits;
        outcome.audit.cache_misses = after.misses - before.misses;
        outcome.audit.function_modes = function_modes(workflow, &outcome.plan);
        publish_audit(&outcome.audit);
        outcome
    }

    /// The scheduler exactly as it was before memoisation: per-call owned
    /// allocations, every candidate re-simulated. Oracle for the
    /// byte-identical-plans property test and the before/after benches.
    pub fn schedule_reference(
        &self,
        workflow: &Workflow,
        profile: &WorkflowProfile,
        config: &PgpConfig,
    ) -> ScheduleOutcome {
        let check = self.predictor.conservative(config.conservative_margin);
        let mut eval = ReferenceEval {
            predictor: &self.predictor,
            check: &check,
            workflow,
            profile,
        };
        // The reference path audits its own (prune-free, uncached) search;
        // cache deltas stay zero and nothing is published to obs.
        let mut outcome = self.dispatch(workflow, config, &mut eval);
        outcome.audit.function_modes = function_modes(workflow, &outcome.plan);
        outcome
    }

    fn dispatch(
        &self,
        workflow: &Workflow,
        config: &PgpConfig,
        eval: &mut dyn PgpEval,
    ) -> ScheduleOutcome {
        match config.mode {
            PgpMode::Pool => self.schedule_pool(workflow, config, eval),
            PgpMode::Mpk => self.schedule_mpk(workflow, config, eval),
            PgpMode::NativeThread => self.schedule_native(workflow, config, eval),
        }
    }

    // ---------------------------------------------------------------------
    // Native-thread mode: the full Algorithm 2.
    // ---------------------------------------------------------------------
    fn schedule_native(
        &self,
        workflow: &Workflow,
        config: &PgpConfig,
        eval: &mut dyn PgpEval,
    ) -> ScheduleOutcome {
        let max_n = workflow
            .max_parallelism()
            .min(config.max_process_search)
            .max(1);
        // `best` carries (plan, raw predicted latency, objective, n); the
        // objective adds the prewarm-budget startup penalty (zero without
        // one, so legacy searches are untouched).
        let mut best: Option<(DeploymentPlan, SimDuration, SimDuration, usize)> = None;
        let mut stale_rounds = 0usize;
        let mut audit = PgpAudit::default();

        for n in 1..=max_n {
            audit.candidates_examined += 1;
            // Lines 6–11: initial partition + KL refinement per stage.
            let partitions = self.partition_stages(workflow, n, eval, &mut audit.kl);
            // Lines 13–16 (and CPU minimisation): pack and trim under the
            // SLO, or latency-optimally without one.
            let plan =
                self.pack_and_allocate(workflow, &partitions, config, IsolationKind::None, eval);
            let predicted = eval.plan_latency(&plan);
            let objective =
                predicted + prewarm_penalty(workflow, &plan, &self.predictor.costs, config);
            let improved = best
                .as_ref()
                .map(|(_, _, o, _)| objective < *o)
                .unwrap_or(true);
            if improved {
                best = Some((plan, predicted, objective, n));
                stale_rounds = 0;
            } else {
                stale_rounds += 1;
            }
            if let Some(slo) = config.slo {
                if predicted <= slo {
                    let (plan, predicted, objective, n) = best.expect("just inserted");
                    return ScheduleOutcome {
                        plan,
                        predicted,
                        startup_penalty: objective - predicted,
                        met_slo: true,
                        processes: n,
                        audit,
                    };
                }
            } else if stale_rounds >= 3 {
                break; // latency stopped improving; stop widening.
            }
        }
        let (plan, predicted, objective, n) = best.expect("n = 1 always evaluated");
        let met_slo = config.slo.map(|slo| predicted <= slo).unwrap_or(true);
        ScheduleOutcome {
            plan,
            predicted,
            startup_penalty: objective - predicted,
            met_slo,
            processes: n,
            audit,
        }
    }

    /// Lines 6–11 of Algorithm 2 for every stage: round-robin into `n`
    /// sets, then KL-refine every pair of sets.
    fn partition_stages(
        &self,
        workflow: &Workflow,
        n: usize,
        eval: &mut dyn PgpEval,
        stats: &mut KlStats,
    ) -> Vec<Vec<Vec<FunctionId>>> {
        workflow
            .stages
            .iter()
            .map(|stage| partition_one_stage(&stage.functions, n, eval, stats))
            .collect()
    }

    /// Packs each stage's processes into wraps and allocates CPUs
    /// (lines 13–16 plus the resource-efficiency objective).
    fn pack_and_allocate(
        &self,
        workflow: &Workflow,
        partitions: &[Vec<Vec<FunctionId>>],
        config: &PgpConfig,
        isolation: IsolationKind,
        eval: &mut dyn PgpEval,
    ) -> DeploymentPlan {
        // Start from the most co-located plan (1 wrap per stage) and widen
        // the busiest stage until the SLO is met or wraps are singletons.
        // Wrap-count comparisons use the prewarm-penalised objective (more
        // wraps = more sandboxes = costlier tier coverage); the SLO gate
        // stays on the raw latency.
        let max_procs = partitions.iter().map(Vec::len).max().unwrap_or(1);
        let mut chosen: Option<DeploymentPlan> = None;
        let mut best_obj = SimDuration::from_nanos(u64::MAX);
        for wraps in 1..=max_procs {
            let plan = self.build_plan(workflow, partitions, wraps, isolation, 0, config.transfer);
            let lat = eval.plan_latency(&plan);
            let obj = lat + prewarm_penalty(workflow, &plan, &self.predictor.costs, config);
            match config.slo {
                Some(slo) => {
                    if lat <= slo {
                        chosen = Some(plan);
                        break; // fewest wraps meeting the SLO
                    }
                    // Keep the best-effort fallback.
                    if obj < best_obj {
                        best_obj = obj;
                        chosen = Some(plan);
                    }
                }
                None => {
                    if obj < best_obj {
                        best_obj = obj;
                        chosen = Some(plan);
                    }
                }
            }
        }
        let mut plan = chosen.expect("at least one packing evaluated");
        self.trim_cpus(&mut plan, config, eval);
        plan
    }

    /// Parallelised Algorithm 2 (§5: the Scheduler "can use multiple
    /// processes to explore wrap partition under various number of
    /// processes in parallel to improve scheduling efficiency"). Work is
    /// fanned out at `(n, stage)` granularity for the KL partitioning phase
    /// and at `n` granularity for packing/trimming, over `workers` scoped
    /// threads sharing one [`PredictionCache`]: a process content first
    /// simulated by any worker is a lock-protected lookup for every other.
    /// The selection rule of [`PgpScheduler::schedule`] is then applied to
    /// the gathered results. Unlike the sequential search it evaluates the
    /// full candidate range (no stale-round early stop), so in
    /// latency-first mode it returns an equal-or-better plan.
    ///
    /// Only the native-thread mode has an `n` search to parallelise; the
    /// MPK/pool modes fall back to the sequential path, as do workflows
    /// whose search space is below [`PARALLEL_WORK_THRESHOLD`] — there the
    /// fan-out (and the full-range contract itself) costs more than it
    /// saves, so small workflows take the sequential memoised rule.
    pub fn schedule_parallel(
        &self,
        workflow: &Workflow,
        profile: &WorkflowProfile,
        config: &PgpConfig,
        workers: usize,
    ) -> ScheduleOutcome {
        self.schedule_parallel_with_cache(
            workflow,
            profile,
            config,
            workers,
            &PredictionCache::new(),
        )
    }

    /// [`PgpScheduler::schedule_parallel`] against a caller-owned cache.
    pub fn schedule_parallel_with_cache(
        &self,
        workflow: &Workflow,
        profile: &WorkflowProfile,
        config: &PgpConfig,
        workers: usize,
        cache: &PredictionCache,
    ) -> ScheduleOutcome {
        if config.mode != PgpMode::NativeThread || workers <= 1 {
            return self.schedule_with_cache(workflow, profile, config, cache);
        }
        let max_n = workflow
            .max_parallelism()
            .min(config.max_process_search)
            .max(1);
        let stage_count = workflow.stages.len();

        // Small searches lose more to thread spawning than they gain from
        // extra cores (BENCH_PGP showed a 32-function search 3× slower
        // parallel than memoised-sequential), and covering the full `n`
        // range sequentially still costs ~3× the early-stopped search.
        // Work is sized on distinct behaviours — the population the
        // shared cache actually evaluates — so function families that
        // repeat a few profiles don't fan out threads over cache hits.
        // Below the threshold the whole parallel contract is a bad trade:
        // delegate to the sequential memoised rule, exactly as a
        // single-worker call does. The reference oracle applies the same
        // threshold, so the byte-identity guarantee is unchanged.
        if distinct_profile_classes(profile) * max_n < PARALLEL_WORK_THRESHOLD {
            return self.schedule_with_cache(workflow, profile, config, cache);
        }
        let check = self.predictor.conservative(config.conservative_margin);
        let catalog = SegmentCatalog::new(profile);

        // Phase 1: KL partitioning, fanned out over (n, stage) pairs —
        // stages are independent given n, so large workflows parallelise
        // even when max_n is small. Static striping keeps the work
        // deterministic; cached outcomes are pure, so sharing the cache
        // across workers cannot change any result.
        let items: Vec<(usize, usize)> = (1..=max_n)
            .flat_map(|n| (0..stage_count).map(move |s| (n, s)))
            .collect();
        let p1_workers = workers.min(items.len()).max(1);
        // An `(n, stage)` cell's KL partition, as computed by a worker.
        type StagePartition = ((usize, usize), Vec<Vec<FunctionId>>);
        let mut audit = PgpAudit {
            candidates_examined: max_n as u64,
            ..PgpAudit::default()
        };
        let before = cache.stats();
        let partition_results: Vec<StagePartition> = std::thread::scope(|scope| {
            let check = &check;
            let catalog = &catalog;
            let items = &items;
            let handles: Vec<_> = (0..p1_workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut eval = CachedEval {
                            predictor: &self.predictor,
                            check,
                            workflow,
                            catalog,
                            cache,
                            scratch: PredictScratch::new(),
                        };
                        // KL effort accumulates locally; the per-worker sums
                        // are added after the join. Plain u64 additions
                        // commute, so the audit totals are independent of
                        // worker count and interleaving.
                        let mut stats = KlStats::default();
                        let mut out = Vec::new();
                        for idx in (w..items.len()).step_by(p1_workers) {
                            let (n, s) = items[idx];
                            let sets = partition_one_stage(
                                &workflow.stages[s].functions,
                                n,
                                &mut eval,
                                &mut stats,
                            );
                            out.push(((n, s), sets));
                        }
                        (out, stats)
                    })
                })
                .collect();
            let mut merged = Vec::new();
            for handle in handles {
                let (out, stats) = handle.join().expect("pgp partition worker panicked");
                audit.kl.merge(stats);
                merged.extend(out);
            }
            merged
        });
        let mut all_partitions: Vec<Vec<Vec<Vec<FunctionId>>>> =
            vec![vec![Vec::new(); stage_count]; max_n];
        for ((n, s), sets) in partition_results {
            all_partitions[n - 1][s] = sets;
        }

        // Phase 2: pack + trim + predict per n, over the same shared cache
        // (now warm with every KL set, which the wrap evaluator re-keys).
        let ns: Vec<usize> = (1..=max_n).collect();
        let p2_workers = workers.min(ns.len()).max(1);
        type Candidate = (usize, DeploymentPlan, SimDuration, SimDuration);
        let mut results: Vec<Candidate> = std::thread::scope(|scope| {
            let check = &check;
            let catalog = &catalog;
            let ns = &ns;
            let all_partitions = &all_partitions;
            let handles: Vec<_> = (0..p2_workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut eval = CachedEval {
                            predictor: &self.predictor,
                            check,
                            workflow,
                            catalog,
                            cache,
                            scratch: PredictScratch::new(),
                        };
                        let mut out = Vec::new();
                        for idx in (w..ns.len()).step_by(p2_workers) {
                            let n = ns[idx];
                            let plan = self.pack_and_allocate(
                                workflow,
                                &all_partitions[n - 1],
                                config,
                                IsolationKind::None,
                                &mut eval,
                            );
                            let predicted = eval.plan_latency(&plan);
                            let objective = predicted
                                + prewarm_penalty(workflow, &plan, &self.predictor.costs, config);
                            out.push((n, plan, predicted, objective));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pgp worker panicked"))
                .collect()
        });
        results.sort_by_key(|(n, _, _, _)| *n);
        let after = cache.stats();
        audit.cache_hits = after.hits - before.hits;
        audit.cache_misses = after.misses - before.misses;
        let mut outcome = select_candidate(results, config, audit);
        outcome.audit.function_modes = function_modes(workflow, &outcome.plan);
        publish_audit(&outcome.audit);
        outcome
    }

    /// Single-threaded oracle for [`PgpScheduler::schedule_parallel`]: the
    /// pre-optimisation evaluator over the full candidate range with the
    /// parallel path's selection rule. The parallel search must reproduce
    /// this byte-for-byte regardless of worker count or interleaving.
    /// Mirrors the [`PARALLEL_WORK_THRESHOLD`] delegation: below it both
    /// paths take their sequential rule, whose plans are already
    /// byte-identical to each other.
    pub fn schedule_parallel_reference(
        &self,
        workflow: &Workflow,
        profile: &WorkflowProfile,
        config: &PgpConfig,
    ) -> ScheduleOutcome {
        if config.mode != PgpMode::NativeThread {
            return self.schedule_reference(workflow, profile, config);
        }
        let max_n = workflow
            .max_parallelism()
            .min(config.max_process_search)
            .max(1);
        if distinct_profile_classes(profile) * max_n < PARALLEL_WORK_THRESHOLD {
            return self.schedule_reference(workflow, profile, config);
        }
        let check = self.predictor.conservative(config.conservative_margin);
        let mut eval = ReferenceEval {
            predictor: &self.predictor,
            check: &check,
            workflow,
            profile,
        };
        let mut audit = PgpAudit {
            candidates_examined: max_n as u64,
            ..PgpAudit::default()
        };
        let mut results = Vec::with_capacity(max_n);
        for n in 1..=max_n {
            let partitions = self.partition_stages(workflow, n, &mut eval, &mut audit.kl);
            let plan = self.pack_and_allocate(
                workflow,
                &partitions,
                config,
                IsolationKind::None,
                &mut eval,
            );
            let predicted = eval.plan_latency(&plan);
            let objective =
                predicted + prewarm_penalty(workflow, &plan, &self.predictor.costs, config);
            results.push((n, plan, predicted, objective));
        }
        let mut outcome = select_candidate(results, config, audit);
        outcome.audit.function_modes = function_modes(workflow, &outcome.plan);
        outcome
    }

    /// Public access to the plan materialiser, used by the evaluation
    /// harness to enumerate candidate wrap designs (Fig. 12 explores "all
    /// possible wraps").
    pub fn materialize(
        &self,
        workflow: &Workflow,
        partitions: &[Vec<Vec<FunctionId>>],
        wrap_count: usize,
        isolation: IsolationKind,
        pool_size: u32,
    ) -> DeploymentPlan {
        // Plan enumeration keeps the legacy RPC-payload tier so Fig. 12's
        // candidate space (and its digests) are unchanged.
        self.build_plan(
            workflow,
            partitions,
            wrap_count,
            isolation,
            pool_size,
            TransferKind::RpcPayload,
        )
    }

    /// Round-robin stage partitions into `n` processes followed by KL
    /// refinement (Algorithm 2 lines 6–11), exposed for plan enumeration.
    pub fn partitions(
        &self,
        workflow: &Workflow,
        profile: &WorkflowProfile,
        n: usize,
    ) -> Vec<Vec<Vec<FunctionId>>> {
        let mut eval = ReferenceEval {
            predictor: &self.predictor,
            check: &self.predictor,
            workflow,
            profile,
        };
        self.partition_stages(workflow, n, &mut eval, &mut KlStats::default())
    }

    /// Materialises a plan: `wrap_count` wraps per parallel stage,
    /// processes distributed round-robin, conflicting functions pinned to
    /// singleton wraps, CPU allocations initialised to each sandbox's peak
    /// process count.
    fn build_plan(
        &self,
        workflow: &Workflow,
        partitions: &[Vec<Vec<FunctionId>>],
        wrap_count: usize,
        isolation: IsolationKind,
        pool_size: u32,
        transfer: TransferKind,
    ) -> DeploymentPlan {
        let pooled = pool_size > 0;
        let mut stages = Vec::with_capacity(partitions.len());
        let mut max_sandbox = 0u32;
        // Pinned (conflicting) functions get sandboxes disjoint from every
        // possible normal wrap id, across all stages: a conflicting runtime
        // image can never share a sandbox with anything else.
        let mut next_pinned = partitions.iter().map(Vec::len).max().unwrap_or(1) as u32;
        for sets in partitions {
            // §3.4: pin conflicting functions into singleton wraps.
            let mut pinned: Vec<FunctionId> = Vec::new();
            let mut normal: Vec<Vec<FunctionId>> = Vec::new();
            for set in sets {
                let mut keep = Vec::new();
                for &f in set {
                    let conflicts = sets
                        .iter()
                        .flatten()
                        .any(|&g| g != f && conflicting(workflow, f, g));
                    if conflicts {
                        pinned.push(f);
                    } else {
                        keep.push(f);
                    }
                }
                if !keep.is_empty() {
                    normal.push(keep);
                }
            }

            let w = wrap_count.min(normal.len()).max(1);
            let mut wraps: Vec<WrapPlan> = (0..w)
                .map(|k| WrapPlan {
                    sandbox: SandboxId(k as u32),
                    processes: Vec::new(),
                })
                .collect();
            for (i, set) in normal.into_iter().enumerate() {
                let spawn = if pooled {
                    ProcessPlan::pooled(set)
                } else {
                    ProcessPlan::forked(set)
                };
                wraps[i % w].processes.push(spawn);
            }
            wraps.retain(|wrap| !wrap.processes.is_empty());
            // Single-process wraps run on their orchestrator's threads
            // (Fig. 9's `Thread(f1, req)` wrap form) unless pooled.
            for wrap in &mut wraps {
                if !pooled && wrap.processes.len() == 1 {
                    wrap.processes[0] =
                        ProcessPlan::main_reuse(std::mem::take(&mut wrap.processes[0].functions));
                }
            }
            // Pinned singleton wraps go to dedicated sandboxes.
            for f in pinned {
                wraps.push(WrapPlan {
                    sandbox: SandboxId(next_pinned),
                    processes: vec![ProcessPlan::main_reuse(vec![f])],
                });
                next_pinned += 1;
            }
            assert!(!wraps.is_empty(), "a stage always yields at least one wrap");
            for wrap in &wraps {
                max_sandbox = max_sandbox.max(wrap.sandbox.0);
            }
            stages.push(StagePlan { wraps });
        }

        // Initial CPU allocation: each sandbox's peak concurrent process
        // count (one GIL-bound CPU per process). Only sandboxes actually
        // referenced by some wrap are materialised.
        let mut cpus = vec![0u32; max_sandbox as usize + 1];
        for stage in &stages {
            for wrap in &stage.wraps {
                let demand = wrap.processes.len().max(1) as u32;
                let slot = &mut cpus[wrap.sandbox.index()];
                *slot = (*slot).max(demand);
            }
        }
        let sandboxes: Vec<SandboxPlan> = cpus
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| SandboxPlan {
                id: SandboxId(i as u32),
                cpus: c,
                pool_size: if i == 0 { pool_size } else { 0 },
            })
            .collect();

        DeploymentPlan {
            system: SystemKind::Chiron,
            workflow: workflow.name.clone(),
            runtime: RuntimeKind::PseudoParallel,
            isolation,
            transfer,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes,
            stages,
        }
    }

    /// Greedily removes CPUs (non-uniform allocation, Observation 4) while
    /// the conservative prediction still meets the SLO. Without an SLO the
    /// trim keeps the latency-optimal allocation (removing a CPU must not
    /// increase the prediction). The sandbox contents never change here, so
    /// with the cached evaluator each candidate decrement is a lookup — and
    /// the prewarm penalty, a function of the memory footprint and sandbox
    /// count only, is invariant under CPU trims and cancels out of the
    /// comparison.
    fn trim_cpus(&self, plan: &mut DeploymentPlan, config: &PgpConfig, eval: &mut dyn PgpEval) {
        let limit = config.slo.unwrap_or_else(|| eval.plan_latency(plan));
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..plan.sandboxes.len() {
                while plan.sandboxes[i].cpus > 1 {
                    plan.sandboxes[i].cpus -= 1;
                    if eval.plan_latency(plan) <= limit {
                        changed = true;
                    } else {
                        plan.sandboxes[i].cpus += 1;
                        break;
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------------------
    // MPK mode (§4): sequential stages as MPK threads, parallel stages as
    // forked single-function processes, block overhead amortised across
    // wraps.
    // ---------------------------------------------------------------------
    fn schedule_mpk(
        &self,
        workflow: &Workflow,
        config: &PgpConfig,
        eval: &mut dyn PgpEval,
    ) -> ScheduleOutcome {
        // Every parallel function its own process: n = stage parallelism.
        let partitions: Vec<Vec<Vec<FunctionId>>> = workflow
            .stages
            .iter()
            .map(|s| s.functions.iter().map(|&f| vec![f]).collect())
            .collect();
        let plan = self.pack_and_allocate(workflow, &partitions, config, IsolationKind::Mpk, eval);
        let mut plan = plan;
        plan.system = SystemKind::ChironM;
        let predicted = eval.plan_latency(&plan);
        let startup_penalty = prewarm_penalty(workflow, &plan, &self.predictor.costs, config);
        let met_slo = config.slo.map(|slo| predicted <= slo).unwrap_or(true);
        let processes = workflow.max_parallelism();
        ScheduleOutcome {
            plan,
            predicted,
            startup_penalty,
            met_slo,
            processes,
            // MPK mode has no n-search and no KL passes: the single fixed
            // partition is the only candidate.
            audit: PgpAudit {
                candidates_examined: 1,
                ..PgpAudit::default()
            },
        }
    }

    // ---------------------------------------------------------------------
    // Pool mode (§4): one wrap, pre-forked workers, shared CPUs.
    // ---------------------------------------------------------------------
    fn schedule_pool(
        &self,
        workflow: &Workflow,
        config: &PgpConfig,
        eval: &mut dyn PgpEval,
    ) -> ScheduleOutcome {
        let partitions: Vec<Vec<Vec<FunctionId>>> = workflow
            .stages
            .iter()
            .map(|s| s.functions.iter().map(|&f| vec![f]).collect())
            .collect();
        let pool_size = workflow.max_parallelism() as u32;
        let mut plan = self.build_plan(
            workflow,
            &partitions,
            usize::MAX,
            IsolationKind::None,
            pool_size,
            config.transfer,
        );
        // A pool is a single wrap: force everything into sandbox 0.
        for stage in &mut plan.stages {
            let processes: Vec<ProcessPlan> =
                stage.wraps.drain(..).flat_map(|w| w.processes).collect();
            stage.wraps = vec![WrapPlan {
                sandbox: SandboxId(0),
                processes,
            }];
        }
        plan.sandboxes = vec![SandboxPlan {
            id: SandboxId(0),
            cpus: workflow.max_parallelism() as u32,
            pool_size,
        }];
        plan.system = SystemKind::ChironP;
        self.trim_cpus(&mut plan, config, eval);
        let predicted = eval.plan_latency(&plan);
        let startup_penalty = prewarm_penalty(workflow, &plan, &self.predictor.costs, config);
        let met_slo = config.slo.map(|slo| predicted <= slo).unwrap_or(true);
        ScheduleOutcome {
            plan,
            predicted,
            startup_penalty,
            met_slo,
            processes: pool_size as usize,
            audit: PgpAudit {
                candidates_examined: 1,
                ..PgpAudit::default()
            },
        }
    }
}

/// Line 9 + lines 10–11 of Algorithm 2 for one stage: round-robin into `n`
/// sets ({f1, f_{n+1}, ...}, {f2, ...}, ..., {f_n, ...}), then KL over
/// every pair; objective = the slower of the two candidate processes. §7
/// identifies KL as PGP's complexity bottleneck; we bound each pass to
/// pairs whose swap space is tractable (large same-stage sets are nearly
/// homogeneous round-robin splits, where KL's gain vanishes).
fn partition_one_stage(
    fns: &[FunctionId],
    n: usize,
    eval: &mut dyn PgpEval,
    stats: &mut KlStats,
) -> Vec<Vec<FunctionId>> {
    let n_eff = n.min(fns.len()).max(1);
    let mut sets: Vec<Vec<FunctionId>> = vec![Vec::new(); n_eff];
    for (i, &f) in fns.iter().enumerate() {
        sets[i % n_eff].push(f);
    }
    const MAX_SWAP_SPACE: usize = 256;
    for i in 0..n_eff {
        for j in (i + 1)..n_eff {
            let (left, right) = sets.split_at_mut(j);
            if left[i].len() * right[0].len() > MAX_SWAP_SPACE {
                continue;
            }
            let mut a = std::mem::take(&mut left[i]);
            let mut b = std::mem::take(&mut right[0]);
            kernighan_lin_with_stats(&mut a, &mut b, SetObjective(&mut *eval), stats);
            left[i] = a;
            right[0] = b;
        }
    }
    sets
}

/// The sequential selection rule applied to a full, `n`-ordered candidate
/// list of `(n, plan, predicted, objective)` tuples (shared by the
/// parallel search and its reference oracle): with an SLO, the best plan
/// seen up to and including the first SLO-satisfying `n`; without one,
/// the global objective minimum (first `n` wins ties). The objective is
/// the predicted latency plus the prewarm-budget startup penalty —
/// identical to the latency when no budget is configured — while the SLO
/// gate always reads the raw latency.
fn select_candidate(
    results: Vec<(usize, DeploymentPlan, SimDuration, SimDuration)>,
    config: &PgpConfig,
    audit: PgpAudit,
) -> ScheduleOutcome {
    let mut best: Option<(DeploymentPlan, SimDuration, SimDuration, usize)> = None;
    let mut met = false;
    for (n, plan, predicted, objective) in results {
        if let Some(slo) = config.slo {
            if predicted <= slo {
                let better = best
                    .as_ref()
                    .map(|(_, _, o, _)| objective < *o)
                    .unwrap_or(true);
                if better {
                    best = Some((plan, predicted, objective, n));
                }
                met = true;
                break; // first SLO-satisfying n ends the scan
            }
        }
        let better = best
            .as_ref()
            .map(|(_, _, o, _)| objective < *o)
            .unwrap_or(true);
        if better {
            best = Some((plan, predicted, objective, n));
        }
    }
    let (plan, predicted, objective, n) = best.expect("n = 1 always evaluated");
    let met_slo = config.slo.map(|_| met).unwrap_or(true);
    ScheduleOutcome {
        plan,
        predicted,
        startup_penalty: objective - predicted,
        met_slo,
        processes: n,
        audit,
    }
}

/// §3.4's sharing constraints: conflicting language runtimes or overlapping
/// written files forbid sandbox sharing.
fn conflicting(workflow: &Workflow, a: FunctionId, b: FunctionId) -> bool {
    let fa = workflow.function(a);
    let fb = workflow.function(b);
    !fa.runtime.compatible(fb.runtime) || fa.file_conflict(fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::synthetic::{synthetic, SyntheticSpec};
    use chiron_model::{apps, FunctionSpec, LanguageRuntime, Segment};
    use chiron_profiler::Profiler;

    fn profile(wf: &Workflow) -> WorkflowProfile {
        Profiler::default().profile_workflow(wf)
    }

    #[test]
    fn finra5_prefers_threads() {
        // Sub-millisecond-heavy FINRA-5 is best served by thread execution
        // (Observation 3): PGP should choose few processes.
        let wf = apps::finra(5);
        let out = PgpScheduler::paper_calibrated().schedule(
            &wf,
            &profile(&wf),
            &PgpConfig::performance_first(),
        );
        assert!(out.processes <= 2, "chose {} processes", out.processes);
        assert!(out.met_slo);
        let stage_sets: Vec<Vec<FunctionId>> =
            wf.stages.iter().map(|s| s.functions.clone()).collect();
        out.plan.validate(&stage_sets).unwrap();
    }

    #[test]
    fn slapp_prefers_processes() {
        // 36ms CPU-heavy functions serialised by the GIL: PGP must split
        // them across processes.
        let wf = apps::slapp();
        let out = PgpScheduler::paper_calibrated().schedule(
            &wf,
            &profile(&wf),
            &PgpConfig::performance_first(),
        );
        assert!(out.processes >= 2, "chose {} processes", out.processes);
    }

    #[test]
    fn slo_mode_meets_slo_with_fewer_cpus() {
        let wf = apps::finra(50);
        let prof = profile(&wf);
        let sched = PgpScheduler::paper_calibrated();
        let fast = sched.schedule(&wf, &prof, &PgpConfig::performance_first());
        // A relaxed SLO: 40% above the performance-first prediction.
        let slo = fast.predicted.mul_f64(1.4);
        let eff = sched.schedule(&wf, &prof, &PgpConfig::with_slo(slo));
        assert!(eff.met_slo);
        assert!(eff.predicted <= slo);
        assert!(
            eff.plan.total_cpus() <= fast.plan.total_cpus(),
            "SLO mode must not use more CPUs: {} vs {}",
            eff.plan.total_cpus(),
            fast.plan.total_cpus()
        );
    }

    #[test]
    fn prewarm_budget_penalises_and_stays_deterministic() {
        let wf = apps::finra(50);
        let prof = profile(&wf);
        let sched = PgpScheduler::paper_calibrated();

        let base = sched.schedule(&wf, &prof, &PgpConfig::performance_first());
        assert_eq!(base.startup_penalty, SimDuration::ZERO);

        // A thin budget leaves most of the demand window exposed to the
        // cold boot, so the chosen plan carries a positive penalty.
        let budget = PrewarmBudget::new(1e-4, 50.0);
        let cfg = PgpConfig::performance_first().with_prewarm(budget);
        let tiered = sched.schedule(&wf, &prof, &cfg);
        assert!(tiered.startup_penalty > SimDuration::ZERO);
        let stage_sets: Vec<Vec<FunctionId>> =
            wf.stages.iter().map(|s| s.functions.clone()).collect();
        tiered.plan.validate(&stage_sets).unwrap();

        // The penalty is deterministic: the memoised search and the
        // pre-optimisation oracle agree byte for byte under a budget too.
        let reference = sched.schedule_reference(&wf, &prof, &cfg);
        assert_eq!(tiered.plan, reference.plan);
        assert_eq!(tiered.predicted, reference.predicted);
        assert_eq!(tiered.startup_penalty, reference.startup_penalty);
        let parallel = sched.schedule_parallel(&wf, &prof, &cfg, 4);
        assert_eq!(tiered.plan, parallel.plan);
        assert_eq!(tiered.startup_penalty, parallel.startup_penalty);
    }

    #[test]
    fn unsatisfiable_slo_reports_best_effort() {
        let wf = apps::slapp();
        let out = PgpScheduler::paper_calibrated().schedule(
            &wf,
            &profile(&wf),
            &PgpConfig::with_slo(SimDuration::from_millis(1)),
        );
        assert!(!out.met_slo);
        assert!(out.predicted > SimDuration::from_millis(1));
    }

    #[test]
    fn plans_validate_for_all_benchmarks() {
        let sched = PgpScheduler::paper_calibrated();
        for wf in [
            apps::social_network(),
            apps::movie_reviewing(),
            apps::slapp_v(),
        ] {
            let out = sched.schedule(&wf, &profile(&wf), &PgpConfig::performance_first());
            let stage_sets: Vec<Vec<FunctionId>> =
                wf.stages.iter().map(|s| s.functions.clone()).collect();
            out.plan.validate(&stage_sets).unwrap();
        }
    }

    #[test]
    fn mpk_mode_forks_parallel_functions() {
        let wf = apps::finra(5);
        let out = PgpScheduler::paper_calibrated().schedule(
            &wf,
            &profile(&wf),
            &PgpConfig::performance_first().with_mode(PgpMode::Mpk),
        );
        assert_eq!(out.plan.isolation, IsolationKind::Mpk);
        // Parallel stage: single-function processes only. (Single-process
        // wraps legitimately become thread execution under MPK.)
        for wrap in &out.plan.stages[1].wraps {
            for proc in &wrap.processes {
                assert_eq!(proc.functions.len(), 1);
            }
        }
    }

    #[test]
    fn pool_mode_uses_single_wrap_and_shared_cpus() {
        let wf = apps::finra(50);
        let out = PgpScheduler::paper_calibrated().schedule(
            &wf,
            &profile(&wf),
            &PgpConfig::performance_first().with_mode(PgpMode::Pool),
        );
        assert_eq!(out.plan.sandbox_count(), 1);
        assert_eq!(out.plan.sandboxes[0].pool_size, 50);
        for stage in &out.plan.stages {
            assert_eq!(stage.wraps.len(), 1);
        }
        let stage_sets: Vec<Vec<FunctionId>> =
            wf.stages.iter().map(|s| s.functions.clone()).collect();
        out.plan.validate(&stage_sets).unwrap();
    }

    #[test]
    fn conflicting_runtimes_are_pinned() {
        let fns = vec![
            FunctionSpec::new("py3", vec![Segment::cpu_ms(5)]),
            FunctionSpec::new("py2", vec![Segment::cpu_ms(5)])
                .with_runtime(LanguageRuntime::Python2),
            FunctionSpec::new("py3b", vec![Segment::cpu_ms(5)]),
        ];
        let wf = Workflow::new("mixed", fns, vec![vec![0, 1, 2]]).unwrap();
        let prof = Profiler::default().profile_workflow(&wf);
        let out =
            PgpScheduler::paper_calibrated().schedule(&wf, &prof, &PgpConfig::performance_first());
        // The Python 2 function must sit alone in its wrap.
        let wrap_of = |f: u32| {
            out.plan.stages[0]
                .wraps
                .iter()
                .position(|w| w.functions().any(|x| x == FunctionId(f)))
                .unwrap()
        };
        let w1 = wrap_of(1);
        assert_eq!(out.plan.stages[0].wraps[w1].function_count(), 1);
        let stage_sets: Vec<Vec<FunctionId>> =
            wf.stages.iter().map(|s| s.functions.clone()).collect();
        out.plan.validate(&stage_sets).unwrap();
    }

    #[test]
    fn cached_schedule_matches_reference() {
        let sched = PgpScheduler::paper_calibrated();
        for wf in [apps::finra(20), apps::slapp(), apps::social_network()] {
            let prof = profile(&wf);
            for mode in [PgpMode::NativeThread, PgpMode::Mpk, PgpMode::Pool] {
                for config in [
                    PgpConfig::performance_first().with_mode(mode),
                    PgpConfig::with_slo(SimDuration::from_millis(200)).with_mode(mode),
                ] {
                    let fast = sched.schedule(&wf, &prof, &config);
                    let slow = sched.schedule_reference(&wf, &prof, &config);
                    assert_eq!(fast.plan, slow.plan, "{} {mode:?}", wf.name);
                    assert_eq!(fast.predicted, slow.predicted, "{} {mode:?}", wf.name);
                    assert_eq!(fast.processes, slow.processes, "{} {mode:?}", wf.name);
                }
            }
        }
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let sched = PgpScheduler::paper_calibrated();
        for wf in [apps::finra(20), apps::slapp(), apps::slapp_v()] {
            let prof = profile(&wf);
            for config in [
                PgpConfig::performance_first(),
                PgpConfig::with_slo(SimDuration::from_millis(200)),
            ] {
                let seq = sched.schedule(&wf, &prof, &config);
                let par = sched.schedule_parallel(&wf, &prof, &config, 4);
                assert_eq!(seq.processes, par.processes, "{}", wf.name);
                assert_eq!(seq.predicted, par.predicted, "{}", wf.name);
                assert_eq!(seq.plan, par.plan, "{}", wf.name);
            }
        }
    }

    #[test]
    fn parallel_search_matches_its_reference() {
        let sched = PgpScheduler::paper_calibrated();
        // The work gate counts distinct behaviours, so repetitive app
        // families (every finra size) now delegate; exercising the
        // fanned-out path needs a workflow of genuinely distinct
        // functions. The all-distinct synthetic below clears the
        // threshold (asserted, so a generator change can't silently turn
        // this into a fallback-only test); the smaller workflows exercise
        // the below-threshold delegation.
        let big = synthetic(SyntheticSpec {
            seed: 11,
            stages: 8,
            max_parallelism: 32,
            profile_classes: 0,
            ..SyntheticSpec::default()
        });
        {
            let prof = profile(&big);
            let max_n = big
                .max_parallelism()
                .min(PgpConfig::performance_first().max_process_search)
                .max(1);
            assert!(
                chiron_predict::distinct_profile_classes(&prof) * max_n >= PARALLEL_WORK_THRESHOLD,
                "synthetic workflow no longer exercises the parallel path"
            );
        }
        for wf in [apps::finra(20), apps::slapp(), big] {
            let prof = profile(&wf);
            for config in [
                PgpConfig::performance_first(),
                PgpConfig::with_slo(SimDuration::from_millis(200)),
            ] {
                let par = sched.schedule_parallel(&wf, &prof, &config, 4);
                let oracle = sched.schedule_parallel_reference(&wf, &prof, &config);
                assert_eq!(par.plan, oracle.plan, "{}", wf.name);
                assert_eq!(par.predicted, oracle.predicted, "{}", wf.name);
            }
        }
    }

    #[test]
    fn parallel_search_single_worker_falls_back() {
        let wf = apps::finra(5);
        let prof = profile(&wf);
        let sched = PgpScheduler::paper_calibrated();
        let config = PgpConfig::performance_first();
        let a = sched.schedule(&wf, &prof, &config);
        let b = sched.schedule_parallel(&wf, &prof, &config, 1);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn shared_cache_is_exercised_and_harmless() {
        // One cache across repeated schedules: hit rate climbs, outputs
        // stay identical to cold-cache runs.
        let wf = apps::finra(20);
        let prof = profile(&wf);
        let sched = PgpScheduler::paper_calibrated();
        let config = PgpConfig::performance_first();
        let cold = sched.schedule(&wf, &prof, &config);
        let cache = PredictionCache::new();
        let first = sched.schedule_with_cache(&wf, &prof, &config, &cache);
        let after_first = cache.stats();
        assert!(after_first.hits > 0, "memoisation must be exercised");
        let second = sched.schedule_with_cache(&wf, &prof, &config, &cache);
        let after_second = cache.stats();
        assert_eq!(cold.plan, first.plan);
        assert_eq!(first.plan, second.plan);
        // The second run re-uses the first run's entries: no new misses.
        assert_eq!(after_first.misses, after_second.misses);
        assert_eq!(after_first.entries, after_second.entries);
    }

    #[test]
    fn cpu_trim_is_non_uniform_and_minimal() {
        let wf = apps::slapp();
        let prof = profile(&wf);
        let sched = PgpScheduler::paper_calibrated();
        let fast = sched.schedule(&wf, &prof, &PgpConfig::performance_first());
        let generous = sched.schedule(
            &wf,
            &prof,
            &PgpConfig::with_slo(fast.predicted.mul_f64(2.0)),
        );
        // With double the latency budget, fewer CPUs must suffice.
        assert!(generous.plan.total_cpus() < fast.plan.total_cpus().max(2));
    }
}
