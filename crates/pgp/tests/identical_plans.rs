//! The identical-output guarantee of the scheduler fast paths.
//!
//! The memoised evaluator ([`PgpScheduler::schedule`]) and the
//! cache-sharing parallel search ([`PgpScheduler::schedule_parallel`])
//! are pure optimisations: for every workflow, execution mode and SLO
//! setting they must emit plans byte-identical to their pre-optimisation
//! reference implementations, while actually exercising the memo cache.

use chiron_model::{FunctionSpec, Segment, SimDuration, SyscallKind, TransferKind, Workflow};
use chiron_pgp::{PgpConfig, PgpMode, PgpScheduler};
use chiron_predict::PredictionCache;
use chiron_profiler::Profiler;
use proptest::prelude::*;

/// Synthetic two-stage workflows: an entry function followed by a parallel
/// stage of CPU-bound and IO-punctuated functions with varied durations —
/// the shapes that drive PGP through different `n`, KL swap sequences and
/// wrap packings.
fn arb_workflow() -> impl Strategy<Value = Workflow> {
    prop::collection::vec((0u8..2, 1u64..20, 1u64..4), 2..14).prop_map(|parts| {
        let fns: Vec<FunctionSpec> = parts
            .iter()
            .enumerate()
            .map(|(i, &(kind, ms, lead))| {
                let segments = if kind == 0 {
                    vec![Segment::cpu_ms(ms)]
                } else {
                    vec![
                        Segment::cpu_ms(lead),
                        Segment::Block {
                            kind: SyscallKind::NetIo,
                            dur: SimDuration::from_millis(ms),
                        },
                        Segment::cpu_ms(1),
                    ]
                };
                FunctionSpec::new(format!("f{i:02}"), segments)
            })
            .collect();
        let parallel: Vec<u32> = (1..fns.len() as u32).collect();
        Workflow::new("synthetic", fns, vec![vec![0], parallel]).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn optimised_schedulers_match_reference(wf in arb_workflow(), slo_ms in 5u64..250) {
        let prof = Profiler::default().profile_workflow(&wf);
        let sched = PgpScheduler::paper_calibrated();
        let mut total_hits = 0u64;
        for mode in [PgpMode::NativeThread, PgpMode::Mpk, PgpMode::Pool] {
            for config in [
                PgpConfig::performance_first().with_mode(mode),
                PgpConfig::with_slo(SimDuration::from_millis(slo_ms)).with_mode(mode),
            ] {
                let cache = PredictionCache::new();
                let fast = sched.schedule_with_cache(&wf, &prof, &config, &cache);
                let slow = sched.schedule_reference(&wf, &prof, &config);
                prop_assert_eq!(&fast.plan, &slow.plan);
                prop_assert_eq!(fast.predicted, slow.predicted);
                prop_assert_eq!(fast.processes, slow.processes);
                prop_assert_eq!(fast.met_slo, slow.met_slo);
                total_hits += cache.stats().hits;

                let par = sched.schedule_parallel(&wf, &prof, &config, 4);
                let oracle = sched.schedule_parallel_reference(&wf, &prof, &config);
                prop_assert_eq!(&par.plan, &oracle.plan);
                prop_assert_eq!(par.predicted, oracle.predicted);
                prop_assert_eq!(par.processes, oracle.processes);
            }
        }
        // The fast paths must actually run memoised: identical process
        // contents recur across the n-search, KL rounds and CPU trimming.
        prop_assert!(total_hits > 0, "prediction cache was never hit");
    }

    /// The shm-ring tier changes the objective (co-located wraps price
    /// their handoffs at the ring), so the search may pick different
    /// packings — but fast, reference, and parallel searches must still
    /// agree byte for byte, and every emitted plan must carry the tier.
    #[test]
    fn shm_tier_searches_stay_identical(wf in arb_workflow(), slo_ms in 5u64..250) {
        let prof = Profiler::default().profile_workflow(&wf);
        let sched = PgpScheduler::paper_calibrated();
        for config in [
            PgpConfig::performance_first().with_transfer(TransferKind::ShmRing),
            PgpConfig::with_slo(SimDuration::from_millis(slo_ms))
                .with_transfer(TransferKind::ShmRing),
        ] {
            let cache = PredictionCache::new();
            let fast = sched.schedule_with_cache(&wf, &prof, &config, &cache);
            let slow = sched.schedule_reference(&wf, &prof, &config);
            prop_assert_eq!(&fast.plan, &slow.plan);
            prop_assert_eq!(fast.predicted, slow.predicted);
            prop_assert_eq!(fast.processes, slow.processes);
            prop_assert_eq!(fast.met_slo, slow.met_slo);
            prop_assert_eq!(fast.plan.transfer, TransferKind::ShmRing);

            let par = sched.schedule_parallel(&wf, &prof, &config, 4);
            let oracle = sched.schedule_parallel_reference(&wf, &prof, &config);
            prop_assert_eq!(&par.plan, &oracle.plan);
            prop_assert_eq!(par.predicted, oracle.predicted);
            prop_assert_eq!(par.processes, oracle.processes);
        }
    }
}
