//! # chiron-deploy
//!
//! Deployment-plan builders for every system of the paper's evaluation —
//! the one-to-one baselines (ASF, OpenFaaS), the many-to-one baselines
//! (SAND, Faastlane and its -T/-+/-M/-P variants), the PGP-driven Chiron
//! plans — plus the Generator that emits each wrap's orchestrator code
//! (§5, Fig. 9 step ➍).

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod codegen;
pub mod planners;

pub use cluster::{
    place, placement_overhead, scheduling_architectures, ClusterConfig, ClusterState, NodeId,
    Placement, PlacementError, PlacementPolicy,
};
pub use codegen::{generate, GeneratedWrap};
pub use planners::{
    asf, baseline, chiron, chiron_m, chiron_p, chiron_prewarmed, faastlane, faastlane_m,
    faastlane_p, faastlane_plus, faastlane_t, openfaas, sand, to_java,
    FAASTLANE_PLUS_PROCS_PER_SANDBOX,
};
