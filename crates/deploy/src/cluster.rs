//! Multi-node placement of wraps — the cluster dimension of §7.
//!
//! The paper evaluates on an 8-node cluster (Table 2) but schedules wraps
//! centrally; §7 notes that with many wraps "the current centralized
//! scheduling architecture of Chiron can lead to high real-time request
//! scheduling overhead" and that decentralised scheduling is the remedy.
//! This module supplies the placement substrate: bin-packing a plan's
//! sandboxes onto worker nodes under CPU/memory capacity, pack-vs-spread
//! policies, per-node utilisation, cluster-level throughput, and the
//! centralised-vs-decentralised invocation-overhead comparison.

use chiron_metrics::plan_resources;
use chiron_model::{CostModel, DeploymentPlan, SandboxId, SimDuration, Workflow};
use serde::{Deserialize, Serialize};

/// Identifier of a worker node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A homogeneous cluster of worker nodes (Table 2's testbed shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    pub nodes: u32,
    /// Per-node capacity (CPU count / DRAM come from the cost model).
    pub node: CostModel,
    /// Extra latency of a wrap-to-wrap invocation that crosses nodes,
    /// beyond the intra-node `T_RPC`.
    pub cross_node_extra: SimDuration,
}

impl ClusterConfig {
    /// The paper's testbed: 8 nodes, 40 CPUs / 128 GB each, 10 Gbps
    /// full-bisection Ethernet (≈0.5 ms extra per cross-node hop).
    pub fn paper_testbed() -> Self {
        ClusterConfig {
            nodes: 8,
            node: CostModel::paper_calibrated(),
            cross_node_extra: SimDuration::from_millis_f64(0.5),
        }
    }
}

/// How sandboxes are assigned to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// First-fit onto the fewest nodes (locality: cheap wrap-to-wrap RPC).
    Pack,
    /// Round-robin across all nodes (balance: headroom per node).
    Spread,
}

/// A placement of one deployment's sandboxes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    pub assignments: Vec<(SandboxId, NodeId)>,
}

/// Placement failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A single sandbox exceeds a node's CPU or memory capacity.
    SandboxTooLarge(SandboxId),
    /// The cluster cannot hold all sandboxes.
    ClusterFull,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::SandboxTooLarge(id) => {
                write!(f, "{id} exceeds single-node capacity")
            }
            PlacementError::ClusterFull => write!(f, "cluster capacity exhausted"),
        }
    }
}

impl std::error::Error for PlacementError {}

impl Placement {
    pub fn node_of(&self, sandbox: SandboxId) -> Option<NodeId> {
        self.assignments
            .iter()
            .find(|(s, _)| *s == sandbox)
            .map(|&(_, n)| n)
    }

    /// Number of distinct nodes used.
    pub fn nodes_used(&self) -> usize {
        let mut nodes: Vec<NodeId> = self.assignments.iter().map(|&(_, n)| n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }
}

/// Resource demand of one sandbox (its share of the plan's footprint).
fn sandbox_demand(
    plan: &DeploymentPlan,
    workflow: &Workflow,
    costs: &CostModel,
    sandbox: SandboxId,
) -> (u32, u64) {
    // Build a single-sandbox sub-plan view: cpus from the sandbox plan,
    // memory via the per-sandbox accounting of `plan_resources` applied to
    // a filtered plan.
    let sb = plan.sandbox(sandbox).expect("sandbox exists");
    let filtered = DeploymentPlan {
        sandboxes: vec![*sb],
        stages: plan
            .stages
            .iter()
            .map(|s| chiron_model::StagePlan {
                wraps: s
                    .wraps
                    .iter()
                    .filter(|w| w.sandbox == sandbox)
                    .cloned()
                    .collect(),
            })
            .filter(|s| !s.wraps.is_empty())
            .collect(),
        ..plan.clone()
    };
    if filtered.stages.is_empty() {
        return (sb.cpus, costs.sandbox_base_bytes);
    }
    let usage = plan_resources(&filtered, workflow, costs);
    (sb.cpus, usage.memory_bytes)
}

/// Places a plan's sandboxes onto the cluster.
pub fn place(
    plan: &DeploymentPlan,
    workflow: &Workflow,
    cluster: &ClusterConfig,
    policy: PlacementPolicy,
) -> Result<Placement, PlacementError> {
    let mut free_cpu = vec![cluster.node.node_cpus; cluster.nodes as usize];
    let mut free_mem = vec![cluster.node.node_memory_bytes; cluster.nodes as usize];
    let mut assignments = Vec::with_capacity(plan.sandbox_count());
    let mut rr_cursor = 0usize;
    for sb in &plan.sandboxes {
        let (cpus, mem) = sandbox_demand(plan, workflow, &cluster.node, sb.id);
        if cpus > cluster.node.node_cpus || mem > cluster.node.node_memory_bytes {
            return Err(PlacementError::SandboxTooLarge(sb.id));
        }
        let n = cluster.nodes as usize;
        let order: Vec<usize> = match policy {
            PlacementPolicy::Pack => (0..n).collect(),
            PlacementPolicy::Spread => (0..n).map(|i| (rr_cursor + i) % n).collect(),
        };
        let slot = order
            .into_iter()
            .find(|&i| free_cpu[i] >= cpus && free_mem[i] >= mem)
            .ok_or(PlacementError::ClusterFull)?;
        free_cpu[slot] -= cpus;
        free_mem[slot] -= mem;
        assignments.push((sb.id, NodeId(slot as u32)));
        rr_cursor = (slot + 1) % n;
    }
    Ok(Placement { assignments })
}

/// Live cluster bookkeeping for incremental replica placement — the
/// mutable counterpart of the one-shot [`place`]. The serving control
/// plane adds and retires whole replicas (full copies of a plan's sandbox
/// set) over time and marks nodes failed; capacity accounting here is the
/// single source of truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterState {
    config: ClusterConfig,
    free_cpu: Vec<u32>,
    free_mem: Vec<u64>,
    failed: Vec<bool>,
    rr_cursor: usize,
}

impl ClusterState {
    pub fn new(config: ClusterConfig) -> Self {
        let n = config.nodes as usize;
        ClusterState {
            free_cpu: vec![config.node.node_cpus; n],
            free_mem: vec![config.node.node_memory_bytes; n],
            failed: vec![false; n],
            rr_cursor: 0,
            config,
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Nodes currently accepting placements.
    pub fn live_nodes(&self) -> usize {
        self.failed.iter().filter(|&&f| !f).count()
    }

    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed[node.0 as usize]
    }

    /// Fraction of live-node CPU capacity currently allocated.
    pub fn cpu_utilisation(&self) -> f64 {
        let mut capacity = 0u64;
        let mut free = 0u64;
        for i in 0..self.failed.len() {
            if !self.failed[i] {
                capacity += u64::from(self.config.node.node_cpus);
                free += u64::from(self.free_cpu[i]);
            }
        }
        if capacity == 0 {
            return 1.0;
        }
        1.0 - free as f64 / capacity as f64
    }

    /// Places one replica — a full copy of the plan's sandbox set — onto
    /// live nodes with capacity, honouring the policy (Pack: first fit on
    /// the fewest nodes; Spread: round-robin continuing from the previous
    /// placement). Capacity is debited on success and untouched on error.
    pub fn place_replica(
        &mut self,
        plan: &DeploymentPlan,
        workflow: &Workflow,
        policy: PlacementPolicy,
    ) -> Result<Placement, PlacementError> {
        let n = self.config.nodes as usize;
        let mut free_cpu = self.free_cpu.clone();
        let mut free_mem = self.free_mem.clone();
        let mut rr_cursor = self.rr_cursor;
        let mut assignments = Vec::with_capacity(plan.sandbox_count());
        for sb in &plan.sandboxes {
            let (cpus, mem) = sandbox_demand(plan, workflow, &self.config.node, sb.id);
            if cpus > self.config.node.node_cpus || mem > self.config.node.node_memory_bytes {
                return Err(PlacementError::SandboxTooLarge(sb.id));
            }
            let order: Vec<usize> = match policy {
                PlacementPolicy::Pack => (0..n).collect(),
                PlacementPolicy::Spread => (0..n).map(|i| (rr_cursor + i) % n).collect(),
            };
            let slot = order
                .into_iter()
                .find(|&i| !self.failed[i] && free_cpu[i] >= cpus && free_mem[i] >= mem)
                .ok_or(PlacementError::ClusterFull)?;
            free_cpu[slot] -= cpus;
            free_mem[slot] -= mem;
            assignments.push((sb.id, NodeId(slot as u32)));
            rr_cursor = (slot + 1) % n;
        }
        self.free_cpu = free_cpu;
        self.free_mem = free_mem;
        self.rr_cursor = rr_cursor;
        Ok(Placement { assignments })
    }

    /// Returns a replica's resources to the cluster. Capacity on failed
    /// nodes is not refunded (the node is gone with everything on it).
    pub fn remove_replica(
        &mut self,
        plan: &DeploymentPlan,
        workflow: &Workflow,
        placement: &Placement,
    ) {
        for &(sandbox, node) in &placement.assignments {
            let i = node.0 as usize;
            if self.failed[i] {
                continue;
            }
            let (cpus, mem) = sandbox_demand(plan, workflow, &self.config.node, sandbox);
            self.free_cpu[i] = (self.free_cpu[i] + cpus).min(self.config.node.node_cpus);
            self.free_mem[i] = (self.free_mem[i] + mem).min(self.config.node.node_memory_bytes);
        }
    }

    /// Marks a node failed: it stops accepting placements and its capacity
    /// is written off. Idempotent; node ids outside the cluster are ignored
    /// (there is nothing there to kill).
    pub fn fail_node(&mut self, node: NodeId) {
        let i = node.0 as usize;
        if i >= self.failed.len() {
            return;
        }
        self.failed[i] = true;
        self.free_cpu[i] = 0;
        self.free_mem[i] = 0;
    }
}

/// Extra per-request invocation latency this placement adds: each stage's
/// remote wraps that land on a different node than the stage's primary
/// wrap pay `cross_node_extra` on invocation and return.
pub fn placement_overhead(
    plan: &DeploymentPlan,
    placement: &Placement,
    cluster: &ClusterConfig,
) -> SimDuration {
    let mut extra = SimDuration::ZERO;
    for stage in &plan.stages {
        let primary = placement
            .node_of(stage.wraps[0].sandbox)
            .expect("placed plan");
        let mut worst = SimDuration::ZERO;
        for wrap in stage.wraps.iter().skip(1) {
            if placement.node_of(wrap.sandbox) != Some(primary) {
                worst = cluster.cross_node_extra * 2; // invoke + return
            }
        }
        extra += worst;
    }
    extra
}

/// Centralised vs decentralised request scheduling (§7): a centralised
/// scheduler interposes one extra gateway round trip per stage handled by
/// a remote wrap; decentralised scheduling lets wraps invoke each other
/// directly. Returns `(centralised, decentralised)` per-request overheads.
pub fn scheduling_architectures(
    plan: &DeploymentPlan,
    costs: &CostModel,
) -> (SimDuration, SimDuration) {
    let mut central = SimDuration::ZERO;
    let mut decentral = SimDuration::ZERO;
    for stage in &plan.stages {
        let remote_wraps = stage.wraps.len().saturating_sub(1) as u64;
        if remote_wraps > 0 {
            // Central: every remote invocation detours through the
            // scheduler (one extra T_RPC each, serialised issuance).
            central += (costs.rpc + costs.inv) * remote_wraps;
            // Decentralised: wrap 1 invokes peers directly.
            decentral += costs.inv * remote_wraps;
        }
    }
    (central, decentral)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planners;
    use chiron_model::apps;

    #[test]
    fn pack_uses_fewest_nodes() {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf); // 3 sandboxes × 5 CPUs
        let cluster = ClusterConfig::paper_testbed();
        let packed = place(&plan, &wf, &cluster, PlacementPolicy::Pack).unwrap();
        assert_eq!(packed.nodes_used(), 1, "15 CPUs fit one 40-CPU node");
        let spread = place(&plan, &wf, &cluster, PlacementPolicy::Spread).unwrap();
        assert_eq!(spread.nodes_used(), 3);
    }

    #[test]
    fn capacity_is_respected() {
        let wf = apps::finra(200);
        let plan = planners::faastlane_plus(&wf); // 40 sandboxes × 5 CPUs
        let cluster = ClusterConfig::paper_testbed();
        let placed = place(&plan, &wf, &cluster, PlacementPolicy::Pack).unwrap();
        // 200 CPUs over 40-CPU nodes: at least 5 nodes.
        assert!(placed.nodes_used() >= 5);
        // No node oversubscribed: recompute usage.
        let mut used = std::collections::HashMap::new();
        for (sb, node) in &placed.assignments {
            *used.entry(*node).or_insert(0u32) += plan.sandbox(*sb).unwrap().cpus;
        }
        for (&node, &cpus) in &used {
            assert!(cpus <= 40, "{node:?} has {cpus} CPUs");
        }
    }

    #[test]
    fn oversized_sandbox_rejected() {
        let wf = apps::finra(50);
        let mut plan = planners::faastlane(&wf);
        plan.sandboxes[0].cpus = 64; // exceeds a 40-CPU node
        let cluster = ClusterConfig::paper_testbed();
        assert_eq!(
            place(&plan, &wf, &cluster, PlacementPolicy::Pack).unwrap_err(),
            PlacementError::SandboxTooLarge(plan.sandboxes[0].id)
        );
    }

    #[test]
    fn cluster_full_detected() {
        let wf = apps::finra(200);
        let plan = planners::faastlane_plus(&wf); // 200 CPUs demanded
        let tiny = ClusterConfig {
            nodes: 2,
            ..ClusterConfig::paper_testbed()
        };
        assert_eq!(
            place(&plan, &wf, &tiny, PlacementPolicy::Pack).unwrap_err(),
            PlacementError::ClusterFull
        );
    }

    #[test]
    fn packed_placement_avoids_cross_node_overhead() {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf);
        let cluster = ClusterConfig::paper_testbed();
        let packed = place(&plan, &wf, &cluster, PlacementPolicy::Pack).unwrap();
        let spread = place(&plan, &wf, &cluster, PlacementPolicy::Spread).unwrap();
        let packed_extra = placement_overhead(&plan, &packed, &cluster);
        let spread_extra = placement_overhead(&plan, &spread, &cluster);
        assert_eq!(packed_extra, SimDuration::ZERO);
        assert!(spread_extra > SimDuration::ZERO);
    }

    #[test]
    fn decentralised_scheduling_is_cheaper() {
        let wf = apps::finra(50);
        let profile = chiron_profiler::Profiler::default().profile_workflow(&wf);
        let out = planners::chiron_m(&wf, &profile, None);
        let costs = CostModel::paper_calibrated();
        let (central, decentral) = scheduling_architectures(&out.plan, &costs);
        if out.plan.max_wraps_per_stage() > 1 {
            assert!(decentral < central);
        } else {
            assert_eq!(central, decentral);
        }
    }

    #[test]
    fn cluster_state_add_remove_roundtrip() {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf); // 3 sandboxes × 5 CPUs
        let mut state = ClusterState::new(ClusterConfig::paper_testbed());
        let p1 = state
            .place_replica(&plan, &wf, PlacementPolicy::Pack)
            .unwrap();
        let p2 = state
            .place_replica(&plan, &wf, PlacementPolicy::Pack)
            .unwrap();
        assert!(state.cpu_utilisation() > 0.0);
        state.remove_replica(&plan, &wf, &p2);
        state.remove_replica(&plan, &wf, &p1);
        assert_eq!(
            state.cpu_utilisation(),
            0.0,
            "full removal restores capacity exactly"
        );
        assert_eq!(state.free_cpu, vec![40; 8]);
        assert_eq!(
            state.free_mem,
            vec![
                128 << 30,
                128 << 30,
                128 << 30,
                128 << 30,
                128 << 30,
                128 << 30,
                128 << 30,
                128 << 30
            ]
        );
    }

    #[test]
    fn cluster_state_incremental_matches_batch_policy() {
        // A replica placed incrementally lands like the one-shot placer.
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf);
        let cluster = ClusterConfig::paper_testbed();
        let mut state = ClusterState::new(cluster.clone());
        let incremental = state
            .place_replica(&plan, &wf, PlacementPolicy::Pack)
            .unwrap();
        let batch = place(&plan, &wf, &cluster, PlacementPolicy::Pack).unwrap();
        assert_eq!(incremental, batch);
    }

    #[test]
    fn failed_nodes_are_avoided_and_capacity_written_off() {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf);
        let mut state = ClusterState::new(ClusterConfig::paper_testbed());
        state.fail_node(NodeId(0));
        assert_eq!(state.live_nodes(), 7);
        assert!(state.is_failed(NodeId(0)));
        let placed = state
            .place_replica(&plan, &wf, PlacementPolicy::Pack)
            .unwrap();
        assert!(placed.assignments.iter().all(|&(_, n)| n != NodeId(0)));
        // Removing a replica that straddled a failed node must not refund
        // the dead node's share.
        let before_cpu = state.cpu_utilisation();
        state.remove_replica(&plan, &wf, &placed);
        assert!(state.cpu_utilisation() <= before_cpu);
    }

    #[test]
    fn exhaustion_reports_cluster_full() {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf); // 15 CPUs per replica
        let mut state = ClusterState::new(ClusterConfig {
            nodes: 1,
            ..ClusterConfig::paper_testbed()
        });
        // One 40-CPU node holds two 15-CPU replicas, not three.
        assert!(state
            .place_replica(&plan, &wf, PlacementPolicy::Pack)
            .is_ok());
        assert!(state
            .place_replica(&plan, &wf, PlacementPolicy::Pack)
            .is_ok());
        assert_eq!(
            state
                .place_replica(&plan, &wf, PlacementPolicy::Pack)
                .unwrap_err(),
            PlacementError::ClusterFull
        );
    }

    #[test]
    fn single_sandbox_plan_places_trivially() {
        let wf = apps::finra(5);
        let plan = planners::faastlane(&wf);
        let cluster = ClusterConfig::paper_testbed();
        let placed = place(&plan, &wf, &cluster, PlacementPolicy::Spread).unwrap();
        assert_eq!(placed.assignments.len(), 1);
        assert_eq!(
            placement_overhead(&plan, &placed, &cluster),
            SimDuration::ZERO
        );
    }
}
