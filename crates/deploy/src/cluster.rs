//! Multi-node placement of wraps — the cluster dimension of §7.
//!
//! The paper evaluates on an 8-node cluster (Table 2) but schedules wraps
//! centrally; §7 notes that with many wraps "the current centralized
//! scheduling architecture of Chiron can lead to high real-time request
//! scheduling overhead" and that decentralised scheduling is the remedy.
//! This module supplies the placement substrate: bin-packing a plan's
//! sandboxes onto worker nodes under CPU/memory capacity, pack-vs-spread
//! policies, per-node utilisation, cluster-level throughput, and the
//! centralised-vs-decentralised invocation-overhead comparison.

use chiron_model::{CostModel, DeploymentPlan, SandboxId, SimDuration, Workflow};
use chiron_metrics::plan_resources;
use serde::{Deserialize, Serialize};

/// Identifier of a worker node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A homogeneous cluster of worker nodes (Table 2's testbed shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    pub nodes: u32,
    /// Per-node capacity (CPU count / DRAM come from the cost model).
    pub node: CostModel,
    /// Extra latency of a wrap-to-wrap invocation that crosses nodes,
    /// beyond the intra-node `T_RPC`.
    pub cross_node_extra: SimDuration,
}

impl ClusterConfig {
    /// The paper's testbed: 8 nodes, 40 CPUs / 128 GB each, 10 Gbps
    /// full-bisection Ethernet (≈0.5 ms extra per cross-node hop).
    pub fn paper_testbed() -> Self {
        ClusterConfig {
            nodes: 8,
            node: CostModel::paper_calibrated(),
            cross_node_extra: SimDuration::from_millis_f64(0.5),
        }
    }
}

/// How sandboxes are assigned to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// First-fit onto the fewest nodes (locality: cheap wrap-to-wrap RPC).
    Pack,
    /// Round-robin across all nodes (balance: headroom per node).
    Spread,
}

/// A placement of one deployment's sandboxes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    pub assignments: Vec<(SandboxId, NodeId)>,
}

/// Placement failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A single sandbox exceeds a node's CPU or memory capacity.
    SandboxTooLarge(SandboxId),
    /// The cluster cannot hold all sandboxes.
    ClusterFull,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::SandboxTooLarge(id) => {
                write!(f, "{id} exceeds single-node capacity")
            }
            PlacementError::ClusterFull => write!(f, "cluster capacity exhausted"),
        }
    }
}

impl std::error::Error for PlacementError {}

impl Placement {
    pub fn node_of(&self, sandbox: SandboxId) -> Option<NodeId> {
        self.assignments
            .iter()
            .find(|(s, _)| *s == sandbox)
            .map(|&(_, n)| n)
    }

    /// Number of distinct nodes used.
    pub fn nodes_used(&self) -> usize {
        let mut nodes: Vec<NodeId> = self.assignments.iter().map(|&(_, n)| n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }
}

/// Resource demand of one sandbox (its share of the plan's footprint).
fn sandbox_demand(
    plan: &DeploymentPlan,
    workflow: &Workflow,
    costs: &CostModel,
    sandbox: SandboxId,
) -> (u32, u64) {
    // Build a single-sandbox sub-plan view: cpus from the sandbox plan,
    // memory via the per-sandbox accounting of `plan_resources` applied to
    // a filtered plan.
    let sb = plan.sandbox(sandbox).expect("sandbox exists");
    let filtered = DeploymentPlan {
        sandboxes: vec![*sb],
        stages: plan
            .stages
            .iter()
            .map(|s| chiron_model::StagePlan {
                wraps: s
                    .wraps
                    .iter()
                    .filter(|w| w.sandbox == sandbox)
                    .cloned()
                    .collect(),
            })
            .filter(|s| !s.wraps.is_empty())
            .collect(),
        ..plan.clone()
    };
    if filtered.stages.is_empty() {
        return (sb.cpus, costs.sandbox_base_bytes);
    }
    let usage = plan_resources(&filtered, workflow, costs);
    (sb.cpus, usage.memory_bytes)
}

/// Places a plan's sandboxes onto the cluster.
pub fn place(
    plan: &DeploymentPlan,
    workflow: &Workflow,
    cluster: &ClusterConfig,
    policy: PlacementPolicy,
) -> Result<Placement, PlacementError> {
    let mut free_cpu = vec![cluster.node.node_cpus; cluster.nodes as usize];
    let mut free_mem = vec![cluster.node.node_memory_bytes; cluster.nodes as usize];
    let mut assignments = Vec::with_capacity(plan.sandbox_count());
    let mut rr_cursor = 0usize;
    for sb in &plan.sandboxes {
        let (cpus, mem) = sandbox_demand(plan, workflow, &cluster.node, sb.id);
        if cpus > cluster.node.node_cpus || mem > cluster.node.node_memory_bytes {
            return Err(PlacementError::SandboxTooLarge(sb.id));
        }
        let n = cluster.nodes as usize;
        let order: Vec<usize> = match policy {
            PlacementPolicy::Pack => (0..n).collect(),
            PlacementPolicy::Spread => (0..n).map(|i| (rr_cursor + i) % n).collect(),
        };
        let slot = order
            .into_iter()
            .find(|&i| free_cpu[i] >= cpus && free_mem[i] >= mem)
            .ok_or(PlacementError::ClusterFull)?;
        free_cpu[slot] -= cpus;
        free_mem[slot] -= mem;
        assignments.push((sb.id, NodeId(slot as u32)));
        rr_cursor = (slot + 1) % n;
    }
    Ok(Placement { assignments })
}

/// Extra per-request invocation latency this placement adds: each stage's
/// remote wraps that land on a different node than the stage's primary
/// wrap pay `cross_node_extra` on invocation and return.
pub fn placement_overhead(
    plan: &DeploymentPlan,
    placement: &Placement,
    cluster: &ClusterConfig,
) -> SimDuration {
    let mut extra = SimDuration::ZERO;
    for stage in &plan.stages {
        let primary = placement
            .node_of(stage.wraps[0].sandbox)
            .expect("placed plan");
        let mut worst = SimDuration::ZERO;
        for wrap in stage.wraps.iter().skip(1) {
            if placement.node_of(wrap.sandbox) != Some(primary) {
                worst = cluster.cross_node_extra * 2; // invoke + return
            }
        }
        extra += worst;
    }
    extra
}

/// Centralised vs decentralised request scheduling (§7): a centralised
/// scheduler interposes one extra gateway round trip per stage handled by
/// a remote wrap; decentralised scheduling lets wraps invoke each other
/// directly. Returns `(centralised, decentralised)` per-request overheads.
pub fn scheduling_architectures(
    plan: &DeploymentPlan,
    costs: &CostModel,
) -> (SimDuration, SimDuration) {
    let mut central = SimDuration::ZERO;
    let mut decentral = SimDuration::ZERO;
    for stage in &plan.stages {
        let remote_wraps = stage.wraps.len().saturating_sub(1) as u64;
        if remote_wraps > 0 {
            // Central: every remote invocation detours through the
            // scheduler (one extra T_RPC each, serialised issuance).
            central += (costs.rpc + costs.inv) * remote_wraps;
            // Decentralised: wrap 1 invokes peers directly.
            decentral += costs.inv * remote_wraps;
        }
    }
    (central, decentral)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planners;
    use chiron_model::apps;

    #[test]
    fn pack_uses_fewest_nodes() {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf); // 3 sandboxes × 5 CPUs
        let cluster = ClusterConfig::paper_testbed();
        let packed = place(&plan, &wf, &cluster, PlacementPolicy::Pack).unwrap();
        assert_eq!(packed.nodes_used(), 1, "15 CPUs fit one 40-CPU node");
        let spread = place(&plan, &wf, &cluster, PlacementPolicy::Spread).unwrap();
        assert_eq!(spread.nodes_used(), 3);
    }

    #[test]
    fn capacity_is_respected() {
        let wf = apps::finra(200);
        let plan = planners::faastlane_plus(&wf); // 40 sandboxes × 5 CPUs
        let cluster = ClusterConfig::paper_testbed();
        let placed = place(&plan, &wf, &cluster, PlacementPolicy::Pack).unwrap();
        // 200 CPUs over 40-CPU nodes: at least 5 nodes.
        assert!(placed.nodes_used() >= 5);
        // No node oversubscribed: recompute usage.
        let mut used = std::collections::HashMap::new();
        for (sb, node) in &placed.assignments {
            *used.entry(*node).or_insert(0u32) += plan.sandbox(*sb).unwrap().cpus;
        }
        for (&node, &cpus) in &used {
            assert!(cpus <= 40, "{node:?} has {cpus} CPUs");
        }
    }

    #[test]
    fn oversized_sandbox_rejected() {
        let wf = apps::finra(50);
        let mut plan = planners::faastlane(&wf);
        plan.sandboxes[0].cpus = 64; // exceeds a 40-CPU node
        let cluster = ClusterConfig::paper_testbed();
        assert_eq!(
            place(&plan, &wf, &cluster, PlacementPolicy::Pack).unwrap_err(),
            PlacementError::SandboxTooLarge(plan.sandboxes[0].id)
        );
    }

    #[test]
    fn cluster_full_detected() {
        let wf = apps::finra(200);
        let plan = planners::faastlane_plus(&wf); // 200 CPUs demanded
        let tiny = ClusterConfig { nodes: 2, ..ClusterConfig::paper_testbed() };
        assert_eq!(
            place(&plan, &wf, &tiny, PlacementPolicy::Pack).unwrap_err(),
            PlacementError::ClusterFull
        );
    }

    #[test]
    fn packed_placement_avoids_cross_node_overhead() {
        let wf = apps::finra(12);
        let plan = planners::faastlane_plus(&wf);
        let cluster = ClusterConfig::paper_testbed();
        let packed = place(&plan, &wf, &cluster, PlacementPolicy::Pack).unwrap();
        let spread = place(&plan, &wf, &cluster, PlacementPolicy::Spread).unwrap();
        let packed_extra = placement_overhead(&plan, &packed, &cluster);
        let spread_extra = placement_overhead(&plan, &spread, &cluster);
        assert_eq!(packed_extra, SimDuration::ZERO);
        assert!(spread_extra > SimDuration::ZERO);
    }

    #[test]
    fn decentralised_scheduling_is_cheaper() {
        let wf = apps::finra(50);
        let profile = chiron_profiler::Profiler::default().profile_workflow(&wf);
        let out = planners::chiron_m(&wf, &profile, None);
        let costs = CostModel::paper_calibrated();
        let (central, decentral) = scheduling_architectures(&out.plan, &costs);
        if out.plan.max_wraps_per_stage() > 1 {
            assert!(decentral < central);
        } else {
            assert_eq!(central, decentral);
        }
    }

    #[test]
    fn single_sandbox_plan_places_trivially() {
        let wf = apps::finra(5);
        let plan = planners::faastlane(&wf);
        let cluster = ClusterConfig::paper_testbed();
        let placed = place(&plan, &wf, &cluster, PlacementPolicy::Spread).unwrap();
        assert_eq!(placed.assignments.len(), 1);
        assert_eq!(placement_overhead(&plan, &placed, &cluster), SimDuration::ZERO);
    }
}
