//! Deployment planners for every system of the evaluation (§6, "Metrics
//! and comparison algorithms"):
//!
//! * **ASF** and **OpenFaaS** — the one-to-one model: one sandbox per
//!   function, object-store data passing, gateway scheduling.
//! * **SAND** — many-to-one with one forked process per function.
//! * **Faastlane** — many-to-one with threads for sequential stages and
//!   forked processes for parallel stages.
//! * **Faastlane-T** — threads only; **Faastlane+** — fixed five processes
//!   per sandbox (a static m-to-n); **Faastlane-M** — Faastlane with Intel
//!   MPK; **Faastlane-P** — Faastlane with a process pool.
//! * **Chiron / Chiron-M / Chiron-P** — PGP-scheduled plans (delegated to
//!   `chiron-pgp`).
//!
//! Uniform resource allocation (Observation 4) is baked into the
//! baselines: one CPU per function for one-to-one systems, max-parallelism
//! CPUs for the many-to-one systems.

use chiron_model::plan::{
    DeploymentPlan, IsolationKind, ProcessPlan, RuntimeKind, SandboxId, SandboxPlan,
    SchedulingKind, StagePlan, SystemKind, TransferKind, WrapPlan,
};
use chiron_model::{SimDuration, Workflow};
use chiron_pgp::{PgpConfig, PgpMode, PgpScheduler, PrewarmBudget, ScheduleOutcome};
use chiron_profiler::WorkflowProfile;

/// Number of processes Faastlane+ fixes per sandbox (§2.2).
pub const FAASTLANE_PLUS_PROCS_PER_SANDBOX: usize = 5;

fn single_sandbox(cpus: u32, pool_size: u32) -> Vec<SandboxPlan> {
    vec![SandboxPlan {
        id: SandboxId(0),
        cpus,
        pool_size,
    }]
}

/// One-to-one plan: every function in its own single-CPU sandbox.
fn one_to_one(
    workflow: &Workflow,
    system: SystemKind,
    transfer: TransferKind,
    scheduling: SchedulingKind,
) -> DeploymentPlan {
    let mut sandboxes = Vec::with_capacity(workflow.function_count());
    let mut stages = Vec::with_capacity(workflow.stage_count());
    let mut next = 0u32;
    for stage in &workflow.stages {
        let wraps = stage
            .functions
            .iter()
            .map(|&f| {
                let id = SandboxId(next);
                next += 1;
                sandboxes.push(SandboxPlan {
                    id,
                    cpus: 1,
                    pool_size: 0,
                });
                WrapPlan {
                    sandbox: id,
                    processes: vec![ProcessPlan::main_reuse(vec![f])],
                }
            })
            .collect();
        stages.push(StagePlan { wraps });
    }
    DeploymentPlan {
        system,
        workflow: workflow.name.clone(),
        runtime: RuntimeKind::PseudoParallel,
        isolation: IsolationKind::None,
        transfer,
        scheduling,
        sandboxes,
        stages,
    }
}

/// AWS Step Functions: one-to-one, S3 data passing, wave scheduling.
pub fn asf(workflow: &Workflow) -> DeploymentPlan {
    one_to_one(
        workflow,
        SystemKind::Asf,
        TransferKind::RemoteS3,
        SchedulingKind::Asf,
    )
}

/// OpenFaaS: one-to-one, MinIO data passing, local gateway.
pub fn openfaas(workflow: &Workflow) -> DeploymentPlan {
    one_to_one(
        workflow,
        SystemKind::OpenFaas,
        TransferKind::LocalMinio,
        SchedulingKind::OpenFaasGateway,
    )
}

/// SAND: application-level sandboxing — one shared sandbox, every function
/// executed in a separate forked process.
pub fn sand(workflow: &Workflow) -> DeploymentPlan {
    let cpus = workflow.max_parallelism() as u32;
    let stages = workflow
        .stages
        .iter()
        .map(|stage| StagePlan {
            wraps: vec![WrapPlan {
                sandbox: SandboxId(0),
                processes: stage
                    .functions
                    .iter()
                    .map(|&f| ProcessPlan::forked(vec![f]))
                    .collect(),
            }],
        })
        .collect();
    DeploymentPlan {
        system: SystemKind::Sand,
        workflow: workflow.name.clone(),
        runtime: RuntimeKind::PseudoParallel,
        isolation: IsolationKind::None,
        transfer: TransferKind::RpcPayload,
        scheduling: SchedulingKind::PreDeployed,
        sandboxes: single_sandbox(cpus, 0),
        stages,
    }
}

/// Faastlane: threads for sequential stages (zero interaction cost),
/// forked processes for parallel stages (true parallelism).
pub fn faastlane(workflow: &Workflow) -> DeploymentPlan {
    let cpus = workflow.max_parallelism() as u32;
    let stages = workflow
        .stages
        .iter()
        .map(|stage| StagePlan {
            wraps: vec![WrapPlan {
                sandbox: SandboxId(0),
                processes: if stage.parallelism() == 1 {
                    vec![ProcessPlan::main_reuse(stage.functions.clone())]
                } else {
                    stage
                        .functions
                        .iter()
                        .map(|&f| ProcessPlan::forked(vec![f]))
                        .collect()
                },
            }],
        })
        .collect();
    DeploymentPlan {
        system: SystemKind::Faastlane,
        workflow: workflow.name.clone(),
        runtime: RuntimeKind::PseudoParallel,
        isolation: IsolationKind::None,
        transfer: TransferKind::RpcPayload,
        scheduling: SchedulingKind::PreDeployed,
        sandboxes: single_sandbox(cpus, 0),
        stages,
    }
}

/// Faastlane-T: every function of every stage as a thread of the
/// orchestrator process (§2.2's thread-only configuration).
pub fn faastlane_t(workflow: &Workflow) -> DeploymentPlan {
    let mut plan = faastlane(workflow);
    plan.system = SystemKind::FaastlaneT;
    for (si, stage) in workflow.stages.iter().enumerate() {
        plan.stages[si].wraps[0].processes = vec![ProcessPlan::main_reuse(stage.functions.clone())];
    }
    // The GIL admits one running thread; blocking ops overlap for free.
    plan.sandboxes = single_sandbox(1, 0);
    plan
}

/// Faastlane+: a fixed five processes per sandbox (§2.2's static m-to-n
/// configuration).
pub fn faastlane_plus(workflow: &Workflow) -> DeploymentPlan {
    let per = FAASTLANE_PLUS_PROCS_PER_SANDBOX;
    let mut n_sandboxes = 1usize;
    let mut stages = Vec::with_capacity(workflow.stage_count());
    for stage in &workflow.stages {
        if stage.parallelism() == 1 {
            stages.push(StagePlan {
                wraps: vec![WrapPlan {
                    sandbox: SandboxId(0),
                    processes: vec![ProcessPlan::main_reuse(stage.functions.clone())],
                }],
            });
            continue;
        }
        let mut wraps: Vec<WrapPlan> = Vec::new();
        for (i, chunk) in stage.functions.chunks(per).enumerate() {
            wraps.push(WrapPlan {
                sandbox: SandboxId(i as u32),
                processes: chunk
                    .iter()
                    .map(|&f| ProcessPlan::forked(vec![f]))
                    .collect(),
            });
        }
        n_sandboxes = n_sandboxes.max(wraps.len());
        stages.push(StagePlan { wraps });
    }
    let sandboxes = (0..n_sandboxes as u32)
        .map(|i| SandboxPlan {
            id: SandboxId(i),
            cpus: per as u32,
            pool_size: 0,
        })
        .collect();
    DeploymentPlan {
        system: SystemKind::FaastlanePlus,
        workflow: workflow.name.clone(),
        runtime: RuntimeKind::PseudoParallel,
        isolation: IsolationKind::None,
        transfer: TransferKind::RpcPayload,
        scheduling: SchedulingKind::PreDeployed,
        sandboxes,
        stages,
    }
}

/// Faastlane-M: Faastlane with Intel MPK protecting thread execution.
pub fn faastlane_m(workflow: &Workflow) -> DeploymentPlan {
    let mut plan = faastlane(workflow);
    plan.system = SystemKind::FaastlaneM;
    plan.isolation = IsolationKind::Mpk;
    plan
}

/// Faastlane-P: parallel stages dispatched onto a pre-forked process pool
/// sized to the maximum parallelism (uniform allocation).
pub fn faastlane_p(workflow: &Workflow) -> DeploymentPlan {
    let par = workflow.max_parallelism() as u32;
    let mut plan = faastlane(workflow);
    plan.system = SystemKind::FaastlaneP;
    plan.sandboxes = single_sandbox(par, par);
    for (si, stage) in workflow.stages.iter().enumerate() {
        if stage.parallelism() > 1 {
            plan.stages[si].wraps[0].processes = stage
                .functions
                .iter()
                .map(|&f| ProcessPlan::pooled(vec![f]))
                .collect();
        }
    }
    plan
}

/// Chiron: the PGP-scheduled m-to-n plan with combined processes/threads.
pub fn chiron(
    workflow: &Workflow,
    profile: &WorkflowProfile,
    slo: Option<SimDuration>,
) -> ScheduleOutcome {
    chiron_with_mode(workflow, profile, slo, PgpMode::NativeThread)
}

/// Chiron-M: PGP with Intel MPK thread isolation (§4).
pub fn chiron_m(
    workflow: &Workflow,
    profile: &WorkflowProfile,
    slo: Option<SimDuration>,
) -> ScheduleOutcome {
    chiron_with_mode(workflow, profile, slo, PgpMode::Mpk)
}

/// Chiron-P: PGP with a single pool-based wrap (§4).
pub fn chiron_p(
    workflow: &Workflow,
    profile: &WorkflowProfile,
    slo: Option<SimDuration>,
) -> ScheduleOutcome {
    chiron_with_mode(workflow, profile, slo, PgpMode::Pool)
}

fn chiron_with_mode(
    workflow: &Workflow,
    profile: &WorkflowProfile,
    slo: Option<SimDuration>,
    mode: PgpMode,
) -> ScheduleOutcome {
    let config = match slo {
        Some(slo) => PgpConfig::with_slo(slo).with_mode(mode),
        None => PgpConfig::performance_first().with_mode(mode),
    };
    PgpScheduler::paper_calibrated().schedule(workflow, profile, &config)
}

/// Chiron co-optimised against a prewarm budget: PGP's objective adds the
/// amortised startup exposure each candidate plan's footprint leaves
/// uncovered under `budget` (see [`chiron_pgp::PrewarmBudget`]), biasing
/// the search toward plans whose tier pools are cheap to keep warm.
pub fn chiron_prewarmed(
    workflow: &Workflow,
    profile: &WorkflowProfile,
    slo: Option<SimDuration>,
    budget: PrewarmBudget,
) -> ScheduleOutcome {
    let config = match slo {
        Some(slo) => PgpConfig::with_slo(slo),
        None => PgpConfig::performance_first(),
    }
    .with_prewarm(budget);
    PgpScheduler::paper_calibrated().schedule(workflow, profile, &config)
}

/// Converts any plan to the Java / no-GIL runtime (Fig. 18): threads gain
/// true parallelism; everything else is unchanged.
pub fn to_java(mut plan: DeploymentPlan) -> DeploymentPlan {
    plan.runtime = RuntimeKind::TrueParallel;
    plan
}

/// Builds the plan for any baseline system (the `SystemKind`s that do not
/// need a profile or SLO).
pub fn baseline(system: SystemKind, workflow: &Workflow) -> Option<DeploymentPlan> {
    Some(match system {
        SystemKind::Asf => asf(workflow),
        SystemKind::OpenFaas => openfaas(workflow),
        SystemKind::Sand => sand(workflow),
        SystemKind::Faastlane => faastlane(workflow),
        SystemKind::FaastlaneT => faastlane_t(workflow),
        SystemKind::FaastlanePlus => faastlane_plus(workflow),
        SystemKind::FaastlaneM => faastlane_m(workflow),
        SystemKind::FaastlaneP => faastlane_p(workflow),
        SystemKind::Chiron | SystemKind::ChironM | SystemKind::ChironP => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::{apps, FunctionId};
    use chiron_profiler::Profiler;

    fn stage_sets(wf: &Workflow) -> Vec<Vec<FunctionId>> {
        wf.stages.iter().map(|s| s.functions.clone()).collect()
    }

    #[test]
    fn all_baselines_validate_on_all_benchmarks() {
        let systems = [
            SystemKind::Asf,
            SystemKind::OpenFaas,
            SystemKind::Sand,
            SystemKind::Faastlane,
            SystemKind::FaastlaneT,
            SystemKind::FaastlanePlus,
            SystemKind::FaastlaneM,
            SystemKind::FaastlaneP,
        ];
        for wf in apps::evaluation_suite() {
            for sys in systems {
                let plan = baseline(sys, &wf).expect("baseline plan");
                plan.validate(&stage_sets(&wf))
                    .unwrap_or_else(|e| panic!("{sys} on {}: {e}", wf.name));
                assert_eq!(plan.system, sys);
            }
        }
    }

    #[test]
    fn one_to_one_has_one_sandbox_per_function() {
        let wf = apps::social_network();
        let plan = openfaas(&wf);
        assert_eq!(plan.sandbox_count(), 10);
        assert_eq!(plan.total_cpus(), 10);
        assert_eq!(plan.transfer, TransferKind::LocalMinio);
    }

    #[test]
    fn asf_uses_s3_and_wave_scheduling() {
        let wf = apps::finra(5);
        let plan = asf(&wf);
        assert_eq!(plan.transfer, TransferKind::RemoteS3);
        assert_eq!(plan.scheduling, SchedulingKind::Asf);
    }

    #[test]
    fn faastlane_mixes_threads_and_processes() {
        let wf = apps::finra(5);
        let plan = faastlane(&wf);
        // Stage 1 (sequential): orchestrator thread.
        assert_eq!(plan.stages[0].wraps[0].processes.len(), 1);
        assert_eq!(
            plan.stages[0].wraps[0].processes[0].spawn,
            chiron_model::ProcessSpawn::MainReuse
        );
        // Stage 2 (parallel): five forked processes.
        assert_eq!(plan.stages[1].wraps[0].processes.len(), 5);
        assert_eq!(plan.total_cpus(), 5);
    }

    #[test]
    fn faastlane_plus_packs_five_per_sandbox() {
        let wf = apps::finra(12);
        let plan = faastlane_plus(&wf);
        assert_eq!(plan.stages[1].wraps.len(), 3); // 5 + 5 + 2
        assert_eq!(plan.stages[1].wraps[0].processes.len(), 5);
        assert_eq!(plan.stages[1].wraps[2].processes.len(), 2);
        assert_eq!(plan.sandbox_count(), 3);
    }

    #[test]
    fn pool_variant_uses_pool_spawn() {
        let wf = apps::finra(5);
        let plan = faastlane_p(&wf);
        assert_eq!(plan.sandboxes[0].pool_size, 5);
        for proc in &plan.stages[1].wraps[0].processes {
            assert_eq!(proc.spawn, chiron_model::ProcessSpawn::Pool);
        }
    }

    #[test]
    fn chiron_plans_validate() {
        for wf in [apps::finra(5), apps::slapp()] {
            let profile = Profiler::default().profile_workflow(&wf);
            for out in [
                chiron(&wf, &profile, None),
                chiron_m(&wf, &profile, None),
                chiron_p(&wf, &profile, None),
            ] {
                out.plan.validate(&stage_sets(&wf)).unwrap();
            }
        }
    }

    #[test]
    fn java_mode_switches_runtime() {
        let wf = apps::slapp();
        let plan = to_java(faastlane_t(&wf));
        assert_eq!(plan.runtime, RuntimeKind::TrueParallel);
    }
}
