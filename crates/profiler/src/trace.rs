//! strace-style solo-run tracing (Fig. 10).
//!
//! Attaching a tracer to a function records, for every blocking syscall,
//! its start timestamp (relative to function start), its name, and its
//! duration — and nothing about CPU periods, which must be deduced as the
//! gaps between syscalls. Tracing also inflates the observed syscall
//! durations (ptrace stops are not free); the Profiler corrects for this
//! downstream.

use chiron_model::{FunctionSpec, Segment, SimDuration};
use serde::{Deserialize, Serialize};

/// One line of the strace log: `<ts> <syscall>() = ... <<dur>>`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StraceRecord {
    /// Offset from function start at which the syscall was entered.
    pub start: SimDuration,
    /// Representative syscall name (`read`, `sendto`, `select`, ...).
    pub syscall: &'static str,
    /// Observed (tracer-inflated) duration of the syscall.
    pub duration: SimDuration,
}

/// Relative inflation strace imposes on blocking syscalls (ptrace stops on
/// entry and exit). 8 % is representative of strace on short syscalls.
pub const STRACE_OVERHEAD: f64 = 0.08;

/// Traces one solo run of `spec` and returns the strace log plus the total
/// (traced) run latency.
///
/// CPU periods are invisible to the tracer; only blocking syscalls appear,
/// with durations inflated by [`STRACE_OVERHEAD`].
pub fn strace_solo(spec: &FunctionSpec) -> (Vec<StraceRecord>, SimDuration) {
    let mut records = Vec::new();
    let mut clock = SimDuration::ZERO;
    for &seg in &spec.segments {
        match seg {
            Segment::Cpu(d) => clock += d,
            Segment::Block { kind, dur } => {
                let observed = dur.mul_f64(1.0 + STRACE_OVERHEAD);
                records.push(StraceRecord {
                    start: clock,
                    syscall: kind.syscall_name(),
                    duration: observed,
                });
                clock += observed;
            }
        }
    }
    (records, clock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::SyscallKind;

    /// Mirrors Fig. 10: sleep(1s), then a file write and read.
    fn figure_10_function() -> FunctionSpec {
        FunctionSpec::new(
            "handle",
            vec![
                Segment::cpu_ms(48),
                Segment::block_ms(SyscallKind::Sleep, 1001.0),
                Segment::cpu_ms(21),
                Segment::block_ms(SyscallKind::DiskIo, 0.042),
                Segment::cpu_ms(11),
                Segment::block_ms(SyscallKind::DiskIo, 0.025),
            ],
        )
    }

    #[test]
    fn records_each_blocking_syscall() {
        let (log, _) = strace_solo(&figure_10_function());
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].syscall, "select");
        assert_eq!(log[0].start.as_millis_f64(), 48.0);
        assert_eq!(log[1].syscall, "read");
        assert_eq!(log[2].syscall, "read");
    }

    #[test]
    fn durations_are_inflated() {
        let (log, total) = strace_solo(&figure_10_function());
        let sleep = log[0].duration.as_millis_f64();
        assert!(sleep > 1001.0, "tracing overhead missing: {sleep}");
        assert!((sleep - 1001.0 * 1.08).abs() < 0.5);
        // The traced run is longer than the clean solo latency.
        let clean = figure_10_function().solo_latency();
        assert!(total > clean);
    }

    #[test]
    fn cpu_only_function_produces_empty_log() {
        let f = FunctionSpec::new("cpu", vec![Segment::cpu_ms(10)]);
        let (log, total) = strace_solo(&f);
        assert!(log.is_empty());
        assert_eq!(total.as_millis_f64(), 10.0);
    }

    #[test]
    fn starts_are_monotone() {
        let (log, _) = strace_solo(&figure_10_function());
        for w in log.windows(2) {
            assert!(w[0].start < w[1].start);
        }
    }
}
