//! # chiron-profiler
//!
//! The Profiler of Chiron's pipeline (Fig. 9 step ➋, §3.2): it observes each
//! function in a solo run under an strace-style tracer, extracts the block
//! periods from blocking syscalls, rescales them by the untraced solo
//! latency to cancel the tracing overhead, and emits per-function profiles
//! that the Predictor consumes.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod profile;
pub mod trace;

pub use profile::{BlockPeriod, FunctionProfile, Profiler, WorkflowProfile};
pub use trace::{strace_solo, StraceRecord, STRACE_OVERHEAD};
