//! Function profiles: block periods + solo latency, reconstructed from
//! strace logs with the §3.2 rescaling correction.

use crate::trace::{strace_solo, StraceRecord};
use chiron_model::{
    FunctionId, FunctionSpec, JitterModel, Segment, SimDuration, SyscallKind, Workflow,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One extracted block period, relative to function start (Fig. 10's
/// "block period" lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPeriod {
    pub start: SimDuration,
    pub dur: SimDuration,
    pub kind: SyscallKind,
}

/// What the Profiler learned about one function from its solo runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionProfile {
    pub function: FunctionId,
    pub name: String,
    /// Mean solo-run latency measured *without* strace.
    pub solo_latency: SimDuration,
    /// Block periods rescaled onto the untraced timeline.
    pub blocks: Vec<BlockPeriod>,
}

impl FunctionProfile {
    /// Total blocked time.
    pub fn block_time(&self) -> SimDuration {
        self.blocks.iter().map(|b| b.dur).sum()
    }

    /// Deduced CPU time (everything that is not a block period).
    pub fn cpu_time(&self) -> SimDuration {
        self.solo_latency.saturating_sub(self.block_time())
    }

    /// Reconstructs a segment list (alternating CPU / block) usable by the
    /// Predictor's Algorithm 1 simulation.
    pub fn segments(&self) -> Vec<Segment> {
        let mut segments = Vec::with_capacity(self.blocks.len() * 2 + 1);
        let mut cursor = SimDuration::ZERO;
        for b in &self.blocks {
            if b.start > cursor {
                segments.push(Segment::Cpu(b.start - cursor));
            }
            segments.push(Segment::Block {
                kind: b.kind,
                dur: b.dur,
            });
            cursor = b.start + b.dur;
        }
        if self.solo_latency > cursor {
            segments.push(Segment::Cpu(self.solo_latency - cursor));
        }
        segments
    }
}

/// Profiles of every function in a workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowProfile {
    pub workflow: String,
    pub functions: Vec<FunctionProfile>,
}

impl WorkflowProfile {
    pub fn function(&self, id: FunctionId) -> &FunctionProfile {
        &self.functions[id.index()]
    }
}

/// The Profiler: runs each function solo (traced and untraced), averages
/// over repetitions, and applies the strace-overhead rescaling.
#[derive(Debug, Clone)]
pub struct Profiler {
    /// Solo runs averaged for the untraced latency measurement.
    pub repetitions: u32,
    /// Measurement noise on the observed runs (a real cluster's runs vary;
    /// `JitterModel::NONE` gives exact profiles).
    pub noise: JitterModel,
    pub seed: u64,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler {
            repetitions: 10,
            noise: JitterModel::NONE,
            seed: 0x5eed,
        }
    }
}

impl Profiler {
    pub fn with_noise(mut self, noise: JitterModel) -> Self {
        self.noise = noise;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Profiles one function (§3.2):
    ///
    /// 1. run untraced `repetitions` times → mean solo latency;
    /// 2. run once under strace → block periods (tracer-inflated);
    /// 3. scale all block periods down by `untraced / traced` so they fit
    ///    the untraced timeline.
    pub fn profile_function(&self, id: FunctionId, spec: &FunctionSpec) -> FunctionProfile {
        let mut rng = StdRng::seed_from_u64(self.seed ^ u64::from(id.0));
        let clean_mean = self.mean_untraced_latency(spec, &mut rng);
        let (log, traced_total) = strace_solo(spec);
        let scale = if traced_total.is_zero() {
            1.0
        } else {
            clean_mean.as_millis_f64() / traced_total.as_millis_f64()
        };
        let blocks = log
            .iter()
            .map(|r: &StraceRecord| BlockPeriod {
                start: r.start.mul_f64(scale),
                dur: r.duration.mul_f64(scale),
                kind: syscall_kind(r.syscall),
            })
            .collect();
        FunctionProfile {
            function: id,
            name: spec.name.clone(),
            solo_latency: clean_mean,
            blocks,
        }
    }

    /// Profiles every function of a workflow.
    pub fn profile_workflow(&self, workflow: &Workflow) -> WorkflowProfile {
        WorkflowProfile {
            workflow: workflow.name.clone(),
            functions: workflow
                .functions
                .iter()
                .enumerate()
                .map(|(i, spec)| self.profile_function(FunctionId(i as u32), spec))
                .collect(),
        }
    }

    fn mean_untraced_latency(&self, spec: &FunctionSpec, rng: &mut StdRng) -> SimDuration {
        let reps = self.repetitions.max(1);
        let mut total_ns: u128 = 0;
        for _ in 0..reps {
            let mut run = SimDuration::ZERO;
            for &seg in &spec.segments {
                let rel_std = match seg {
                    Segment::Cpu(_) => self.noise.cpu_rel_std,
                    Segment::Block { .. } => self.noise.io_rel_std,
                };
                run += jittered(seg.duration(), rel_std, rng);
            }
            total_ns += run.as_nanos() as u128;
        }
        SimDuration::from_nanos((total_ns / u128::from(reps)) as u64)
    }
}

fn jittered(d: SimDuration, rel_std: f64, rng: &mut StdRng) -> SimDuration {
    if rel_std == 0.0 {
        return d;
    }
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    d.mul_f64((rel_std * z - rel_std * rel_std / 2.0).exp())
}

fn syscall_kind(name: &str) -> SyscallKind {
    match name {
        "read" | "write" => SyscallKind::DiskIo,
        "select" => SyscallKind::Sleep,
        _ => SyscallKind::NetIo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::apps;

    fn spec() -> FunctionSpec {
        FunctionSpec::new(
            "f",
            vec![
                Segment::cpu_ms(10),
                Segment::block_ms(SyscallKind::NetIo, 20.0),
                Segment::cpu_ms(5),
            ],
        )
    }

    #[test]
    fn exact_profile_without_noise() {
        let p = Profiler::default();
        let prof = p.profile_function(FunctionId(0), &spec());
        assert_eq!(prof.solo_latency.as_millis_f64(), 35.0);
        assert_eq!(prof.blocks.len(), 1);
        // Rescaling cancels the strace inflation to within rounding.
        let block_ms = prof.blocks[0].dur.as_millis_f64();
        assert!((block_ms - 20.0).abs() < 1.0, "block {block_ms}");
        let cpu = prof.cpu_time().as_millis_f64();
        assert!((cpu - 15.0).abs() < 1.0, "cpu {cpu}");
    }

    #[test]
    fn segment_reconstruction_roundtrip() {
        let p = Profiler::default();
        let prof = p.profile_function(FunctionId(0), &spec());
        let segs = prof.segments();
        assert_eq!(segs.len(), 3);
        assert!(segs[0].is_cpu());
        assert!(!segs[1].is_cpu());
        assert!(segs[2].is_cpu());
        let total: SimDuration = segs.iter().map(|s| s.duration()).sum();
        assert_eq!(total, prof.solo_latency);
    }

    #[test]
    fn rescaling_beats_raw_traced_blocks() {
        // Without rescaling the block estimate would be 8% high.
        let p = Profiler::default();
        let prof = p.profile_function(FunctionId(0), &spec());
        let err = (prof.blocks[0].dur.as_millis_f64() - 20.0).abs() / 20.0;
        assert!(err < crate::trace::STRACE_OVERHEAD / 2.0, "residual {err}");
    }

    #[test]
    fn noisy_profile_is_deterministic_per_seed() {
        let noisy = Profiler::default().with_noise(JitterModel::cluster());
        let a = noisy.profile_function(FunctionId(3), &spec());
        let b = noisy.profile_function(FunctionId(3), &spec());
        assert_eq!(a, b);
        let other_seed = noisy
            .clone()
            .with_seed(99)
            .profile_function(FunctionId(3), &spec());
        assert_ne!(a.solo_latency, other_seed.solo_latency);
    }

    #[test]
    fn noisy_profile_is_close_to_truth() {
        let noisy = Profiler::default().with_noise(JitterModel::cluster());
        let prof = noisy.profile_function(FunctionId(1), &spec());
        let rel = (prof.solo_latency.as_millis_f64() - 35.0).abs() / 35.0;
        assert!(rel < 0.15, "profiled latency off by {rel}");
    }

    #[test]
    fn workflow_profile_covers_all_functions() {
        let wf = apps::social_network();
        let prof = Profiler::default().profile_workflow(&wf);
        assert_eq!(prof.functions.len(), wf.function_count());
        for (i, fp) in prof.functions.iter().enumerate() {
            assert_eq!(fp.function, FunctionId(i as u32));
            assert!(!fp.solo_latency.is_zero());
        }
        assert_eq!(prof.workflow, "SocialNetwork");
    }

    #[test]
    fn cpu_only_function() {
        let f = FunctionSpec::new("cpu", vec![Segment::cpu_ms(7)]);
        let prof = Profiler::default().profile_function(FunctionId(0), &f);
        assert!(prof.blocks.is_empty());
        assert_eq!(prof.cpu_time().as_millis_f64(), 7.0);
        assert_eq!(prof.segments(), vec![Segment::cpu_ms(7)]);
    }
}
