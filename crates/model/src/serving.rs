//! Replica and keepalive configuration for online serving.
//!
//! A *replica* is one placed copy of a deployment's full wrap set; the
//! serving control plane (`chiron-serve`) scales the replica count with
//! load. These types live in the shared model so planners, the cluster
//! substrate, and the serving simulator agree on the vocabulary.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Identifier of one replica of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(pub u32);

impl std::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica{}", self.0)
    }
}

/// Replica-count bounds and warm-capacity policy for one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaConfig {
    /// Floor the autoscaler never goes below.
    pub min_replicas: u32,
    /// Ceiling the autoscaler never exceeds (cluster capacity may bind
    /// earlier).
    pub max_replicas: u32,
    /// How long an idle replica is kept warm before it is retired and its
    /// resources returned to the cluster. While kept alive, a replica
    /// serves new requests with zero start-up cost.
    pub keepalive: SimDuration,
    /// Pre-initialised sandbox sets held in reserve: a scale-up that can
    /// draw from the prewarm pool skips the sandbox cold start. The pool
    /// restocks in the background (modelled as one cold start that is off
    /// the request path).
    pub prewarm_pool: u32,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            min_replicas: 1,
            max_replicas: 64,
            // FaaS platforms commonly keep sandboxes warm for minutes;
            // 10 min matches the keepalive the paper's testbed platforms
            // (OpenFaaS-class) default to.
            keepalive: SimDuration::from_secs(600),
            prewarm_pool: 0,
        }
    }
}

impl ReplicaConfig {
    pub fn with_bounds(mut self, min: u32, max: u32) -> Self {
        assert!(min >= 1 && min <= max, "need 1 <= min <= max");
        self.min_replicas = min;
        self.max_replicas = max;
        self
    }

    pub fn with_keepalive(mut self, keepalive: SimDuration) -> Self {
        self.keepalive = keepalive;
        self
    }

    pub fn with_prewarm_pool(mut self, slots: u32) -> Self {
        self.prewarm_pool = slots;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ReplicaConfig::default();
        assert!(c.min_replicas >= 1);
        assert!(c.max_replicas >= c.min_replicas);
        assert!(!c.keepalive.is_zero());
    }

    #[test]
    fn builders_compose() {
        let c = ReplicaConfig::default()
            .with_bounds(2, 16)
            .with_keepalive(SimDuration::from_secs(30))
            .with_prewarm_pool(4);
        assert_eq!((c.min_replicas, c.max_replicas), (2, 16));
        assert_eq!(c.keepalive, SimDuration::from_secs(30));
        assert_eq!(c.prewarm_pool, 4);
    }

    #[test]
    #[should_panic(expected = "need 1 <= min <= max")]
    fn zero_min_rejected() {
        let _ = ReplicaConfig::default().with_bounds(0, 4);
    }
}
