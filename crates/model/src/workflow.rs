//! Serverless workflows as stage-structured DAGs.
//!
//! Following §3.3: "Serverless workflows comprise a sequence of execution
//! stages, wherein each stage includes one or more parallel functions."
//! Every function of stage *i* consumes the outputs of stage *i−1* and all
//! functions within a stage are mutually independent.

use crate::function::{FunctionId, FunctionSpec};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// One execution stage: a set of mutually parallel functions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    pub functions: Vec<FunctionId>,
}

impl Stage {
    pub fn parallelism(&self) -> usize {
        self.functions.len()
    }
}

/// A complete workflow definition as submitted by the user (step ➊ in
/// Fig. 9), together with the latency SLO used by PGP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    pub name: String,
    pub functions: Vec<FunctionSpec>,
    pub stages: Vec<Stage>,
}

/// Errors detected while validating a workflow definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// A stage references a function index outside the function table.
    UnknownFunction { stage: usize, id: FunctionId },
    /// A function appears in more than one stage (or twice in one stage).
    DuplicateFunction(FunctionId),
    /// A function is never referenced by any stage.
    OrphanFunction(FunctionId),
    /// The workflow has no stages.
    Empty,
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::UnknownFunction { stage, id } => {
                write!(f, "stage {stage} references unknown function {id}")
            }
            WorkflowError::DuplicateFunction(id) => {
                write!(f, "function {id} appears in more than one stage slot")
            }
            WorkflowError::OrphanFunction(id) => {
                write!(f, "function {id} is not referenced by any stage")
            }
            WorkflowError::Empty => write!(f, "workflow has no stages"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl Workflow {
    /// Builds and validates a workflow.
    pub fn new(
        name: impl Into<String>,
        functions: Vec<FunctionSpec>,
        stages: Vec<Vec<u32>>,
    ) -> Result<Self, WorkflowError> {
        let wf = Workflow {
            name: name.into(),
            functions,
            stages: stages
                .into_iter()
                .map(|fns| Stage {
                    functions: fns.into_iter().map(FunctionId).collect(),
                })
                .collect(),
        };
        wf.validate()?;
        Ok(wf)
    }

    pub fn validate(&self) -> Result<(), WorkflowError> {
        if self.stages.is_empty() {
            return Err(WorkflowError::Empty);
        }
        let n = self.functions.len();
        let mut seen = vec![false; n];
        for (si, stage) in self.stages.iter().enumerate() {
            for &id in &stage.functions {
                if id.index() >= n {
                    return Err(WorkflowError::UnknownFunction { stage: si, id });
                }
                if seen[id.index()] {
                    return Err(WorkflowError::DuplicateFunction(id));
                }
                seen[id.index()] = true;
            }
        }
        if let Some(idx) = seen.iter().position(|&s| !s) {
            return Err(WorkflowError::OrphanFunction(FunctionId(idx as u32)));
        }
        Ok(())
    }

    pub fn function(&self, id: FunctionId) -> &FunctionSpec {
        &self.functions[id.index()]
    }

    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The maximum parallelism `M` across all stages (Algorithm 2, line 1).
    pub fn max_parallelism(&self) -> usize {
        self.stages
            .iter()
            .map(Stage::parallelism)
            .max()
            .unwrap_or(0)
    }

    /// Whether the workflow contains any sequential (single-function) stage.
    ///
    /// SLApp deliberately has none (§6, benchmark list).
    pub fn has_sequential_stage(&self) -> bool {
        self.stages.iter().any(|s| s.parallelism() == 1)
    }

    /// Lower bound on end-to-end latency: each stage at least as slow as its
    /// slowest function running solo on a dedicated CPU.
    pub fn critical_path(&self) -> SimDuration {
        self.stages
            .iter()
            .map(|s| {
                s.functions
                    .iter()
                    .map(|&id| self.function(id).solo_latency())
                    .max()
                    .unwrap_or(SimDuration::ZERO)
            })
            .sum()
    }

    /// Sum of every function's solo latency (single-CPU work bound).
    pub fn total_work(&self) -> SimDuration {
        self.functions.iter().map(|f| f.solo_latency()).sum()
    }

    /// Total intermediate bytes crossing each stage boundary.
    pub fn stage_output_bytes(&self, stage: usize) -> u64 {
        self.stages[stage]
            .functions
            .iter()
            .map(|&id| self.function(id).output_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Segment;

    fn fns(n: usize) -> Vec<FunctionSpec> {
        (0..n)
            .map(|i| FunctionSpec::new(format!("f{i}"), vec![Segment::cpu_ms(i as u64 + 1)]))
            .collect()
    }

    #[test]
    fn valid_workflow() {
        let wf = Workflow::new("w", fns(4), vec![vec![0], vec![1, 2], vec![3]]).unwrap();
        assert_eq!(wf.stage_count(), 3);
        assert_eq!(wf.max_parallelism(), 2);
        assert!(wf.has_sequential_stage());
        // critical path: 1 + max(2,3) + 4 = 8ms
        assert_eq!(wf.critical_path().as_millis_f64(), 8.0);
        assert_eq!(wf.total_work().as_millis_f64(), 10.0);
    }

    #[test]
    fn rejects_duplicates() {
        let err = Workflow::new("w", fns(2), vec![vec![0], vec![0, 1]]).unwrap_err();
        assert_eq!(err, WorkflowError::DuplicateFunction(FunctionId(0)));
    }

    #[test]
    fn rejects_unknown() {
        let err = Workflow::new("w", fns(1), vec![vec![0, 5]]).unwrap_err();
        assert!(matches!(err, WorkflowError::UnknownFunction { .. }));
    }

    #[test]
    fn rejects_orphan() {
        let err = Workflow::new("w", fns(3), vec![vec![0], vec![2]]).unwrap_err();
        assert_eq!(err, WorkflowError::OrphanFunction(FunctionId(1)));
    }

    #[test]
    fn rejects_empty() {
        let err = Workflow::new("w", vec![], vec![]).unwrap_err();
        assert_eq!(err, WorkflowError::Empty);
    }

    #[test]
    fn stage_bytes() {
        let wf = Workflow::new("w", fns(3), vec![vec![0, 1], vec![2]]).unwrap();
        assert_eq!(wf.stage_output_bytes(0), 2 * (1 << 10));
    }
}
