//! Platform cost constants, calibrated from the paper's measurements.
//!
//! Every constant is documented with its source in the paper. `CostModel`
//! is consumed by the virtual platform (as ground-truth costs), by the
//! Predictor (as model parameters), and by PGP. The Predictor can also run
//! with [`CostModel::conservative`] parameters — §6.2: "Chiron adopts larger
//! parameters to estimate the latency, avoiding performance violation
//! resulting from mispredictions."

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Costs of starting, communicating and executing on the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cold start of a fresh sandbox (167 ms for a Python container, §1).
    pub sandbox_cold_start: SimDuration,
    /// `T_Startup`: fork syscall to first bytecode of the child (7.5 ms
    /// mean, Fig. 5).
    pub process_startup: SimDuration,
    /// `T_Block`: additional wait per fork queued ahead of a process
    /// (≈3.45 ms; 49 preceding forks → 169 ms, Observation 2).
    pub process_block: SimDuration,
    /// Thread clone cost (96 % below process startup, §1 ⇒ 0.3 ms).
    pub thread_clone: SimDuration,
    /// Dispatch of a task onto a pre-forked pool worker (§4).
    pub pool_dispatch: SimDuration,
    /// `T_IPC`: returning one process's result over a Linux pipe (≈1 ms,
    /// FINRA-5's 4.3 ms total interaction, Fig. 5).
    pub ipc_pipe: SimDuration,
    /// `T_RPC`: one wrap-to-wrap network invocation (gateway traversal,
    /// watchdog dispatch and response on the local cluster).
    pub rpc: SimDuration,
    /// `T_INV`: client-side overhead per additional invocation issued by
    /// wrap 1 (Eq. 2's `(k-1) × T_INV`) — serialising and issuing an async
    /// HTTP invocation from the orchestrator.
    pub inv: SimDuration,
    /// CPython's GIL switch interval (`sys.getswitchinterval()` = 5 ms).
    pub gil_switch_interval: SimDuration,
    /// Worker node CPU count (Table 2: Intel Xeon Gold 6230, 40 threads).
    pub node_cpus: u32,
    /// Worker node DRAM in bytes (Table 2: 128 GB).
    pub node_memory_bytes: u64,
    /// CPU base frequency in GHz (billing unit, §6.3).
    pub cpu_ghz: f64,
    /// Resident memory of the language runtime + libraries per sandbox
    /// (the redundancy the one-to-one model duplicates; ≈25 MB).
    pub sandbox_base_bytes: u64,
    /// Extra resident memory per forked process (copy-on-write leaves most
    /// pages shared; ≈1.6 MB private).
    pub process_overhead_bytes: u64,
    /// Extra resident memory per thread (stack + interpreter state).
    pub thread_overhead_bytes: u64,
    /// Resident memory per persistent pool worker. Pool workers hold a full
    /// private interpreter image (§6.3: "long-running processes consume
    /// more than 5× memory").
    pub pool_worker_bytes: u64,
}

impl CostModel {
    /// Constants calibrated from the paper (see DESIGN.md §4).
    pub fn paper_calibrated() -> Self {
        CostModel {
            sandbox_cold_start: SimDuration::from_millis(167),
            process_startup: SimDuration::from_millis_f64(7.5),
            process_block: SimDuration::from_millis_f64(3.45),
            thread_clone: SimDuration::from_millis_f64(0.3),
            pool_dispatch: SimDuration::from_millis_f64(0.2),
            ipc_pipe: SimDuration::from_millis_f64(1.0),
            rpc: SimDuration::from_millis_f64(5.0),
            inv: SimDuration::from_millis_f64(1.5),
            gil_switch_interval: SimDuration::from_millis(5),
            node_cpus: 40,
            node_memory_bytes: 128 << 30,
            cpu_ghz: 2.1,
            sandbox_base_bytes: 25 << 20,
            process_overhead_bytes: 1_600 << 10,
            thread_overhead_bytes: 256 << 10,
            pool_worker_bytes: 26 << 20,
        }
    }

    /// Inflated parameters for SLO-safe planning (§6.2). Startup-related and
    /// interaction constants are scaled by `margin` (e.g. 1.25).
    pub fn conservative(&self, margin: f64) -> Self {
        let mut c = self.clone();
        c.process_startup = c.process_startup.mul_f64(margin);
        c.process_block = c.process_block.mul_f64(margin);
        c.thread_clone = c.thread_clone.mul_f64(margin);
        c.pool_dispatch = c.pool_dispatch.mul_f64(margin);
        c.ipc_pipe = c.ipc_pipe.mul_f64(margin);
        c.rpc = c.rpc.mul_f64(margin);
        c.inv = c.inv.mul_f64(margin);
        c
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_calibrated()
    }
}

/// Gateway scheduling-overhead parameters for the one-to-one systems
/// (Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulingModel {
    /// ASF: per-function scheduling latency (150 ms).
    pub asf_per_function: SimDuration,
    /// ASF: effective scheduling wave width. The paper reports ASF runs up
    /// to 10 functions concurrently, but its measured stage totals
    /// (150/874/1628 ms at 5/25/50 functions, Fig. 3) imply an effective
    /// wave of ~5 concurrent 150 ms scheduling operations; 5 reproduces
    /// those totals.
    pub asf_concurrency_cap: u32,
    /// OpenFaaS gateway: `sched(n) = linear·n + quadratic·n²` total overhead
    /// for launching `n` functions of one stage. Fit through the paper's
    /// (5, 2 ms), (25, 70 ms), (50, 180 ms) points.
    pub openfaas_linear: SimDuration,
    pub openfaas_quadratic: SimDuration,
}

impl SchedulingModel {
    pub fn paper_calibrated() -> Self {
        // Fit through Fig. 3's end points: 0.0711·n² + 0.0444·n gives
        // 2.0 ms at n = 5 and 180 ms at n = 50 exactly, with the paper's
        // super-linear growth in between (≈46 ms at n = 25).
        SchedulingModel {
            asf_per_function: SimDuration::from_millis(150),
            asf_concurrency_cap: 5,
            openfaas_linear: SimDuration::from_millis_f64(0.0444),
            openfaas_quadratic: SimDuration::from_millis_f64(0.0711),
        }
    }

    /// Total gateway overhead for launching `n` parallel functions under
    /// the OpenFaaS local gateway.
    pub fn openfaas_stage_overhead(&self, n: u32) -> SimDuration {
        self.openfaas_linear * u64::from(n)
            + self.openfaas_quadratic * (u64::from(n) * u64::from(n))
    }

    /// Time until the `i`-th (0-based) of `n` functions has been scheduled
    /// by ASF: launches proceed in waves of `asf_concurrency_cap`.
    pub fn asf_schedule_time(&self, i: u32) -> SimDuration {
        let wave = u64::from(i / self.asf_concurrency_cap);
        self.asf_per_function * (wave + 1)
    }
}

impl Default for SchedulingModel {
    fn default() -> Self {
        SchedulingModel::paper_calibrated()
    }
}

/// Billing rates (§6.3, Google Cloud Functions pricing \[7\] plus ASF state
/// transitions \[54\]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BillingModel {
    /// Dollars per GB-second of allocated memory.
    pub usd_per_gb_second: f64,
    /// Dollars per GHz-second of allocated CPU.
    pub usd_per_ghz_second: f64,
    /// Dollars per workflow state transition (ASF only).
    pub usd_per_state_transition: f64,
}

impl BillingModel {
    pub fn paper_calibrated() -> Self {
        BillingModel {
            usd_per_gb_second: 0.000_002_5,
            usd_per_ghz_second: 0.000_010_0,
            usd_per_state_transition: 0.000_025,
        }
    }
}

impl Default for BillingModel {
    fn default() -> Self {
        BillingModel::paper_calibrated()
    }
}

/// Random perturbation applied by the virtual platform so that ground truth
/// diverges from the Predictor's constant-parameter model, as a real
/// cluster's does. All spreads are relative standard deviations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterModel {
    /// Spread on fork startup / block / clone costs (lognormal-ish).
    pub startup_rel_std: f64,
    /// Spread on CPU segment durations.
    pub cpu_rel_std: f64,
    /// Spread on blocking-syscall durations.
    pub io_rel_std: f64,
    /// Spread on RPC/IPC costs.
    pub comm_rel_std: f64,
}

impl JitterModel {
    /// No noise: the platform reproduces the cost model exactly.
    pub const NONE: JitterModel = JitterModel {
        startup_rel_std: 0.0,
        cpu_rel_std: 0.0,
        io_rel_std: 0.0,
        comm_rel_std: 0.0,
    };

    /// Noise levels representative of a lightly loaded local cluster.
    pub fn cluster() -> Self {
        JitterModel {
            startup_rel_std: 0.20,
            cpu_rel_std: 0.06,
            io_rel_std: 0.12,
            comm_rel_std: 0.15,
        }
    }

    pub fn is_none(&self) -> bool {
        self.startup_rel_std == 0.0
            && self.cpu_rel_std == 0.0
            && self.io_rel_std == 0.0
            && self.comm_rel_std == 0.0
    }
}

/// Everything the virtual platform needs besides the deployment plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    pub costs: CostModel,
    pub scheduling: SchedulingModel,
    pub billing: BillingModel,
    pub jitter: JitterModel,
}

impl PlatformConfig {
    pub fn paper_calibrated() -> Self {
        PlatformConfig {
            costs: CostModel::paper_calibrated(),
            scheduling: SchedulingModel::paper_calibrated(),
            billing: BillingModel::paper_calibrated(),
            jitter: JitterModel::NONE,
        }
    }

    pub fn with_jitter(mut self, jitter: JitterModel) -> Self {
        self.jitter = jitter;
        self
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_scaling_matches_observation_2() {
        let c = CostModel::paper_calibrated();
        // 50 parallel functions: the last of them waits for 49 forks.
        let blocked = c.process_block * 49;
        let ms = blocked.as_millis_f64();
        assert!((165.0..175.0).contains(&ms), "got {ms}");
    }

    #[test]
    fn thread_clone_is_96_percent_cheaper() {
        let c = CostModel::paper_calibrated();
        let ratio = c.thread_clone.as_millis_f64() / c.process_startup.as_millis_f64();
        assert!(ratio < 0.05, "thread clone should be ≤4% of fork: {ratio}");
    }

    #[test]
    fn openfaas_fit_matches_figure_3() {
        let s = SchedulingModel::paper_calibrated();
        let at = |n: u32| s.openfaas_stage_overhead(n).as_millis_f64();
        assert!((at(5) - 2.0).abs() < 1.0, "n=5: {}", at(5));
        assert!((40.0..80.0).contains(&at(25)), "n=25: {}", at(25));
        assert!((at(50) - 180.0).abs() < 5.0, "n=50: {}", at(50));
    }

    #[test]
    fn asf_waves_match_figure_3() {
        let s = SchedulingModel::paper_calibrated();
        assert_eq!(s.asf_schedule_time(0).as_millis_f64(), 150.0);
        assert_eq!(s.asf_schedule_time(4).as_millis_f64(), 150.0);
        assert_eq!(s.asf_schedule_time(5).as_millis_f64(), 300.0);
        // Last of 25 / 50 functions: close to the paper's 874 / 1628 ms.
        assert_eq!(s.asf_schedule_time(24).as_millis_f64(), 750.0);
        assert_eq!(s.asf_schedule_time(49).as_millis_f64(), 1500.0);
    }

    #[test]
    fn conservative_inflates_only_overheads() {
        let base = CostModel::paper_calibrated();
        let c = base.conservative(1.25);
        assert!(c.process_startup > base.process_startup);
        assert!(c.rpc > base.rpc);
        assert_eq!(c.gil_switch_interval, base.gil_switch_interval);
        assert_eq!(c.sandbox_base_bytes, base.sandbox_base_bytes);
    }

    #[test]
    fn jitter_flags() {
        assert!(JitterModel::NONE.is_none());
        assert!(!JitterModel::cluster().is_none());
    }
}
