//! # chiron-model
//!
//! Shared domain model for the Chiron (SC '23) reproduction: virtual time,
//! function/workflow specifications, the **wrap** deployment abstraction,
//! and the calibrated platform cost constants.
//!
//! Everything downstream — the virtual platform (`chiron-runtime`), the
//! Profiler, the Predictor, PGP, and the deployment planners — speaks these
//! types.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod dynamic;
pub mod function;
pub mod plan;
pub mod platform;
pub mod serving;
pub mod synthetic;
pub mod time;
pub mod workflow;

pub use dynamic::{BranchSelector, DynStage, DynamicWorkflow};
pub use function::{
    FunctionId, FunctionSpec, LanguageRuntime, Segment, SyscallKind, WorkloadClass,
};
pub use plan::{
    DeploymentPlan, IsolationKind, NodePlacement, PlanError, ProcessPlan, ProcessSpawn,
    RuntimeKind, SandboxId, SandboxPlan, SchedulingKind, StagePlan, SystemKind, TransferKind,
    WrapPlan,
};
pub use platform::{BillingModel, CostModel, JitterModel, PlatformConfig, SchedulingModel};
pub use serving::{ReplicaConfig, ReplicaId};
pub use synthetic::{synthetic, SyntheticSpec};
pub use time::{SimDuration, SimTime};
pub use workflow::{Stage, Workflow, WorkflowError};
