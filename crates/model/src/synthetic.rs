//! Seeded synthetic workflow generation.
//!
//! The paper's benchmarks are five fixed applications; studying PGP's
//! scalability (§7: "PGP can incur minute-level overhead when
//! orchestrating large workflows") and stress-testing the platform needs
//! arbitrarily shaped workflows. This generator produces deterministic,
//! seeded workflows with controlled stage counts, parallelism and workload
//! class mixes.

use crate::function::{FunctionSpec, Segment, SyscallKind, WorkloadClass};
use crate::workflow::Workflow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape and behaviour parameters of a synthetic workflow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    pub seed: u64,
    pub stages: usize,
    /// Parallelism of each stage is drawn from `1..=max_parallelism`.
    pub max_parallelism: usize,
    /// Mean CPU milliseconds per function (exponential-ish spread).
    pub mean_cpu_ms: f64,
    /// Fraction of functions that are I/O-intensive.
    pub io_fraction: f64,
    /// Number of distinct behaviour profiles the functions cycle through
    /// (position `i` of a stage takes profile `i % profile_classes`, the
    /// way FINRA's rule checks repeat with period 5). Real fleets deploy
    /// families of near-identical functions; `0` disables sharing and
    /// gives every function its own random profile.
    pub profile_classes: usize,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            seed: 7,
            stages: 4,
            max_parallelism: 8,
            mean_cpu_ms: 5.0,
            io_fraction: 0.4,
            profile_classes: 0,
        }
    }
}

/// Generates a deterministic workflow from the spec.
pub fn synthetic(spec: SyntheticSpec) -> Workflow {
    assert!(spec.stages >= 1, "need at least one stage");
    assert!(spec.max_parallelism >= 1, "need parallelism >= 1");
    assert!((0.0..=1.0).contains(&spec.io_fraction));
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut functions: Vec<FunctionSpec> = Vec::new();
    let mut stages: Vec<Vec<u32>> = Vec::new();
    // Lazily drawn behaviour templates when profile sharing is on.
    let mut profiles: Vec<(Vec<Segment>, WorkloadClass)> = Vec::new();
    for si in 0..spec.stages {
        // First and last stages are sequential entry/exit points; middle
        // stages fan out.
        let parallelism = if si == 0 || si + 1 == spec.stages {
            1
        } else {
            rng.random_range(1..=spec.max_parallelism)
        };
        let mut ids = Vec::with_capacity(parallelism);
        for fi in 0..parallelism {
            let reuse = if spec.profile_classes > 0 {
                let ci = fi % spec.profile_classes;
                profiles.get(ci).cloned()
            } else {
                None
            };
            let (segments, class) = if let Some(tpl) = reuse {
                tpl
            } else {
                let io_bound = rng.random::<f64>() < spec.io_fraction;
                // Exponential-ish CPU demand: -ln(U) × mean.
                let cpu_ms =
                    (-(rng.random::<f64>().max(1e-9)).ln() * spec.mean_cpu_ms).clamp(0.2, 200.0);
                let segments = if io_bound {
                    let io_ms = cpu_ms * rng.random_range(1.5..4.0);
                    let kind = if rng.random::<bool>() {
                        SyscallKind::DiskIo
                    } else {
                        SyscallKind::NetIo
                    };
                    vec![
                        Segment::cpu_ms_f64(cpu_ms * 0.4),
                        Segment::block_ms(kind, io_ms),
                        Segment::cpu_ms_f64(cpu_ms * 0.6),
                    ]
                } else {
                    vec![Segment::cpu_ms_f64(cpu_ms)]
                };
                let class = if io_bound {
                    WorkloadClass::NetIoIntensive
                } else {
                    WorkloadClass::CpuIntensive
                };
                if spec.profile_classes > 0 {
                    profiles.push((segments.clone(), class));
                }
                (segments, class)
            };
            ids.push(functions.len() as u32);
            functions.push(
                FunctionSpec::new(format!("s{si}f{fi}"), segments)
                    .with_class(class)
                    .with_output_bytes(rng.random_range(1..64) * 1024),
            );
        }
        stages.push(ids);
    }
    Workflow::new(
        format!(
            "Synthetic-{}x{}-{:x}",
            spec.stages, spec.max_parallelism, spec.seed
        ),
        functions,
        stages,
    )
    .expect("generator emits valid workflows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = SyntheticSpec::default();
        assert_eq!(synthetic(spec), synthetic(spec));
        let other = SyntheticSpec { seed: 8, ..spec };
        assert_ne!(synthetic(spec), synthetic(other));
    }

    #[test]
    fn respects_shape_bounds() {
        for seed in 0..20 {
            let spec = SyntheticSpec {
                seed,
                stages: 6,
                max_parallelism: 10,
                ..Default::default()
            };
            let wf = synthetic(spec);
            wf.validate().unwrap();
            assert_eq!(wf.stage_count(), 6);
            assert!(wf.max_parallelism() <= 10);
            assert_eq!(wf.stages[0].parallelism(), 1, "sequential entry");
            assert_eq!(wf.stages[5].parallelism(), 1, "sequential exit");
        }
    }

    #[test]
    fn io_fraction_zero_is_pure_cpu() {
        let spec = SyntheticSpec {
            io_fraction: 0.0,
            ..Default::default()
        };
        let wf = synthetic(spec);
        for f in &wf.functions {
            assert!(f.block_time().is_zero(), "{} has I/O", f.name);
        }
    }

    #[test]
    fn io_fraction_one_is_all_io() {
        let spec = SyntheticSpec {
            io_fraction: 1.0,
            seed: 3,
            ..Default::default()
        };
        let wf = synthetic(spec);
        for f in &wf.functions {
            assert!(!f.block_time().is_zero(), "{} lacks I/O", f.name);
        }
    }

    #[test]
    fn profile_classes_share_behaviour() {
        let spec = SyntheticSpec {
            stages: 6,
            max_parallelism: 12,
            profile_classes: 3,
            ..Default::default()
        };
        let wf = synthetic(spec);
        // Position i of every stage carries profile i % 3: collect the
        // distinct (segments, class) pairs and check the bound holds.
        let mut distinct: Vec<(&Vec<Segment>, WorkloadClass)> = Vec::new();
        for f in &wf.functions {
            if !distinct
                .iter()
                .any(|(s, c)| **s == f.segments && *c == f.class)
            {
                distinct.push((&f.segments, f.class));
            }
        }
        assert!(
            distinct.len() <= 3,
            "expected at most 3 profiles, found {}",
            distinct.len()
        );
        // Output sizes stay per-function even when behaviour is shared.
        let wide = wf.stages.iter().map(|s| s.parallelism()).max().unwrap();
        assert!(wide > 3, "need a stage wider than the class count");
    }

    #[test]
    fn zero_classes_keeps_historic_output() {
        // `profile_classes: 0` must not perturb the rng draw sequence.
        let old = synthetic(SyntheticSpec::default());
        let explicit = synthetic(SyntheticSpec {
            profile_classes: 0,
            ..Default::default()
        });
        assert_eq!(old, explicit);
    }

    #[test]
    fn single_stage_workflow() {
        let spec = SyntheticSpec {
            stages: 1,
            ..Default::default()
        };
        let wf = synthetic(spec);
        assert_eq!(wf.stage_count(), 1);
        assert_eq!(wf.function_count(), 1);
    }
}
