//! The five benchmark workflows of the paper's evaluation (§6, Table under
//! "Testbed and Benchmarks"), rebuilt as deterministic segment-level
//! specifications:
//!
//! * **Social Network** (SN): 4 stages, 10 functions, max parallelism 5.
//! * **Movie Reviewing** (MR): 4 stages, 9 functions, max parallelism 4.
//! * **SLApp**: 2 stages, 7 functions, max parallelism 4, *no sequential
//!   stage*; functions have similar latency but split across CPU-, disk-I/O-
//!   and network-I/O-intensive classes.
//! * **SLApp-V**: 5 stages, 10 functions, max parallelism 5.
//! * **FINRA-N**: 2 stages (a market-data fetch followed by N parallel
//!   trade-validation rules), N ∈ {5, 25, 50, 100, 200}.
//!
//! Segment durations are chosen so that the motivating observations hold:
//! FINRA validators are millisecond-scale (so `T_Startup` ≈ 7.5 ms is ~10×
//! their execution time, Observation 2), and the four SLApp-style functions
//! used by Fig. 7 have similar ≈36 ms solo latency with very different
//! CPU/block mixes.

use crate::function::{FunctionSpec, Segment, SyscallKind, WorkloadClass};
use crate::workflow::Workflow;

fn cpu(ms: f64) -> Segment {
    Segment::cpu_ms_f64(ms)
}

fn disk(ms: f64) -> Segment {
    Segment::block_ms(SyscallKind::DiskIo, ms)
}

fn net(ms: f64) -> Segment {
    Segment::block_ms(SyscallKind::NetIo, ms)
}

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// Social Network (DeathStarBench-derived \[23\]): compose → 5 parallel text /
/// media services → 3 parallel storage writers → respond.
pub fn social_network() -> Workflow {
    let functions = vec![
        FunctionSpec::new("compose_post", vec![cpu(1.6), net(1.2), cpu(0.6)])
            .with_class(WorkloadClass::Mixed)
            .with_output_bytes(24 * KB),
        FunctionSpec::new("unique_id", vec![cpu(0.5)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(KB / 4),
        FunctionSpec::new("media_filter", vec![cpu(2.8), disk(2.0), cpu(0.5)])
            .with_class(WorkloadClass::DiskIoIntensive)
            .with_output_bytes(512 * KB),
        FunctionSpec::new("user_tag", vec![cpu(1.0), net(2.1)])
            .with_class(WorkloadClass::NetIoIntensive)
            .with_output_bytes(2 * KB),
        FunctionSpec::new("url_shorten", vec![cpu(1.4)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(KB),
        FunctionSpec::new("text_filter", vec![cpu(3.9)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(8 * KB),
        FunctionSpec::new("home_timeline", vec![cpu(0.9), net(2.8)])
            .with_class(WorkloadClass::NetIoIntensive)
            .with_output_bytes(KB),
        FunctionSpec::new("user_timeline", vec![cpu(0.8), net(2.2)])
            .with_class(WorkloadClass::NetIoIntensive)
            .with_output_bytes(KB),
        FunctionSpec::new("social_graph", vec![cpu(1.8), net(1.9)])
            .with_class(WorkloadClass::Mixed)
            .with_output_bytes(4 * KB),
        FunctionSpec::new("respond", vec![cpu(0.9)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(KB),
    ];
    Workflow::new(
        "SocialNetwork",
        functions,
        vec![vec![0], vec![1, 2, 3, 4, 5], vec![6, 7, 8], vec![9]],
    )
    .expect("static workflow is valid")
}

/// Movie Reviewing \[23\]: upload → 4 parallel review processors → 3 parallel
/// storage updates → respond.
pub fn movie_reviewing() -> Workflow {
    let functions = vec![
        FunctionSpec::new("upload_review", vec![cpu(1.4), net(1.0)]).with_output_bytes(16 * KB),
        FunctionSpec::new("unique_id", vec![cpu(0.5)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(KB / 4),
        FunctionSpec::new("rate_movie", vec![cpu(1.9), net(1.1)])
            .with_class(WorkloadClass::Mixed)
            .with_output_bytes(KB),
        FunctionSpec::new("review_text", vec![cpu(3.1)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(8 * KB),
        FunctionSpec::new("movie_info", vec![cpu(0.8), net(2.9)])
            .with_class(WorkloadClass::NetIoIntensive)
            .with_output_bytes(4 * KB),
        FunctionSpec::new("store_review", vec![cpu(0.9), disk(2.6)])
            .with_class(WorkloadClass::DiskIoIntensive)
            .with_output_bytes(KB),
        FunctionSpec::new("update_rating", vec![cpu(1.3), net(1.2)])
            .with_class(WorkloadClass::Mixed)
            .with_output_bytes(KB),
        FunctionSpec::new("update_user", vec![cpu(0.9), net(1.8)])
            .with_class(WorkloadClass::NetIoIntensive)
            .with_output_bytes(KB),
        FunctionSpec::new("respond", vec![cpu(0.8)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(KB),
    ];
    Workflow::new(
        "MovieReviewing",
        functions,
        vec![vec![0], vec![1, 2, 3, 4], vec![5, 6, 7], vec![8]],
    )
    .expect("static workflow is valid")
}

/// The four SLApp-style reference functions used by Fig. 7: similar ≈36 ms
/// solo latency, very different CPU/block composition.
pub fn slapp_reference_functions() -> Vec<FunctionSpec> {
    vec![
        FunctionSpec::new("factorial", vec![cpu(36.0)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(KB),
        FunctionSpec::new("fibonacci", vec![cpu(35.0)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(KB),
        FunctionSpec::new(
            "disk_io",
            vec![cpu(4.0), disk(13.0), cpu(2.0), disk(14.0), cpu(3.0)],
        )
        .with_class(WorkloadClass::DiskIoIntensive)
        .with_output_bytes(256 * KB),
        FunctionSpec::new("network_io", vec![cpu(2.0), net(31.0), cpu(2.0)])
            .with_class(WorkloadClass::NetIoIntensive)
            .with_output_bytes(64 * KB),
    ]
}

/// SLApp (generated from the SLApp model \[33\]): 2 parallel stages, 7
/// functions, no sequential stage.
pub fn slapp() -> Workflow {
    let reference = slapp_reference_functions();
    let functions = vec![
        reference[0].clone(), // factorial
        reference[2].clone(), // disk_io
        reference[3].clone(), // network_io
        reference[1].clone(), // fibonacci
        FunctionSpec::new("factorial_b", vec![cpu(34.0)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(KB),
        FunctionSpec::new("disk_io_b", vec![cpu(3.0), disk(30.0), cpu(2.0)])
            .with_class(WorkloadClass::DiskIoIntensive)
            .with_output_bytes(128 * KB),
        FunctionSpec::new("network_io_b", vec![net(33.0), cpu(3.0)])
            .with_class(WorkloadClass::NetIoIntensive)
            .with_output_bytes(32 * KB),
    ];
    Workflow::new("SLApp", functions, vec![vec![0, 1, 2], vec![3, 4, 5, 6]])
        .expect("static workflow is valid")
}

/// SLApp-V: a 5-stage, 10-function variant generated from the same model.
pub fn slapp_v() -> Workflow {
    let functions = vec![
        FunctionSpec::new("ingest", vec![cpu(4.0), net(9.0)]).with_output_bytes(MB),
        FunctionSpec::new("shard_a", vec![cpu(15.0)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(64 * KB),
        FunctionSpec::new("shard_b", vec![cpu(14.0)])
            .with_class(WorkloadClass::CpuIntensive)
            .with_output_bytes(64 * KB),
        FunctionSpec::new("shard_c", vec![cpu(2.0), disk(13.0), cpu(1.0)])
            .with_class(WorkloadClass::DiskIoIntensive)
            .with_output_bytes(128 * KB),
        FunctionSpec::new("shard_d", vec![cpu(1.0), net(14.0)])
            .with_class(WorkloadClass::NetIoIntensive)
            .with_output_bytes(32 * KB),
        FunctionSpec::new("shard_e", vec![cpu(8.0), net(7.0)])
            .with_class(WorkloadClass::Mixed)
            .with_output_bytes(32 * KB),
        FunctionSpec::new("merge_left", vec![cpu(7.0), disk(6.0)])
            .with_class(WorkloadClass::Mixed)
            .with_output_bytes(256 * KB),
        FunctionSpec::new("merge_right", vec![cpu(8.0), net(5.0)])
            .with_class(WorkloadClass::Mixed)
            .with_output_bytes(256 * KB),
        FunctionSpec::new("aggregate", vec![cpu(11.0), disk(4.0)])
            .with_class(WorkloadClass::Mixed)
            .with_output_bytes(128 * KB),
        FunctionSpec::new("respond", vec![cpu(6.0), net(5.0)]).with_output_bytes(16 * KB),
    ];
    Workflow::new(
        "SLApp-V",
        functions,
        vec![vec![0], vec![1, 2, 3, 4, 5], vec![6, 7], vec![8], vec![9]],
    )
    .expect("static workflow is valid")
}

/// FINRA with `n` parallel trade-validation rules \[2, 30\]: a network-bound
/// fetch of portfolio/market data, then `n` millisecond-scale rule checks.
///
/// Rule execution times cycle deterministically through 0.5–12 ms: the
/// shortest rules are sub-millisecond (so the 7.5 ms fork startup is ~10×
/// their execution time, Observation 2), while heavier rules make pure
/// GIL-serialised thread execution unattractive at high parallelism — the
/// heterogeneity that gives the combined process/thread "m-to-n" model its
/// advantage (Observation 3, Fig. 6).
pub fn finra(n: usize) -> Workflow {
    assert!(n >= 1, "FINRA needs at least one validation rule");
    let mut functions = Vec::with_capacity(n + 1);
    functions.push(
        FunctionSpec::new("fetch_market_data", vec![cpu(1.5), net(40.0), cpu(1.5)])
            .with_class(WorkloadClass::NetIoIntensive)
            .with_output_bytes(200 * KB),
    );
    const RULE_MS: [f64; 5] = [0.5, 0.7, 6.0, 1.0, 12.0];
    for i in 0..n {
        let exec_ms = RULE_MS[i % RULE_MS.len()];
        functions.push(
            FunctionSpec::new(format!("validate_rule_{i:03}"), vec![cpu(exec_ms)])
                .with_class(WorkloadClass::CpuIntensive)
                .with_output_bytes(KB)
                .with_workingset_bytes(128 * KB),
        );
    }
    let rules: Vec<u32> = (1..=n as u32).collect();
    Workflow::new(format!("FINRA-{n}"), functions, vec![vec![0], rules])
        .expect("static workflow is valid")
}

/// The eight workflows of the headline evaluation (Fig. 13/16/17/19).
pub fn evaluation_suite() -> Vec<Workflow> {
    vec![
        social_network(),
        movie_reviewing(),
        slapp(),
        slapp_v(),
        finra(5),
        finra(50),
        finra(100),
        finra(200),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let sn = social_network();
        assert_eq!(sn.stage_count(), 4);
        assert_eq!(sn.function_count(), 10);
        assert_eq!(sn.max_parallelism(), 5);

        let mr = movie_reviewing();
        assert_eq!(mr.stage_count(), 4);
        assert_eq!(mr.function_count(), 9);
        assert_eq!(mr.max_parallelism(), 4);

        let sl = slapp();
        assert_eq!(sl.stage_count(), 2);
        assert_eq!(sl.function_count(), 7);
        assert_eq!(sl.max_parallelism(), 4);
        assert!(!sl.has_sequential_stage(), "SLApp has no sequential stage");

        let sv = slapp_v();
        assert_eq!(sv.stage_count(), 5);
        assert_eq!(sv.function_count(), 10);
        assert_eq!(sv.max_parallelism(), 5);
    }

    #[test]
    fn finra_shape() {
        for n in [5usize, 50, 100, 200] {
            let wf = finra(n);
            assert_eq!(wf.stage_count(), 2);
            assert_eq!(wf.function_count(), n + 1);
            assert_eq!(wf.max_parallelism(), n);
        }
    }

    #[test]
    fn finra_rules_are_millisecond_scale_and_heterogeneous() {
        let wf = finra(50);
        let mut sub_ms = 0;
        for id in &wf.stages[1].functions {
            let exec = wf.function(*id).solo_latency().as_millis_f64();
            assert!((0.4..12.5).contains(&exec), "rule exec {exec}ms");
            if exec < 1.0 {
                sub_ms += 1;
            }
        }
        // Observation 2 needs sub-millisecond rules to exist.
        assert!(sub_ms >= 10, "{sub_ms} sub-ms rules");
    }

    #[test]
    fn slapp_reference_latencies_similar() {
        let fns = slapp_reference_functions();
        let lats: Vec<f64> = fns
            .iter()
            .map(|f| f.solo_latency().as_millis_f64())
            .collect();
        let max = lats.iter().cloned().fold(f64::MIN, f64::max);
        let min = lats.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min <= 2.0, "Fig. 7 needs similar latencies: {lats:?}");
    }

    #[test]
    fn slapp_reference_classes_differ() {
        let fns = slapp_reference_functions();
        assert_eq!(fns[0].class, WorkloadClass::CpuIntensive);
        assert_eq!(fns[2].class, WorkloadClass::DiskIoIntensive);
        assert_eq!(fns[3].class, WorkloadClass::NetIoIntensive);
        // disk/net functions spend most of their time blocked.
        assert!(fns[2].block_time() > fns[2].cpu_time());
        assert!(fns[3].block_time() > fns[3].cpu_time());
    }

    #[test]
    fn suite_contains_eight_workflows() {
        let suite = evaluation_suite();
        assert_eq!(suite.len(), 8);
        let names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "SocialNetwork",
                "MovieReviewing",
                "SLApp",
                "SLApp-V",
                "FINRA-5",
                "FINRA-50",
                "FINRA-100",
                "FINRA-200"
            ]
        );
    }

    #[test]
    fn all_workflows_validate() {
        for wf in evaluation_suite() {
            wf.validate().unwrap();
        }
    }
}
