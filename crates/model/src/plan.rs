//! The **wrap** abstraction and deployment plans.
//!
//! A wrap (§3.1) is a subset of a workflow's functions that shares one
//! sandbox and is the fundamental unit of sandbox allocation. Inside a wrap,
//! each *process* hosts one or more functions; a function that shares a
//! process with others executes as a *thread* of that process, so the
//! process/thread execution-mode choice of the paper falls out of the
//! grouping itself.
//!
//! A [`DeploymentPlan`] fixes, for one workflow, everything the virtual
//! platform needs to execute a request: which sandboxes exist, how many
//! CPUs each one gets, how every stage's functions are split into wraps and
//! processes, which runtime semantics apply (GIL vs. true parallelism vs.
//! process pool), which isolation mechanism wraps thread execution, and how
//! intermediate data travels.

use crate::function::FunctionId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a sandbox within a plan. Multiple stage-level wraps may
/// map onto the same sandbox (the sandbox is reused across stages, as in
/// every many-to-one system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SandboxId(pub u32);

impl SandboxId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SandboxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sb{}", self.0)
    }
}

/// How a process obtains its execution context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessSpawn {
    /// `fork()` a fresh process per request: pays `T_Startup` plus the
    /// cumulative `T_Block` of the forks queued before it (Eq. 4).
    Fork,
    /// Dispatch onto a pre-forked `ProcessPoolExecutor` worker: negligible
    /// startup, true parallelism, but permanently resident memory (§4).
    Pool,
    /// Run inside the wrap's already-running orchestrator process (the
    /// of-watchdog model): no startup at all. Functions placed here execute
    /// as threads of the orchestrator.
    MainReuse,
}

/// One process of a wrap and the functions it hosts.
///
/// `functions[0]` runs on the process's main thread; any further functions
/// are cloned as additional threads (Fig. 9's `Thread(f1, req)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessPlan {
    pub functions: Vec<FunctionId>,
    pub spawn: ProcessSpawn,
}

impl ProcessPlan {
    pub fn forked(functions: Vec<FunctionId>) -> Self {
        ProcessPlan {
            functions,
            spawn: ProcessSpawn::Fork,
        }
    }

    pub fn pooled(functions: Vec<FunctionId>) -> Self {
        ProcessPlan {
            functions,
            spawn: ProcessSpawn::Pool,
        }
    }

    pub fn main_reuse(functions: Vec<FunctionId>) -> Self {
        ProcessPlan {
            functions,
            spawn: ProcessSpawn::MainReuse,
        }
    }

    pub fn thread_count(&self) -> usize {
        self.functions.len()
    }
}

/// A wrap instantiated for one stage: the processes it runs and the sandbox
/// it occupies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrapPlan {
    pub sandbox: SandboxId,
    pub processes: Vec<ProcessPlan>,
}

impl WrapPlan {
    pub fn function_count(&self) -> usize {
        self.processes.iter().map(|p| p.functions.len()).sum()
    }

    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    pub fn functions(&self) -> impl Iterator<Item = FunctionId> + '_ {
        self.processes
            .iter()
            .flat_map(|p| p.functions.iter().copied())
    }
}

/// One stage's partition into wraps. `wraps[0]` is the stage's primary wrap:
/// it receives the stage input and invokes the others over the network
/// (Eq. 2's `wrap_1`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePlan {
    pub wraps: Vec<WrapPlan>,
}

impl StagePlan {
    pub fn function_count(&self) -> usize {
        self.wraps.iter().map(WrapPlan::function_count).sum()
    }
}

/// Thread-parallelism semantics of the language runtime inside sandboxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuntimeKind {
    /// CPython/Node.js-style: a GIL permits one running thread per process.
    PseudoParallel,
    /// Java-style (or nogil): threads of one process run truly in parallel.
    TrueParallel,
}

/// Memory-isolation mechanism applied to thread execution (§4, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsolationKind {
    /// Bare threads; no intra-process isolation.
    None,
    /// Intel MPK protection keys: tiny startup cost, zero interaction cost,
    /// moderate execution slowdown.
    Mpk,
    /// WebAssembly-based software fault isolation: large startup and
    /// interaction costs, larger execution slowdown.
    Sfi,
}

/// How intermediate data crosses a sandbox boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferKind {
    /// Third-party object storage as in AWS (write + read per edge).
    RemoteS3,
    /// Cluster-local MinIO object storage.
    LocalMinio,
    /// Payload piggy-backed on the RPC invocation (wrap-to-wrap transfer).
    RpcPayload,
    /// Zero-copy shared-memory SPSC ring between wraps co-located on one
    /// node (the sub-microsecond regime of Fig. 4's left edge). Pairs of
    /// sandboxes on different nodes fall back to [`TransferKind::RpcPayload`]
    /// — locality is decided by [`NodePlacement`].
    ShmRing,
}

/// Deterministic sandbox→node assignment derived from a plan.
///
/// The plan itself carries no node field (its serde form, digests and every
/// committed report stay unperturbed); instead, any component that needs
/// locality — the DES, the predictor, the PGP objective — recomputes the
/// same first-fit packing from the same inputs, so fast/reference/parallel
/// paths agree byte for byte.
///
/// Packing rule: sandboxes in declaration order, each onto the first node
/// with enough spare CPU capacity (`node_cpus` per node); a sandbox wider
/// than a whole node gets a node of its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePlacement {
    /// `nodes[sandbox.index()]` = node index. Indexed by declaration order
    /// position, not raw id (ids may be sparse).
    nodes: Vec<(SandboxId, u32)>,
}

impl NodePlacement {
    /// First-fit packing of `plan.sandboxes` onto nodes of `node_cpus`
    /// CPUs each. Deterministic: depends only on the plan's sandbox list.
    pub fn first_fit(plan: &DeploymentPlan, node_cpus: u32) -> NodePlacement {
        let mut free: Vec<u32> = Vec::new();
        let mut nodes = Vec::with_capacity(plan.sandboxes.len());
        for sb in &plan.sandboxes {
            let slot = free.iter().position(|&f| f >= sb.cpus);
            let node = match slot {
                Some(i) => {
                    free[i] -= sb.cpus.min(free[i]);
                    i as u32
                }
                None => {
                    // Fresh node; an oversize sandbox saturates it outright.
                    free.push(node_cpus.saturating_sub(sb.cpus));
                    (free.len() - 1) as u32
                }
            };
            nodes.push((sb.id, node));
        }
        NodePlacement { nodes }
    }

    /// The node a sandbox landed on (`None` for ids not in the plan).
    pub fn node_of(&self, id: SandboxId) -> Option<u32> {
        self.nodes.iter().find(|(sb, _)| *sb == id).map(|&(_, n)| n)
    }

    /// Whether two sandboxes share a node — the co-location predicate the
    /// shm-ring tier keys on. A sandbox is trivially co-located with
    /// itself; unknown ids are never co-located.
    pub fn colocated(&self, a: SandboxId, b: SandboxId) -> bool {
        if a == b {
            return true;
        }
        match (self.node_of(a), self.node_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of nodes the packing used.
    pub fn node_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|&(_, n)| n as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// How the platform's gateway schedules function starts for one-to-one
/// systems (Fig. 3). Pre-deployed wraps skip the gateway entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingKind {
    /// AWS Step Functions: a fixed per-function scheduling delay with a cap
    /// on how many functions can be launched concurrently.
    Asf,
    /// OpenFaaS local gateway: cheap but superlinear in the number of
    /// concurrent starts.
    OpenFaasGateway,
    /// Wraps are deployed ahead of time; requests go straight to wrap 1
    /// (§3.4: "subsequent requests ... reuse these wraps to avoid the
    /// scheduling overhead").
    PreDeployed,
}

/// The serverless systems evaluated in the paper (§6, Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// AWS Step Functions: one-to-one, S3 transfer, heavy scheduling.
    Asf,
    /// OpenFaaS: one-to-one, MinIO transfer, local gateway.
    OpenFaas,
    /// SAND: many-to-one, every function its own forked process.
    Sand,
    /// Faastlane: many-to-one, threads for sequential stages, forked
    /// processes for parallel stages.
    Faastlane,
    /// Faastlane-T: threads only (§2.2 comparison configuration).
    FaastlaneT,
    /// Faastlane+: fixed five processes per sandbox (m-to-n, process-only).
    FaastlanePlus,
    /// Chiron: PGP-scheduled m-to-n with combined processes and threads.
    Chiron,
    /// Faastlane with Intel MPK thread isolation.
    FaastlaneM,
    /// Chiron with Intel MPK thread isolation.
    ChironM,
    /// Faastlane with a process pool.
    FaastlaneP,
    /// Chiron with a process pool (single wrap, shared-CPU affinity).
    ChironP,
}

impl SystemKind {
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Asf => "ASF",
            SystemKind::OpenFaas => "OpenFaaS",
            SystemKind::Sand => "SAND",
            SystemKind::Faastlane => "Faastlane",
            SystemKind::FaastlaneT => "Faastlane-T",
            SystemKind::FaastlanePlus => "Faastlane+",
            SystemKind::Chiron => "Chiron",
            SystemKind::FaastlaneM => "Faastlane-M",
            SystemKind::ChironM => "Chiron-M",
            SystemKind::ChironP => "Chiron-P",
            SystemKind::FaastlaneP => "Faastlane-P",
        }
    }

    /// Systems following the one-to-one deployment model.
    pub fn is_one_to_one(self) -> bool {
        matches!(self, SystemKind::Asf | SystemKind::OpenFaas)
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Static description of one sandbox in a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SandboxPlan {
    pub id: SandboxId,
    /// Whole CPUs allocated via cgroups (the paper's allocation unit, §6).
    pub cpus: u32,
    /// Pre-forked pool workers resident in this sandbox (`-P` variants).
    pub pool_size: u32,
}

/// A complete deployment of one workflow onto the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    pub system: SystemKind,
    pub workflow: String,
    pub runtime: RuntimeKind,
    pub isolation: IsolationKind,
    pub transfer: TransferKind,
    pub scheduling: SchedulingKind,
    pub sandboxes: Vec<SandboxPlan>,
    pub stages: Vec<StagePlan>,
}

/// Plan-validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A wrap references a sandbox id not declared in `sandboxes`.
    UnknownSandbox(SandboxId),
    /// A process plan hosts no functions.
    EmptyProcess { stage: usize, wrap: usize },
    /// A stage has no wraps.
    EmptyStage(usize),
    /// A sandbox was allocated zero CPUs.
    ZeroCpus(SandboxId),
    /// The set of functions in some stage's wraps does not equal the
    /// workflow stage's function set.
    StageMismatch { stage: usize },
    /// A pooled process was placed in a sandbox with no pool workers.
    PoolMissing { stage: usize, wrap: usize },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownSandbox(id) => write!(f, "plan references undeclared {id}"),
            PlanError::EmptyProcess { stage, wrap } => {
                write!(f, "stage {stage} wrap {wrap} contains an empty process")
            }
            PlanError::EmptyStage(s) => write!(f, "stage {s} has no wraps"),
            PlanError::ZeroCpus(id) => write!(f, "{id} allocated zero CPUs"),
            PlanError::StageMismatch { stage } => {
                write!(f, "stage {stage} plan does not cover the stage's functions")
            }
            PlanError::PoolMissing { stage, wrap } => {
                write!(
                    f,
                    "stage {stage} wrap {wrap} uses Pool spawn in a pool-less sandbox"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl DeploymentPlan {
    /// Total CPUs allocated across all sandboxes (Fig. 17's metric).
    pub fn total_cpus(&self) -> u32 {
        self.sandboxes.iter().map(|s| s.cpus).sum()
    }

    pub fn sandbox_count(&self) -> usize {
        self.sandboxes.len()
    }

    pub fn sandbox(&self, id: SandboxId) -> Option<&SandboxPlan> {
        self.sandboxes.iter().find(|s| s.id == id)
    }

    /// The stage-level wrap count `n` of the m-to-n model, maximised over
    /// stages (reported for Chiron-M in §6.3).
    pub fn max_wraps_per_stage(&self) -> usize {
        self.stages.iter().map(|s| s.wraps.len()).max().unwrap_or(0)
    }

    /// Validates internal consistency against the workflow's stage sets.
    ///
    /// `stage_functions[i]` must list exactly the functions of workflow
    /// stage `i` (any order).
    pub fn validate(&self, stage_functions: &[Vec<FunctionId>]) -> Result<(), PlanError> {
        for (si, stage) in self.stages.iter().enumerate() {
            if stage.wraps.is_empty() {
                return Err(PlanError::EmptyStage(si));
            }
            let mut got: Vec<FunctionId> = Vec::with_capacity(stage.function_count());
            for (wi, wrap) in stage.wraps.iter().enumerate() {
                let sb = self
                    .sandbox(wrap.sandbox)
                    .ok_or(PlanError::UnknownSandbox(wrap.sandbox))?;
                for proc in &wrap.processes {
                    if proc.functions.is_empty() {
                        return Err(PlanError::EmptyProcess {
                            stage: si,
                            wrap: wi,
                        });
                    }
                    if proc.spawn == ProcessSpawn::Pool && sb.pool_size == 0 {
                        return Err(PlanError::PoolMissing {
                            stage: si,
                            wrap: wi,
                        });
                    }
                    got.extend(proc.functions.iter().copied());
                }
            }
            let mut want = stage_functions
                .get(si)
                .cloned()
                .ok_or(PlanError::StageMismatch { stage: si })?;
            got.sort_unstable();
            want.sort_unstable();
            if got != want {
                return Err(PlanError::StageMismatch { stage: si });
            }
        }
        if self.stages.len() != stage_functions.len() {
            return Err(PlanError::StageMismatch {
                stage: self.stages.len().min(stage_functions.len()),
            });
        }
        for sb in &self.sandboxes {
            if sb.cpus == 0 {
                return Err(PlanError::ZeroCpus(sb.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_one_stage(wraps: Vec<WrapPlan>, sandboxes: Vec<SandboxPlan>) -> DeploymentPlan {
        DeploymentPlan {
            system: SystemKind::Chiron,
            workflow: "t".into(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::RpcPayload,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes,
            stages: vec![StagePlan { wraps }],
        }
    }

    fn fid(v: u32) -> FunctionId {
        FunctionId(v)
    }

    #[test]
    fn validate_ok() {
        let plan = plan_one_stage(
            vec![WrapPlan {
                sandbox: SandboxId(0),
                processes: vec![
                    ProcessPlan::forked(vec![fid(0), fid(1)]),
                    ProcessPlan::forked(vec![fid(2)]),
                ],
            }],
            vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 2,
                pool_size: 0,
            }],
        );
        plan.validate(&[vec![fid(0), fid(1), fid(2)]]).unwrap();
        assert_eq!(plan.total_cpus(), 2);
        assert_eq!(plan.max_wraps_per_stage(), 1);
    }

    #[test]
    fn detects_stage_mismatch() {
        let plan = plan_one_stage(
            vec![WrapPlan {
                sandbox: SandboxId(0),
                processes: vec![ProcessPlan::forked(vec![fid(0)])],
            }],
            vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 1,
                pool_size: 0,
            }],
        );
        let err = plan.validate(&[vec![fid(0), fid(1)]]).unwrap_err();
        assert_eq!(err, PlanError::StageMismatch { stage: 0 });
    }

    #[test]
    fn detects_unknown_sandbox() {
        let plan = plan_one_stage(
            vec![WrapPlan {
                sandbox: SandboxId(7),
                processes: vec![ProcessPlan::forked(vec![fid(0)])],
            }],
            vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 1,
                pool_size: 0,
            }],
        );
        assert_eq!(
            plan.validate(&[vec![fid(0)]]).unwrap_err(),
            PlanError::UnknownSandbox(SandboxId(7))
        );
    }

    #[test]
    fn detects_pool_missing() {
        let plan = plan_one_stage(
            vec![WrapPlan {
                sandbox: SandboxId(0),
                processes: vec![ProcessPlan::pooled(vec![fid(0)])],
            }],
            vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 1,
                pool_size: 0,
            }],
        );
        assert_eq!(
            plan.validate(&[vec![fid(0)]]).unwrap_err(),
            PlanError::PoolMissing { stage: 0, wrap: 0 }
        );
    }

    #[test]
    fn detects_zero_cpus() {
        let plan = plan_one_stage(
            vec![WrapPlan {
                sandbox: SandboxId(0),
                processes: vec![ProcessPlan::forked(vec![fid(0)])],
            }],
            vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 0,
                pool_size: 0,
            }],
        );
        assert_eq!(
            plan.validate(&[vec![fid(0)]]).unwrap_err(),
            PlanError::ZeroCpus(SandboxId(0))
        );
    }

    #[test]
    fn first_fit_packs_in_declaration_order() {
        let plan = plan_one_stage(
            vec![WrapPlan {
                sandbox: SandboxId(0),
                processes: vec![ProcessPlan::forked(vec![fid(0)])],
            }],
            vec![
                SandboxPlan {
                    id: SandboxId(0),
                    cpus: 30,
                    pool_size: 0,
                },
                SandboxPlan {
                    id: SandboxId(1),
                    cpus: 20,
                    pool_size: 0,
                },
                SandboxPlan {
                    id: SandboxId(2),
                    cpus: 10,
                    pool_size: 0,
                },
            ],
        );
        let p = NodePlacement::first_fit(&plan, 40);
        // 30 fills node 0 to 10 spare; 20 opens node 1; 10 back-fills node 0.
        assert_eq!(p.node_of(SandboxId(0)), Some(0));
        assert_eq!(p.node_of(SandboxId(1)), Some(1));
        assert_eq!(p.node_of(SandboxId(2)), Some(0));
        assert!(p.colocated(SandboxId(0), SandboxId(2)));
        assert!(!p.colocated(SandboxId(0), SandboxId(1)));
        assert!(p.colocated(SandboxId(1), SandboxId(1)));
        assert!(!p.colocated(SandboxId(0), SandboxId(9)));
        assert_eq!(p.node_count(), 2);
    }

    #[test]
    fn first_fit_gives_oversize_sandboxes_their_own_node() {
        let plan = plan_one_stage(
            vec![WrapPlan {
                sandbox: SandboxId(0),
                processes: vec![ProcessPlan::forked(vec![fid(0)])],
            }],
            vec![
                SandboxPlan {
                    id: SandboxId(0),
                    cpus: 64,
                    pool_size: 0,
                },
                SandboxPlan {
                    id: SandboxId(1),
                    cpus: 1,
                    pool_size: 0,
                },
            ],
        );
        let p = NodePlacement::first_fit(&plan, 40);
        assert_eq!(p.node_of(SandboxId(0)), Some(0));
        assert_eq!(p.node_of(SandboxId(1)), Some(1));
    }

    #[test]
    fn system_labels() {
        assert_eq!(SystemKind::FaastlaneT.label(), "Faastlane-T");
        assert!(SystemKind::Asf.is_one_to_one());
        assert!(!SystemKind::Chiron.is_one_to_one());
    }
}
