//! Dynamic DAGs — the §7 "Application scenario (2)" extension.
//!
//! The paper's Chiron requires the function chain to be known a priori and
//! names dynamic workflows (e.g. Video-FFmpeg's *switch* step, which runs
//! either `split` or `simple_process` depending on `upload`'s result) as
//! future work. This module implements the natural completion: a
//! [`DynamicWorkflow`] may contain *switch stages* with alternative
//! branches; every resolvable variant is a static [`Workflow`], so PGP can
//! pre-plan each variant offline and the orchestrator routes per request
//! using a deterministic [`BranchSelector`] over the upstream output.

use crate::function::{FunctionId, FunctionSpec};
use crate::workflow::{Workflow, WorkflowError};
use serde::{Deserialize, Serialize};

/// Decides which branch of a switch stage a request takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchSelector {
    /// Branch 1 when the upstream stage's total output exceeds the
    /// threshold, else branch 0 (Video-FFmpeg: large uploads are split).
    OutputBytesAbove { threshold: u64 },
    /// Always the given branch (degenerate, useful for testing).
    Fixed(usize),
}

impl BranchSelector {
    /// Resolves the branch index for a request whose upstream stage
    /// produced `upstream_bytes`.
    pub fn select(&self, upstream_bytes: u64, n_branches: usize) -> usize {
        let choice = match *self {
            BranchSelector::OutputBytesAbove { threshold } => {
                usize::from(upstream_bytes > threshold)
            }
            BranchSelector::Fixed(branch) => branch,
        };
        choice.min(n_branches.saturating_sub(1))
    }
}

/// One stage of a dynamic workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DynStage {
    /// An ordinary stage of parallel functions.
    Static(Vec<FunctionId>),
    /// A data-dependent choice among alternative branches, each a set of
    /// parallel functions.
    Switch {
        selector: BranchSelector,
        branches: Vec<Vec<FunctionId>>,
    },
}

/// A workflow whose shape is only fixed at request time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicWorkflow {
    pub name: String,
    pub functions: Vec<FunctionSpec>,
    pub stages: Vec<DynStage>,
}

impl DynamicWorkflow {
    /// Number of switch stages.
    pub fn switch_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s, DynStage::Switch { .. }))
            .count()
    }

    /// Total number of static variants (product of branch counts).
    pub fn variant_count(&self) -> usize {
        self.stages
            .iter()
            .map(|s| match s {
                DynStage::Static(_) => 1,
                DynStage::Switch { branches, .. } => branches.len(),
            })
            .product()
    }

    /// Concretises one variant. `choices` supplies the branch index per
    /// switch stage, in order. Functions on unchosen branches are dropped
    /// from the variant's function table (ids are remapped).
    pub fn resolve(&self, choices: &[usize]) -> Result<Workflow, WorkflowError> {
        let mut choice_iter = choices.iter();
        let chosen_stages: Vec<Vec<FunctionId>> = self
            .stages
            .iter()
            .map(|stage| match stage {
                DynStage::Static(fns) => fns.clone(),
                DynStage::Switch { branches, .. } => {
                    let &c = choice_iter.next().expect("one choice per switch stage");
                    branches[c.min(branches.len() - 1)].clone()
                }
            })
            .collect();
        // Remap to a compact function table containing only used functions.
        let mut remap = vec![None; self.functions.len()];
        let mut functions = Vec::new();
        let mut stages = Vec::new();
        for stage in &chosen_stages {
            let mut ids = Vec::with_capacity(stage.len());
            for &f in stage {
                let new = *remap[f.index()].get_or_insert_with(|| {
                    functions.push(self.functions[f.index()].clone());
                    (functions.len() - 1) as u32
                });
                ids.push(new);
            }
            stages.push(ids);
        }
        let name = format!("{}#{:?}", self.name, choices);
        Workflow::new(name, functions, stages)
    }

    /// Enumerates every static variant together with its choice vector —
    /// the offline pre-planning set for PGP.
    pub fn variants(&self) -> Vec<(Vec<usize>, Workflow)> {
        let switch_sizes: Vec<usize> = self
            .stages
            .iter()
            .filter_map(|s| match s {
                DynStage::Switch { branches, .. } => Some(branches.len()),
                DynStage::Static(_) => None,
            })
            .collect();
        let mut out = Vec::new();
        let total: usize = switch_sizes.iter().product::<usize>().max(1);
        for mut idx in 0..total {
            let mut choices = Vec::with_capacity(switch_sizes.len());
            for &size in &switch_sizes {
                choices.push(idx % size);
                idx /= size;
            }
            let wf = self
                .resolve(&choices)
                .expect("every variant of a valid dynamic workflow is valid");
            out.push((choices, wf));
        }
        out
    }

    /// Routes one request: walks the stages, applying each switch's
    /// selector to the upstream stage's total output bytes, and returns the
    /// chosen variant's choice vector.
    pub fn route(&self, request_bytes: u64) -> Vec<usize> {
        let mut choices = Vec::new();
        let mut upstream_bytes = request_bytes;
        for stage in &self.stages {
            let fns: &[FunctionId] = match stage {
                DynStage::Static(fns) => fns,
                DynStage::Switch { selector, branches } => {
                    let c = selector.select(upstream_bytes, branches.len());
                    choices.push(c);
                    &branches[c]
                }
            };
            upstream_bytes = fns
                .iter()
                .map(|&f| self.functions[f.index()].output_bytes)
                .sum();
        }
        choices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Segment;

    /// Video-FFmpeg (§7): upload → switch(split | simple_process) → merge.
    fn video_ffmpeg() -> DynamicWorkflow {
        let f = |name: &str, ms: u64, out: u64| {
            FunctionSpec::new(name, vec![Segment::cpu_ms(ms)]).with_output_bytes(out)
        };
        DynamicWorkflow {
            name: "VideoFFmpeg".into(),
            functions: vec![
                f("upload", 5, 8 << 20),          // 0: large upload
                f("simple_process", 20, 1 << 20), // 1: small-file path
                f("split_a", 12, 2 << 20),        // 2: parallel split path
                f("split_b", 12, 2 << 20),        // 3
                f("merge", 8, 1 << 20),           // 4
            ],
            stages: vec![
                DynStage::Static(vec![FunctionId(0)]),
                DynStage::Switch {
                    selector: BranchSelector::OutputBytesAbove { threshold: 4 << 20 },
                    branches: vec![vec![FunctionId(1)], vec![FunctionId(2), FunctionId(3)]],
                },
                DynStage::Static(vec![FunctionId(4)]),
            ],
        }
    }

    #[test]
    fn variant_enumeration() {
        let dw = video_ffmpeg();
        assert_eq!(dw.switch_count(), 1);
        assert_eq!(dw.variant_count(), 2);
        let variants = dw.variants();
        assert_eq!(variants.len(), 2);
        assert_eq!(variants[0].1.function_count(), 3); // upload, simple, merge
        assert_eq!(variants[1].1.function_count(), 4); // upload, split×2, merge
        for (_, wf) in &variants {
            wf.validate().unwrap();
        }
    }

    #[test]
    fn resolve_remaps_ids_compactly() {
        let dw = video_ffmpeg();
        let wf = dw.resolve(&[1]).unwrap();
        assert_eq!(wf.stages[1].functions.len(), 2);
        // The split functions must reference valid compact ids.
        assert_eq!(wf.function(wf.stages[1].functions[0]).name, "split_a");
        assert_eq!(wf.function(wf.stages[2].functions[0]).name, "merge");
    }

    #[test]
    fn routing_follows_upstream_output() {
        let dw = video_ffmpeg();
        // upload outputs 8 MB > 4 MB threshold → the split branch.
        assert_eq!(dw.route(1024), vec![1]);
    }

    #[test]
    fn selector_semantics() {
        let s = BranchSelector::OutputBytesAbove { threshold: 100 };
        assert_eq!(s.select(50, 2), 0);
        assert_eq!(s.select(150, 2), 1);
        assert_eq!(BranchSelector::Fixed(7).select(0, 2), 1, "clamped");
    }

    #[test]
    fn fixed_selector_route() {
        let mut dw = video_ffmpeg();
        if let DynStage::Switch { selector, .. } = &mut dw.stages[1] {
            *selector = BranchSelector::Fixed(0);
        }
        assert_eq!(dw.route(0), vec![0]);
    }
}
