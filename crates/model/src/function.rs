//! Serverless function specifications.
//!
//! A function's runtime behaviour is a sequence of [`Segment`]s: CPU bursts
//! interleaved with blocking syscalls. This mirrors exactly what the paper's
//! Profiler extracts with `strace` (§3.2, Fig. 10): timestamps and durations
//! of blocking syscalls, with everything in between treated as CPU time.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a function within its workflow's function table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

impl FunctionId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The class of blocking syscall a block segment models.
///
/// The distinction matters to the Profiler (different syscalls appear in the
/// strace log) and to workload typing (disk-I/O vs network-I/O intensive
/// functions in SLApp), not to the GIL simulation itself: all of them drop
/// the GIL for their duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyscallKind {
    /// `read`/`write` on a regular file (disk I/O).
    DiskIo,
    /// `poll`/`select`/`sendto`/`recvfrom` (network I/O).
    NetIo,
    /// `select`-based sleeping (`time.sleep` in CPython).
    Sleep,
}

impl SyscallKind {
    /// The representative syscall name that would appear in an strace log.
    pub fn syscall_name(self) -> &'static str {
        match self {
            SyscallKind::DiskIo => "read",
            SyscallKind::NetIo => "sendto",
            SyscallKind::Sleep => "select",
        }
    }
}

/// One phase of a function's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segment {
    /// Executes bytecode while holding the interpreter lock (if any).
    Cpu(SimDuration),
    /// A blocking operation; the thread drops the GIL for its duration.
    Block { kind: SyscallKind, dur: SimDuration },
}

impl Segment {
    pub const fn cpu_ms(ms: u64) -> Segment {
        Segment::Cpu(SimDuration::from_millis(ms))
    }

    pub fn cpu_ms_f64(ms: f64) -> Segment {
        Segment::Cpu(SimDuration::from_millis_f64(ms))
    }

    pub fn block_ms(kind: SyscallKind, ms: f64) -> Segment {
        Segment::Block {
            kind,
            dur: SimDuration::from_millis_f64(ms),
        }
    }

    pub fn duration(self) -> SimDuration {
        match self {
            Segment::Cpu(d) => d,
            Segment::Block { dur, .. } => dur,
        }
    }

    pub fn is_cpu(self) -> bool {
        matches!(self, Segment::Cpu(_))
    }
}

/// Coarse workload class, used by SLApp and for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    CpuIntensive,
    DiskIoIntensive,
    NetIoIntensive,
    Mixed,
}

/// The language runtime a function's code requires.
///
/// Functions with conflicting runtimes can never share a sandbox (§3.4), so
/// PGP must pin them into singleton wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LanguageRuntime {
    Python3,
    Python2,
    NodeJs,
    Java,
}

impl LanguageRuntime {
    /// Whether two runtimes can coexist inside one sandbox image.
    pub fn compatible(self, other: LanguageRuntime) -> bool {
        self == other
    }

    /// Whether threads of this runtime achieve true parallelism.
    pub fn true_parallel(self) -> bool {
        matches!(self, LanguageRuntime::Java)
    }
}

/// Static specification of one serverless function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    pub name: String,
    /// Ground-truth execution behaviour (what strace would observe).
    pub segments: Vec<Segment>,
    /// Bytes of intermediate output shipped to every downstream consumer.
    pub output_bytes: u64,
    /// Private working-set memory beyond the shared runtime image, in bytes.
    pub workingset_bytes: u64,
    pub class: WorkloadClass,
    pub runtime: LanguageRuntime,
    /// Files the function opens for writing. Two functions that write the
    /// same file must not share a sandbox (§3.4).
    pub writes_files: Vec<String>,
}

impl FunctionSpec {
    pub fn new(name: impl Into<String>, segments: Vec<Segment>) -> Self {
        FunctionSpec {
            name: name.into(),
            segments,
            output_bytes: 1 << 10,
            workingset_bytes: 512 << 10,
            class: WorkloadClass::Mixed,
            runtime: LanguageRuntime::Python3,
            writes_files: Vec::new(),
        }
    }

    pub fn with_output_bytes(mut self, bytes: u64) -> Self {
        self.output_bytes = bytes;
        self
    }

    pub fn with_workingset_bytes(mut self, bytes: u64) -> Self {
        self.workingset_bytes = bytes;
        self
    }

    pub fn with_class(mut self, class: WorkloadClass) -> Self {
        self.class = class;
        self
    }

    pub fn with_runtime(mut self, runtime: LanguageRuntime) -> Self {
        self.runtime = runtime;
        self
    }

    pub fn with_writes_file(mut self, path: impl Into<String>) -> Self {
        self.writes_files.push(path.into());
        self
    }

    /// Total CPU demand across all segments.
    pub fn cpu_time(&self) -> SimDuration {
        self.segments
            .iter()
            .filter(|s| s.is_cpu())
            .map(|s| s.duration())
            .sum()
    }

    /// Total blocking time across all segments.
    pub fn block_time(&self) -> SimDuration {
        self.segments
            .iter()
            .filter(|s| !s.is_cpu())
            .map(|s| s.duration())
            .sum()
    }

    /// Solo-run latency on a dedicated CPU: the sum of all segments.
    pub fn solo_latency(&self) -> SimDuration {
        self.segments.iter().map(|s| s.duration()).sum()
    }

    /// True when this function conflicts with `other` on a shared file.
    pub fn file_conflict(&self, other: &FunctionSpec) -> bool {
        self.writes_files
            .iter()
            .any(|f| other.writes_files.contains(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FunctionSpec {
        FunctionSpec::new(
            "f",
            vec![
                Segment::cpu_ms(3),
                Segment::block_ms(SyscallKind::DiskIo, 2.0),
                Segment::cpu_ms(1),
            ],
        )
    }

    #[test]
    fn cpu_block_split() {
        let f = spec();
        assert_eq!(f.cpu_time().as_millis_f64(), 4.0);
        assert_eq!(f.block_time().as_millis_f64(), 2.0);
        assert_eq!(f.solo_latency().as_millis_f64(), 6.0);
    }

    #[test]
    fn file_conflicts() {
        let a = FunctionSpec::new("a", vec![Segment::cpu_ms(1)]).with_writes_file("/tmp/x");
        let b = FunctionSpec::new("b", vec![Segment::cpu_ms(1)]).with_writes_file("/tmp/x");
        let c = FunctionSpec::new("c", vec![Segment::cpu_ms(1)]).with_writes_file("/tmp/y");
        assert!(a.file_conflict(&b));
        assert!(!a.file_conflict(&c));
    }

    #[test]
    fn runtime_compat() {
        assert!(LanguageRuntime::Python3.compatible(LanguageRuntime::Python3));
        assert!(!LanguageRuntime::Python3.compatible(LanguageRuntime::Python2));
        assert!(LanguageRuntime::Java.true_parallel());
        assert!(!LanguageRuntime::Python3.true_parallel());
    }

    #[test]
    fn segment_helpers() {
        let s = Segment::block_ms(SyscallKind::Sleep, 1.5);
        assert!(!s.is_cpu());
        assert_eq!(s.duration().as_millis_f64(), 1.5);
        assert_eq!(SyscallKind::Sleep.syscall_name(), "select");
    }
}
