//! Virtual time for the simulated serverless platform.
//!
//! All simulation clocks use integer nanoseconds so that event ordering is
//! exact and runs are bit-for-bit reproducible. Milliseconds are the natural
//! unit of the paper's measurements, so conversion helpers are provided for
//! both directions.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional milliseconds, saturating at zero.
    ///
    /// Fractional inputs are routine: the paper's constants are values such
    /// as 7.5 ms (`T_Startup`) and 3.45 ms (`T_Block`).
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1e6).round() as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a non-negative factor, rounding to
    /// nanoseconds. Rounds half-up via `+0.5` and truncation — identical
    /// to `round()` for the non-negative products this takes, but a
    /// single convert instruction instead of `round`'s inlined
    /// sign-and-exponent dance (this sits on the per-dispatch hot path).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration scale");
        SimDuration((self.0 as f64 * factor + 0.5) as u64)
    }

    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }

    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel instant later than any reachable simulation time.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    pub fn from_millis_f64(ms: f64) -> Self {
        SimTime(SimDuration::from_millis_f64(ms).as_nanos())
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self.0 >= earlier.0, "SimTime::since ordering");
        SimDuration(self.0 - earlier.0)
    }

    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_roundtrip() {
        let d = SimDuration::from_millis(7);
        assert_eq!(d.as_nanos(), 7_000_000);
        assert!((d.as_millis_f64() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_millis() {
        let d = SimDuration::from_millis_f64(7.5);
        assert_eq!(d.as_nanos(), 7_500_000);
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!((a + b).as_millis_f64(), 14.0);
        assert_eq!((a - b).as_millis_f64(), 6.0);
        assert_eq!((a * 3).as_millis_f64(), 30.0);
        assert_eq!((a / 2).as_millis_f64(), 5.0);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn time_advance_and_since() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(3);
        assert_eq!(t1.since(t0).as_millis_f64(), 3.0);
        assert!(t1 > t0);
        assert!(t1 < SimTime::FAR_FUTURE);
    }

    #[test]
    fn scale() {
        let d = SimDuration::from_millis(10).mul_f64(1.5);
        assert_eq!(d.as_millis_f64(), 15.0);
    }

    #[test]
    fn sum_and_minmax() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .sum();
        assert_eq!(total.as_millis_f64(), 6.0);
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
