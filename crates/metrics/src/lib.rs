//! # chiron-metrics
//!
//! Measurement and accounting utilities for the Chiron reproduction:
//! latency statistics and CDFs (Fig. 13–15), static resource accounting
//! (Fig. 8/16/17), node-level throughput capacity (Fig. 16/18), and the
//! GB-second / GHz-second / state-transition dollar-cost model (Fig. 19).

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod loadgen;
pub mod resources;
pub mod rng;
pub mod stats;
pub mod throughput;

pub use cost::{request_cost, CostReport};
pub use loadgen::{
    drive_load, drive_load_with, saturation_rps, ArrivalGen, ArrivalProcess, LoadReport,
};
pub use resources::{plan_resources, ResourceUsage};
pub use rng::FastRng;
pub use stats::{mean_abs_error, prediction_error, LatencySamples, StreamingHistogram};
pub use throughput::{node_throughput, Bottleneck, ThroughputReport};
