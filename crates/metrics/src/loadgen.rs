//! Load-generation validation of the throughput analysis.
//!
//! [`node_throughput`](crate::throughput::node_throughput) derives the
//! node's capacity analytically (resident concurrency ÷ latency). This
//! module *drives* that capacity: a FIFO multi-server queueing simulation
//! where each resident deployment instance is a server and per-request
//! service times come from measured latency samples. The saturation search
//! finds the highest arrival rate whose sojourn time stays bounded — which
//! must agree with the analytic figure.

use crate::stats::LatencySamples;
use chiron_model::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How request arrivals are spaced in open-loop load generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Deterministic spacing of exactly `1/rps` between arrivals.
    Uniform,
    /// Memoryless (exponential) inter-arrival gaps at mean rate `rps`,
    /// drawn from a generator seeded with the given value — the classic
    /// M/G/k arrival side, reproducible run-to-run.
    Poisson { seed: u64 },
    /// Non-homogeneous Poisson arrivals whose instantaneous rate follows
    /// a sinusoid around the phase's mean `rps`:
    /// `rate(t) = rps × (1 + amplitude × sin(2πt / period))`. This is the
    /// diurnal traffic pattern production FaaS fleets see — the pattern
    /// prewarm-pool forecasting exists to track. Integer fields keep the
    /// process `Eq`/hashable: `amplitude_pct` is the swing in percent
    /// (50 → ±50% around the mean) and must stay below 100 so the rate
    /// never reaches zero.
    Diurnal {
        period_ms: u64,
        amplitude_pct: u8,
        seed: u64,
    },
}

/// Stateful inter-arrival gap generator for one [`ArrivalProcess`].
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: StdRng,
    /// Accumulated simulated time since the stream started — the phase
    /// of the diurnal sinusoid. Unused by the homogeneous processes.
    elapsed: SimDuration,
}

impl ArrivalProcess {
    pub fn gaps(self) -> ArrivalGen {
        let seed = match self {
            ArrivalProcess::Uniform => 0,
            ArrivalProcess::Poisson { seed } | ArrivalProcess::Diurnal { seed, .. } => seed,
        };
        ArrivalGen {
            process: self,
            rng: StdRng::seed_from_u64(seed),
            elapsed: SimDuration::ZERO,
        }
    }
}

impl ArrivalGen {
    /// Next gap to the following arrival at mean rate `rps`.
    pub fn next_gap(&mut self, rps: f64) -> SimDuration {
        assert!(rps > 0.0, "arrival rate must be positive");
        let gap = match self.process {
            ArrivalProcess::Uniform => SimDuration::from_nanos((1e9 / rps).round() as u64),
            ArrivalProcess::Poisson { .. } => {
                // Inverse-CDF exponential; 1 - u avoids ln(0).
                let u: f64 = self.rng.random();
                let secs = -(1.0 - u).ln() / rps;
                SimDuration::from_nanos((secs * 1e9).round() as u64)
            }
            ArrivalProcess::Diurnal {
                period_ms,
                amplitude_pct,
                ..
            } => {
                assert!(period_ms > 0, "diurnal period must be positive");
                assert!(
                    amplitude_pct < 100,
                    "diurnal amplitude must stay below 100%"
                );
                // Exponential gap at the instantaneous rate. The sinusoid
                // is slow relative to inter-arrival gaps, so freezing the
                // rate at the current phase is an accurate thinning-free
                // approximation of the non-homogeneous process.
                let period = period_ms as f64 / 1e3;
                let phase = 2.0 * std::f64::consts::PI * self.elapsed.as_secs_f64() / period;
                let rate = rps * (1.0 + f64::from(amplitude_pct) / 100.0 * phase.sin());
                let u: f64 = self.rng.random();
                let secs = -(1.0 - u).ln() / rate;
                SimDuration::from_nanos((secs * 1e9).round() as u64)
            }
        };
        self.elapsed += gap;
        gap
    }
}

/// Outcome of driving one arrival rate through the node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    pub offered_rps: f64,
    pub completed: u64,
    /// Mean time from arrival to completion (queueing + service).
    pub mean_sojourn: SimDuration,
    /// 99th-percentile sojourn.
    pub p99_sojourn: SimDuration,
}

/// Simulates `n_requests` uniformly spaced arrivals at `rps` into
/// `servers` parallel deployment instances whose service times cycle
/// through `service_times`.
pub fn drive_load(
    servers: u32,
    service_times: &[SimDuration],
    rps: f64,
    n_requests: u64,
) -> LoadReport {
    drive_load_with(
        servers,
        service_times,
        rps,
        n_requests,
        ArrivalProcess::Uniform,
    )
}

/// [`drive_load`] with an explicit arrival process (uniform or seeded
/// Poisson).
pub fn drive_load_with(
    servers: u32,
    service_times: &[SimDuration],
    rps: f64,
    n_requests: u64,
    arrivals: ArrivalProcess,
) -> LoadReport {
    assert!(servers > 0, "need at least one server");
    assert!(!service_times.is_empty(), "need service-time samples");
    assert!(rps > 0.0, "arrival rate must be positive");
    let mut gaps = arrivals.gaps();
    // Min-heap of server free times.
    let mut free: BinaryHeap<Reverse<u64>> = (0..servers).map(|_| Reverse(0u64)).collect();
    let mut sojourns = LatencySamples::new();
    let mut arrival = SimDuration::ZERO;
    for i in 0..n_requests {
        let service = service_times[(i as usize) % service_times.len()];
        let Reverse(earliest) = free.pop().expect("servers > 0");
        let start = earliest.max(arrival.as_nanos());
        let done = start + service.as_nanos();
        free.push(Reverse(done));
        sojourns.push(SimDuration::from_nanos(done - arrival.as_nanos()));
        arrival += gaps.next_gap(rps);
    }
    LoadReport {
        offered_rps: rps,
        completed: n_requests,
        mean_sojourn: sojourns.mean(),
        p99_sojourn: sojourns.percentile(0.99),
    }
}

/// Finds the maximum sustainable arrival rate: the largest `rps` whose
/// p99 sojourn stays within `slack × mean service time` (binary search).
pub fn saturation_rps(
    servers: u32,
    service_times: &[SimDuration],
    slack: f64,
    n_requests: u64,
) -> f64 {
    assert!(slack >= 1.0);
    let mean_service =
        service_times.iter().map(|d| d.as_secs_f64()).sum::<f64>() / service_times.len() as f64;
    let bound = SimDuration::from_nanos((mean_service * slack * 1e9).round() as u64);
    let ceiling = f64::from(servers) / mean_service; // work-conservation limit
    let (mut lo, mut hi) = (ceiling * 0.01, ceiling * 1.5);
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        let report = drive_load(servers, service_times, mid, n_requests);
        if report.p99_sojourn <= bound {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn underload_has_no_queueing() {
        let report = drive_load(4, &[ms(100)], 10.0, 200);
        // 10 rps of 100ms work on 4 servers = 25% utilisation.
        assert_eq!(report.mean_sojourn, ms(100));
        assert_eq!(report.p99_sojourn, ms(100));
    }

    #[test]
    fn overload_queues_unboundedly() {
        // 4 servers × 100ms can serve 40 rps; offer 80.
        let report = drive_load(4, &[ms(100)], 80.0, 2000);
        assert!(report.p99_sojourn > ms(1000), "p99 {}", report.p99_sojourn);
    }

    #[test]
    fn saturation_matches_analytic_capacity() {
        // Deterministic service: capacity = servers / service = 40 rps.
        let rps = saturation_rps(4, &[ms(100)], 2.0, 4000);
        assert!(
            (36.0..=42.0).contains(&rps),
            "saturation {rps} vs analytic 40"
        );
    }

    #[test]
    fn heterogeneous_service_times() {
        let samples = vec![ms(50), ms(150)]; // mean 100ms
        let rps = saturation_rps(2, &samples, 3.0, 4000);
        assert!(
            (14.0..=22.0).contains(&rps),
            "saturation {rps} vs analytic 20"
        );
    }

    #[test]
    #[should_panic(expected = "need at least one server")]
    fn zero_servers_rejected() {
        drive_load(0, &[ms(1)], 1.0, 1);
    }

    #[test]
    fn poisson_is_reproducible() {
        let a = drive_load_with(
            4,
            &[ms(100)],
            30.0,
            2000,
            ArrivalProcess::Poisson { seed: 7 },
        );
        let b = drive_load_with(
            4,
            &[ms(100)],
            30.0,
            2000,
            ArrivalProcess::Poisson { seed: 7 },
        );
        assert_eq!(a, b);
        let c = drive_load_with(
            4,
            &[ms(100)],
            30.0,
            2000,
            ArrivalProcess::Poisson { seed: 8 },
        );
        assert_ne!(a.mean_sojourn, c.mean_sojourn);
    }

    #[test]
    fn poisson_queues_more_than_uniform() {
        // At 75% utilisation, bursty arrivals queue; uniform arrivals at the
        // same rate see (nearly) no queueing.
        let uniform = drive_load_with(1, &[ms(100)], 7.5, 4000, ArrivalProcess::Uniform);
        let poisson = drive_load_with(
            1,
            &[ms(100)],
            7.5,
            4000,
            ArrivalProcess::Poisson { seed: 1 },
        );
        assert!(poisson.mean_sojourn > uniform.mean_sojourn);
    }

    #[test]
    fn diurnal_rate_tracks_the_sinusoid() {
        // One 60s period at mean 50 rps, ±60%: the first half-period
        // (peak) must produce arrivals faster than the second (trough).
        let mut gaps = ArrivalProcess::Diurnal {
            period_ms: 60_000,
            amplitude_pct: 60,
            seed: 11,
        }
        .gaps();
        let mut t = SimDuration::ZERO;
        let (mut peak, mut trough) = (0u64, 0u64);
        while t < SimDuration::from_millis(60_000) {
            if t < SimDuration::from_millis(30_000) {
                peak += 1;
            } else {
                trough += 1;
            }
            t += gaps.next_gap(50.0);
        }
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "peak {peak} vs trough {trough}"
        );
        // Over whole periods the mean rate is still ~rps: 60s × 50.
        let total = peak + trough;
        assert!((2_400..=3_600).contains(&total), "total {total}");
    }

    #[test]
    fn diurnal_is_reproducible_and_seed_sensitive() {
        let process = ArrivalProcess::Diurnal {
            period_ms: 10_000,
            amplitude_pct: 40,
            seed: 5,
        };
        let draw = |p: ArrivalProcess| {
            let mut g = p.gaps();
            (0..500).map(|_| g.next_gap(20.0)).collect::<Vec<_>>()
        };
        assert_eq!(draw(process), draw(process));
        let other = ArrivalProcess::Diurnal {
            period_ms: 10_000,
            amplitude_pct: 40,
            seed: 6,
        };
        assert_ne!(draw(process), draw(other));
    }

    #[test]
    #[should_panic(expected = "amplitude must stay below 100%")]
    fn diurnal_full_swing_rejected() {
        ArrivalProcess::Diurnal {
            period_ms: 1_000,
            amplitude_pct: 100,
            seed: 0,
        }
        .gaps()
        .next_gap(10.0);
    }

    #[test]
    fn poisson_gap_mean_matches_rate() {
        let mut gaps = ArrivalProcess::Poisson { seed: 3 }.gaps();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| gaps.next_gap(50.0).as_secs_f64()).sum();
        let mean = total / f64::from(n);
        // Expected gap 20ms; the sample mean should land within a few %.
        assert!((0.018..0.022).contains(&mean), "mean gap {mean}");
    }
}
