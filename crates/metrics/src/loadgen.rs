//! Load-generation validation of the throughput analysis.
//!
//! [`node_throughput`](crate::throughput::node_throughput) derives the
//! node's capacity analytically (resident concurrency ÷ latency). This
//! module *drives* that capacity: a FIFO multi-server queueing simulation
//! where each resident deployment instance is a server and per-request
//! service times come from measured latency samples. The saturation search
//! finds the highest arrival rate whose sojourn time stays bounded — which
//! must agree with the analytic figure.

use crate::rng::FastRng;
use crate::stats::LatencySamples;
use chiron_model::SimDuration;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How request arrivals are spaced in open-loop load generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Deterministic spacing of exactly `1/rps` between arrivals.
    Uniform,
    /// Memoryless (exponential) inter-arrival gaps at mean rate `rps`,
    /// drawn from a generator seeded with the given value — the classic
    /// M/G/k arrival side, reproducible run-to-run.
    Poisson { seed: u64 },
    /// Non-homogeneous Poisson arrivals whose instantaneous rate follows
    /// a sinusoid around the phase's mean `rps`:
    /// `rate(t) = rps × (1 + amplitude × sin(2πt / period))`. This is the
    /// diurnal traffic pattern production FaaS fleets see — the pattern
    /// prewarm-pool forecasting exists to track. Integer fields keep the
    /// process `Eq`/hashable: `amplitude_pct` is the swing in percent
    /// (50 → ±50% around the mean) and must stay below 100 so the rate
    /// never reaches zero.
    Diurnal {
        period_ms: u64,
        amplitude_pct: u8,
        seed: u64,
    },
}

/// Stateful inter-arrival gap generator for one [`ArrivalProcess`].
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: FastRng,
    /// Accumulated simulated time since the stream started — the phase
    /// of the diurnal sinusoid. Unused by the homogeneous processes.
    elapsed: SimDuration,
}

/// Fast natural log for the inverse-CDF exponential draw — the single
/// transcendental on the arrival hot path (one call per simulated
/// request). Splits `x = m·2^e` with `m ∈ [√½, √2)` and sums the atanh
/// series in `t = (m−1)/(m+1)` (|t| ≤ 0.172, so the truncated `t¹¹` term
/// is < 1e-10 relative): ~3× cheaper than libm's `ln` and exactly as
/// deterministic. Only valid for normal positive `x`, which `1 − u`,
/// `u ∈ [0,1)` from a 53-bit uniform, always is.
fn fast_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_normal());
    let bits = x.to_bits();
    let mut e = ((bits >> 52) as i32) - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let series = 1.0
        + t2 * (1.0 / 3.0
            + t2 * (1.0 / 5.0 + t2 * (1.0 / 7.0 + t2 * (1.0 / 9.0 + t2 * (1.0 / 11.0)))));
    2.0 * t * series + f64::from(e) * std::f64::consts::LN_2
}

/// SplitMix64 finaliser — decorrelates substream seeds derived from a
/// parent seed and a stream index.
fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ArrivalProcess {
    /// Derives the `index`-th substream of this process: the same process
    /// shape with a seed split from the parent's, so a fleet of clusters
    /// can each draw an independent arrival stream that is (a) fully
    /// determined by the parent `(seed, index)` pair and (b) identical no
    /// matter how clusters are grouped into shards or threads. `Uniform`
    /// has no randomness and splits to itself.
    pub fn substream(self, index: u32) -> ArrivalProcess {
        match self {
            ArrivalProcess::Uniform => ArrivalProcess::Uniform,
            ArrivalProcess::Poisson { seed } => ArrivalProcess::Poisson {
                seed: split_seed(seed, u64::from(index)),
            },
            ArrivalProcess::Diurnal {
                period_ms,
                amplitude_pct,
                seed,
            } => ArrivalProcess::Diurnal {
                period_ms,
                amplitude_pct,
                seed: split_seed(seed, u64::from(index)),
            },
        }
    }

    pub fn gaps(self) -> ArrivalGen {
        let seed = match self {
            ArrivalProcess::Uniform => 0,
            ArrivalProcess::Poisson { seed } | ArrivalProcess::Diurnal { seed, .. } => seed,
        };
        ArrivalGen {
            process: self,
            rng: FastRng::seed_from_u64(seed),
            elapsed: SimDuration::ZERO,
        }
    }
}

impl ArrivalGen {
    /// Next gap to the following arrival at mean rate `rps`.
    pub fn next_gap(&mut self, rps: f64) -> SimDuration {
        assert!(rps > 0.0, "arrival rate must be positive");
        let gap = match self.process {
            ArrivalProcess::Uniform => SimDuration::from_nanos((1e9 / rps).round() as u64),
            ArrivalProcess::Poisson { .. } => {
                // Inverse-CDF exponential; 1 - u avoids ln(0).
                let u = self.rng.next_f64();
                let secs = -fast_ln(1.0 - u) / rps;
                // Half-up rounding: same as `round()` for positive gaps,
                // one convert instead of the inlined `round` sequence.
                SimDuration::from_nanos((secs * 1e9 + 0.5) as u64)
            }
            ArrivalProcess::Diurnal {
                period_ms,
                amplitude_pct,
                ..
            } => {
                assert!(period_ms > 0, "diurnal period must be positive");
                assert!(
                    amplitude_pct < 100,
                    "diurnal amplitude must stay below 100%"
                );
                // Exponential gap at the instantaneous rate. The sinusoid
                // is slow relative to inter-arrival gaps, so freezing the
                // rate at the current phase is an accurate thinning-free
                // approximation of the non-homogeneous process.
                let period = period_ms as f64 / 1e3;
                let phase = 2.0 * std::f64::consts::PI * self.elapsed.as_secs_f64() / period;
                let rate = rps * (1.0 + f64::from(amplitude_pct) / 100.0 * phase.sin());
                let u = self.rng.next_f64();
                let secs = -fast_ln(1.0 - u) / rate;
                SimDuration::from_nanos((secs * 1e9 + 0.5) as u64)
            }
        };
        self.elapsed += gap;
        gap
    }
}

/// Outcome of driving one arrival rate through the node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    pub offered_rps: f64,
    pub completed: u64,
    /// Mean time from arrival to completion (queueing + service).
    pub mean_sojourn: SimDuration,
    /// 99th-percentile sojourn.
    pub p99_sojourn: SimDuration,
}

/// Simulates `n_requests` uniformly spaced arrivals at `rps` into
/// `servers` parallel deployment instances whose service times cycle
/// through `service_times`.
pub fn drive_load(
    servers: u32,
    service_times: &[SimDuration],
    rps: f64,
    n_requests: u64,
) -> LoadReport {
    drive_load_with(
        servers,
        service_times,
        rps,
        n_requests,
        ArrivalProcess::Uniform,
    )
}

/// [`drive_load`] with an explicit arrival process (uniform or seeded
/// Poisson).
pub fn drive_load_with(
    servers: u32,
    service_times: &[SimDuration],
    rps: f64,
    n_requests: u64,
    arrivals: ArrivalProcess,
) -> LoadReport {
    assert!(servers > 0, "need at least one server");
    assert!(!service_times.is_empty(), "need service-time samples");
    assert!(rps > 0.0, "arrival rate must be positive");
    let mut gaps = arrivals.gaps();
    // Min-heap of server free times.
    let mut free: BinaryHeap<Reverse<u64>> = (0..servers).map(|_| Reverse(0u64)).collect();
    let mut sojourns = LatencySamples::new();
    let mut arrival = SimDuration::ZERO;
    for i in 0..n_requests {
        let service = service_times[(i as usize) % service_times.len()];
        let Reverse(earliest) = free.pop().expect("servers > 0");
        let start = earliest.max(arrival.as_nanos());
        let done = start + service.as_nanos();
        free.push(Reverse(done));
        sojourns.push(SimDuration::from_nanos(done - arrival.as_nanos()));
        arrival += gaps.next_gap(rps);
    }
    LoadReport {
        offered_rps: rps,
        completed: n_requests,
        mean_sojourn: sojourns.mean(),
        p99_sojourn: sojourns.percentile(0.99),
    }
}

/// Finds the maximum sustainable arrival rate: the largest `rps` whose
/// p99 sojourn stays within `slack × mean service time` (binary search).
pub fn saturation_rps(
    servers: u32,
    service_times: &[SimDuration],
    slack: f64,
    n_requests: u64,
) -> f64 {
    assert!(slack >= 1.0);
    let mean_service =
        service_times.iter().map(|d| d.as_secs_f64()).sum::<f64>() / service_times.len() as f64;
    let bound = SimDuration::from_nanos((mean_service * slack * 1e9).round() as u64);
    let ceiling = f64::from(servers) / mean_service; // work-conservation limit
    let (mut lo, mut hi) = (ceiling * 0.01, ceiling * 1.5);
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        let report = drive_load(servers, service_times, mid, n_requests);
        if report.p99_sojourn <= bound {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn underload_has_no_queueing() {
        let report = drive_load(4, &[ms(100)], 10.0, 200);
        // 10 rps of 100ms work on 4 servers = 25% utilisation.
        assert_eq!(report.mean_sojourn, ms(100));
        assert_eq!(report.p99_sojourn, ms(100));
    }

    #[test]
    fn overload_queues_unboundedly() {
        // 4 servers × 100ms can serve 40 rps; offer 80.
        let report = drive_load(4, &[ms(100)], 80.0, 2000);
        assert!(report.p99_sojourn > ms(1000), "p99 {}", report.p99_sojourn);
    }

    #[test]
    fn saturation_matches_analytic_capacity() {
        // Deterministic service: capacity = servers / service = 40 rps.
        let rps = saturation_rps(4, &[ms(100)], 2.0, 4000);
        assert!(
            (36.0..=42.0).contains(&rps),
            "saturation {rps} vs analytic 40"
        );
    }

    #[test]
    fn heterogeneous_service_times() {
        let samples = vec![ms(50), ms(150)]; // mean 100ms
        let rps = saturation_rps(2, &samples, 3.0, 4000);
        assert!(
            (14.0..=22.0).contains(&rps),
            "saturation {rps} vs analytic 20"
        );
    }

    #[test]
    #[should_panic(expected = "need at least one server")]
    fn zero_servers_rejected() {
        drive_load(0, &[ms(1)], 1.0, 1);
    }

    #[test]
    fn poisson_is_reproducible() {
        let a = drive_load_with(
            4,
            &[ms(100)],
            30.0,
            2000,
            ArrivalProcess::Poisson { seed: 7 },
        );
        let b = drive_load_with(
            4,
            &[ms(100)],
            30.0,
            2000,
            ArrivalProcess::Poisson { seed: 7 },
        );
        assert_eq!(a, b);
        let c = drive_load_with(
            4,
            &[ms(100)],
            30.0,
            2000,
            ArrivalProcess::Poisson { seed: 8 },
        );
        assert_ne!(a.mean_sojourn, c.mean_sojourn);
    }

    #[test]
    fn poisson_queues_more_than_uniform() {
        // At 75% utilisation, bursty arrivals queue; uniform arrivals at the
        // same rate see (nearly) no queueing.
        let uniform = drive_load_with(1, &[ms(100)], 7.5, 4000, ArrivalProcess::Uniform);
        let poisson = drive_load_with(
            1,
            &[ms(100)],
            7.5,
            4000,
            ArrivalProcess::Poisson { seed: 1 },
        );
        assert!(poisson.mean_sojourn > uniform.mean_sojourn);
    }

    #[test]
    fn diurnal_rate_tracks_the_sinusoid() {
        // One 60s period at mean 50 rps, ±60%: the first half-period
        // (peak) must produce arrivals faster than the second (trough).
        let mut gaps = ArrivalProcess::Diurnal {
            period_ms: 60_000,
            amplitude_pct: 60,
            seed: 11,
        }
        .gaps();
        let mut t = SimDuration::ZERO;
        let (mut peak, mut trough) = (0u64, 0u64);
        while t < SimDuration::from_millis(60_000) {
            if t < SimDuration::from_millis(30_000) {
                peak += 1;
            } else {
                trough += 1;
            }
            t += gaps.next_gap(50.0);
        }
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "peak {peak} vs trough {trough}"
        );
        // Over whole periods the mean rate is still ~rps: 60s × 50.
        let total = peak + trough;
        assert!((2_400..=3_600).contains(&total), "total {total}");
    }

    #[test]
    fn diurnal_is_reproducible_and_seed_sensitive() {
        let process = ArrivalProcess::Diurnal {
            period_ms: 10_000,
            amplitude_pct: 40,
            seed: 5,
        };
        let draw = |p: ArrivalProcess| {
            let mut g = p.gaps();
            (0..500).map(|_| g.next_gap(20.0)).collect::<Vec<_>>()
        };
        assert_eq!(draw(process), draw(process));
        let other = ArrivalProcess::Diurnal {
            period_ms: 10_000,
            amplitude_pct: 40,
            seed: 6,
        };
        assert_ne!(draw(process), draw(other));
    }

    #[test]
    #[should_panic(expected = "amplitude must stay below 100%")]
    fn diurnal_full_swing_rejected() {
        ArrivalProcess::Diurnal {
            period_ms: 1_000,
            amplitude_pct: 100,
            seed: 0,
        }
        .gaps()
        .next_gap(10.0);
    }

    #[test]
    fn substreams_are_deterministic_and_decorrelated() {
        let parent = ArrivalProcess::Poisson { seed: 42 };
        let draw = |p: ArrivalProcess| {
            let mut g = p.gaps();
            (0..200).map(|_| g.next_gap(100.0)).collect::<Vec<_>>()
        };
        // Same (parent, index) → same stream, regardless of when or where
        // it is split off.
        assert_eq!(draw(parent.substream(3)), draw(parent.substream(3)));
        // Different indices → different streams; index 0 is not the
        // parent stream either (so "cluster 0" never aliases the fleet
        // seed).
        assert_ne!(draw(parent.substream(0)), draw(parent.substream(1)));
        assert_ne!(draw(parent.substream(0)), draw(parent));
        // The diurnal shape survives splitting; only the seed moves.
        let diurnal = ArrivalProcess::Diurnal {
            period_ms: 5_000,
            amplitude_pct: 30,
            seed: 9,
        };
        match diurnal.substream(7) {
            ArrivalProcess::Diurnal {
                period_ms,
                amplitude_pct,
                seed,
            } => {
                assert_eq!(period_ms, 5_000);
                assert_eq!(amplitude_pct, 30);
                assert_ne!(seed, 9);
            }
            other => panic!("substream changed the process shape: {other:?}"),
        }
        // Uniform is deterministic already and splits to itself.
        assert_eq!(
            ArrivalProcess::Uniform.substream(5),
            ArrivalProcess::Uniform
        );
    }

    #[test]
    fn fast_ln_matches_libm() {
        // Sweep (0, 1] — the 1−u domain — plus values above 1 for safety.
        let mut x = 1e-300f64;
        while x <= 4.0 {
            let got = fast_ln(x);
            let want = x.ln();
            let tol = want.abs().max(1.0) * 1e-9;
            assert!((got - want).abs() < tol, "x={x}: {got} vs {want}");
            x *= 1.37;
        }
        assert_eq!(fast_ln(1.0), 0.0);
    }

    #[test]
    fn poisson_gap_mean_matches_rate() {
        let mut gaps = ArrivalProcess::Poisson { seed: 3 }.gaps();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| gaps.next_gap(50.0).as_secs_f64()).sum();
        let mean = total / f64::from(n);
        // Expected gap 20ms; the sample mean should land within a few %.
        assert!((0.018..0.022).contains(&mean), "mean gap {mean}");
    }
}
