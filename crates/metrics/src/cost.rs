//! Dollar-cost accounting (§6.3, Fig. 19).
//!
//! Cost per request = allocated-memory GB-seconds + allocated-CPU
//! GHz-seconds over the request's lifetime, plus — for ASF only — a fee per
//! workflow state transition. The paper reports cost per one million
//! requests, normalised by Chiron.

use crate::resources::ResourceUsage;
use chiron_model::{BillingModel, SimDuration, SystemKind};
use serde::{Deserialize, Serialize};

/// Dollar cost of serving requests with one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    pub usd_per_request: f64,
    pub usd_per_million: f64,
}

/// Computes the per-request and per-million-request dollar cost.
///
/// `state_transitions` is the number of billed workflow state transitions
/// per request (the function count for one-to-one orchestration services;
/// zero elsewhere).
pub fn request_cost(
    system: SystemKind,
    usage: ResourceUsage,
    latency: SimDuration,
    cpu_ghz: f64,
    billing: &BillingModel,
    state_transitions: u32,
) -> CostReport {
    let secs = latency.as_secs_f64();
    let gb = usage.memory_bytes as f64 / (1024.0 * 1024.0 * 1024.0);
    let mut usd = gb * secs * billing.usd_per_gb_second
        + f64::from(usage.cpus) * cpu_ghz * secs * billing.usd_per_ghz_second;
    if system == SystemKind::Asf {
        usd += f64::from(state_transitions) * billing.usd_per_state_transition;
    }
    CostReport {
        usd_per_request: usd,
        usd_per_million: usd * 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage() -> ResourceUsage {
        ResourceUsage {
            memory_bytes: 1 << 30,
            cpus: 2,
        }
    }

    #[test]
    fn compute_cost_without_transitions() {
        let billing = BillingModel::paper_calibrated();
        let report = request_cost(
            SystemKind::Chiron,
            usage(),
            SimDuration::from_secs(1),
            2.0,
            &billing,
            10,
        );
        // 1 GB-s × 2.5e-6 + 2 CPUs × 2 GHz × 1 s × 1e-5 = 2.5e-6 + 4e-5.
        let expected = 2.5e-6 + 4.0e-5;
        assert!((report.usd_per_request - expected).abs() < 1e-12);
        assert!((report.usd_per_million - expected * 1e6).abs() < 1e-3);
    }

    #[test]
    fn asf_pays_state_transitions() {
        let billing = BillingModel::paper_calibrated();
        let base = request_cost(
            SystemKind::Chiron,
            usage(),
            SimDuration::from_millis(100),
            2.1,
            &billing,
            10,
        );
        let asf = request_cost(
            SystemKind::Asf,
            usage(),
            SimDuration::from_millis(100),
            2.1,
            &billing,
            10,
        );
        let delta = asf.usd_per_request - base.usd_per_request;
        assert!((delta - 10.0 * billing.usd_per_state_transition).abs() < 1e-12);
        // State transitions dominate for short requests — the source of the
        // paper's up-to-272× one-to-one cost blowup.
        assert!(asf.usd_per_request > 5.0 * base.usd_per_request);
    }

    #[test]
    fn zero_latency_zero_resource_cost() {
        let billing = BillingModel::paper_calibrated();
        let report = request_cost(
            SystemKind::Faastlane,
            usage(),
            SimDuration::ZERO,
            2.1,
            &billing,
            0,
        );
        assert_eq!(report.usd_per_request, 0.0);
    }
}
