//! Maximum sustainable throughput on one worker node (Fig. 16).
//!
//! Given limited node resources, the number of concurrently resident
//! deployments is bounded by memory and by allocated CPUs; with a per-
//! request latency `L`, each resident deployment serves `1/L` requests per
//! second. This is the capacity analysis the paper's "maximum throughput
//! (req/s) in a worker node" reports.
//!
//! Concurrency is fractional: a deployment demanding more CPUs than the
//! node owns (Faastlane on FINRA-200 wants 200 of 40 cores) still runs,
//! time-sharing the cores, at proportionally reduced service rate.

use crate::resources::ResourceUsage;
use chiron_model::{CostModel, SimDuration};
use serde::{Deserialize, Serialize};

/// Throughput analysis of one deployment on one worker node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Concurrent deployment instances the node can host (fractional when
    /// one instance already oversubscribes a resource).
    pub concurrency: f64,
    /// Which resource runs out first.
    pub bottleneck: Bottleneck,
    /// Sustainable requests per second.
    pub rps: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    Memory,
    Cpu,
}

/// Computes the node-level saturation throughput for a deployment with the
/// given per-request resource footprint and latency.
pub fn node_throughput(
    usage: ResourceUsage,
    latency: SimDuration,
    costs: &CostModel,
) -> ThroughputReport {
    assert!(usage.cpus > 0, "deployment must allocate at least one CPU");
    assert!(!latency.is_zero(), "latency must be positive");
    let by_memory = costs.node_memory_bytes as f64 / usage.memory_bytes.max(1) as f64;
    let by_cpu = f64::from(costs.node_cpus) / f64::from(usage.cpus);
    let (raw, bottleneck) = if by_memory <= by_cpu {
        (by_memory, Bottleneck::Memory)
    } else {
        (by_cpu, Bottleneck::Cpu)
    };
    // Whole instances when more than one fits; fractional (time-shared)
    // capacity when even a single instance oversubscribes the node.
    let concurrency = if raw >= 1.0 { raw.floor() } else { raw };
    let rps = concurrency / latency.as_secs_f64();
    ThroughputReport {
        concurrency,
        bottleneck,
        rps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_bound_deployment() {
        let costs = CostModel::paper_calibrated(); // 40 CPUs, 128 GB
        let usage = ResourceUsage {
            memory_bytes: 100 << 20,
            cpus: 10,
        };
        let report = node_throughput(usage, SimDuration::from_millis(100), &costs);
        assert_eq!(report.bottleneck, Bottleneck::Cpu);
        assert_eq!(report.concurrency, 4.0);
        assert!((report.rps - 40.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_deployment() {
        let costs = CostModel::paper_calibrated();
        let usage = ResourceUsage {
            memory_bytes: 64 << 30,
            cpus: 1,
        };
        let report = node_throughput(usage, SimDuration::from_millis(100), &costs);
        assert_eq!(report.bottleneck, Bottleneck::Memory);
        assert_eq!(report.concurrency, 2.0);
    }

    #[test]
    fn oversubscribed_deployment_time_shares() {
        // 200 CPUs demanded on a 40-core node: 0.2 of an instance.
        let costs = CostModel::paper_calibrated();
        let usage = ResourceUsage {
            memory_bytes: 100 << 20,
            cpus: 200,
        };
        let report = node_throughput(usage, SimDuration::from_millis(500), &costs);
        assert!((report.concurrency - 0.2).abs() < 1e-9);
        assert!(
            report.rps > 0.0,
            "oversubscription must not zero throughput"
        );
        assert!((report.rps - 0.4).abs() < 1e-9);
    }

    #[test]
    fn lower_latency_raises_throughput() {
        let costs = CostModel::paper_calibrated();
        let usage = ResourceUsage {
            memory_bytes: 100 << 20,
            cpus: 2,
        };
        let slow = node_throughput(usage, SimDuration::from_millis(200), &costs);
        let fast = node_throughput(usage, SimDuration::from_millis(50), &costs);
        assert!(fast.rps > slow.rps * 3.9);
    }

    #[test]
    #[should_panic(expected = "latency must be positive")]
    fn zero_latency_rejected() {
        let costs = CostModel::paper_calibrated();
        let usage = ResourceUsage {
            memory_bytes: 1 << 20,
            cpus: 1,
        };
        node_throughput(usage, SimDuration::ZERO, &costs);
    }
}
