//! Latency statistics: summaries, percentiles, CDFs, SLO accounting.

use chiron_model::SimDuration;
use serde::{Deserialize, Serialize};

/// A batch of latency observations (e.g. one per request, or one per
/// function as in Fig. 15's CDF).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySamples {
    samples: Vec<SimDuration>,
}

impl LatencySamples {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_vec(samples: Vec<SimDuration>) -> Self {
        LatencySamples { samples }
    }

    pub fn push(&mut self, sample: SimDuration) {
        self.samples.push(sample);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.samples.iter().copied()
    }

    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_nanos() as u128).sum();
        SimDuration::from_nanos((total / self.samples.len() as u128) as u64)
    }

    pub fn min(&self) -> SimDuration {
        self.samples
            .iter()
            .copied()
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    pub fn max(&self) -> SimDuration {
        self.samples
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Sample standard deviation in milliseconds.
    pub fn std_ms(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean().as_millis_f64();
        let var: f64 = self
            .samples
            .iter()
            .map(|d| {
                let x = d.as_millis_f64() - mean;
                x * x
            })
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Linear-interpolated percentile, `q` in `[0, 1]`.
    pub fn percentile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            return sorted[lo];
        }
        let frac = pos - lo as f64;
        let lo_ns = sorted[lo].as_nanos() as f64;
        let hi_ns = sorted[hi].as_nanos() as f64;
        SimDuration::from_nanos((lo_ns + (hi_ns - lo_ns) * frac).round() as u64)
    }

    /// Empirical CDF as `(latency, cumulative fraction)` points, sorted by
    /// latency — the exact series Fig. 15 plots.
    pub fn cdf(&self) -> Vec<(SimDuration, f64)> {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        sorted
            .into_iter()
            .enumerate()
            .map(|(i, d)| (d, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Fraction of samples strictly above the SLO (Fig. 14's metric).
    pub fn violation_rate(&self, slo: SimDuration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let violations = self.samples.iter().filter(|&&d| d > slo).count();
        violations as f64 / self.samples.len() as f64
    }
}

impl FromIterator<SimDuration> for LatencySamples {
    fn from_iter<I: IntoIterator<Item = SimDuration>>(iter: I) -> Self {
        LatencySamples {
            samples: iter.into_iter().collect(),
        }
    }
}

/// Streaming latency percentiles in O(1) memory: an HDR-style
/// log-bucketed histogram over nanoseconds.
///
/// Values below 2¹² ns land in exact unit buckets; above that, each
/// power-of-two decade is split into 2¹¹ sub-buckets, bounding relative
/// quantile error at ~0.05%. This is what the serving simulation uses to
/// track millions of sojourn times without keeping every sample
/// ([`LatencySamples`] stays the exact, batch-oriented alternative).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamingHistogram {
    /// `counts[bucket]`; lazily grown, index derived from the value.
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

/// Sub-bucket resolution: 2^SUB_BITS buckets per power-of-two decade.
const SUB_BITS: u32 = 11;

impl Default for StreamingHistogram {
    fn default() -> Self {
        StreamingHistogram {
            counts: Vec::new(),
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl StreamingHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < (1 << (SUB_BITS + 1)) {
            return ns as usize;
        }
        // For ns with highest set bit b > SUB_BITS, use the top SUB_BITS+1
        // bits: decade (b - SUB_BITS) at sub-position of the next SUB_BITS
        // bits. Buckets stay monotone in ns.
        let b = 63 - ns.leading_zeros();
        let decade = (b - SUB_BITS) as usize;
        let sub = ((ns >> (b - SUB_BITS)) - (1 << SUB_BITS)) as usize;
        (1 << (SUB_BITS + 1)) + decade * (1 << SUB_BITS) + sub
    }

    /// Upper edge (inclusive) of a bucket — the value reported for
    /// quantiles landing in it.
    fn bucket_upper(bucket: usize) -> u64 {
        if bucket < (1 << (SUB_BITS + 1)) {
            return bucket as u64;
        }
        let rest = (bucket - (1 << (SUB_BITS + 1))) as u64;
        let decade = (rest >> SUB_BITS) as u32; // the value's top bit − SUB_BITS
        let sub = rest & ((1 << SUB_BITS) - 1);
        (((1u64 << SUB_BITS) + sub + 1) << decade) - 1
    }

    pub fn record(&mut self, sample: SimDuration) {
        let ns = sample.as_nanos();
        let bucket = Self::bucket_of(ns);
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn len(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / u128::from(self.total)) as u64)
    }

    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.min_ns)
    }

    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Quantile `q` in `[0, 1]`: the smallest bucket upper edge whose
    /// cumulative count reaches `q × total` (clamped to the observed max).
    pub fn percentile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return SimDuration::from_nanos(Self::bucket_upper(bucket).min(self.max_ns));
            }
        }
        self.max()
    }

    /// The largest nanosecond value whose bucket's (inclusive) upper edge
    /// is still ≤ `target` — i.e. samples ≤ the returned cut share no
    /// bucket with any sample > `target`.
    ///
    /// This reduces threshold questions on a *future* histogram to two
    /// counters kept online: for samples `v₁..vₙ`,
    /// `hist.percentile(q) > target` ⟺
    /// `#{v ≤ cut} < ceil(q·n) && any(v > target)` — the left clause
    /// finds the quantile's bucket past the cut, the right one accounts
    /// for the `max_ns` clamp `percentile` applies. Hot per-sample paths
    /// (the autoscaler's tick window) use this instead of maintaining a
    /// full histogram they would reset every tick.
    pub fn threshold_cut(target_ns: u64) -> u64 {
        let bucket = Self::bucket_of(target_ns);
        let upper = Self::bucket_upper(bucket);
        if upper == target_ns {
            // Exact edge (always the case in the fine sub-2^12 region).
            target_ns
        } else {
            // `bucket` straddles the target; the previous bucket's edge
            // is the last value entirely at or below it.
            Self::bucket_upper(bucket - 1)
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &count) in self.counts.iter_mut().zip(&other.counts) {
            *slot += count;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Relative prediction error `(P̂ − P) / P` (§6.1).
pub fn prediction_error(predicted: SimDuration, actual: SimDuration) -> f64 {
    let actual_ms = actual.as_millis_f64();
    assert!(actual_ms > 0.0, "actual latency must be positive");
    (predicted.as_millis_f64() - actual_ms) / actual_ms
}

/// Mean absolute prediction error over paired samples.
pub fn mean_abs_error(pairs: &[(SimDuration, SimDuration)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|&(p, a)| prediction_error(p, a).abs())
        .sum::<f64>()
        / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn samples(vals: &[u64]) -> LatencySamples {
        vals.iter().map(|&v| ms(v)).collect()
    }

    #[test]
    fn mean_min_max() {
        let s = samples(&[10, 20, 30]);
        assert_eq!(s.mean(), ms(20));
        assert_eq!(s.min(), ms(10));
        assert_eq!(s.max(), ms(30));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_is_safe() {
        let s = LatencySamples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.percentile(0.5), SimDuration::ZERO);
        assert_eq!(s.violation_rate(ms(1)), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = samples(&[10, 20, 30, 40]);
        assert_eq!(s.percentile(0.0), ms(10));
        assert_eq!(s.percentile(1.0), ms(40));
        // median of 4 values: halfway between 20 and 30.
        assert_eq!(s.percentile(0.5), ms(25));
    }

    #[test]
    fn cdf_monotone() {
        let s = samples(&[30, 10, 20]);
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].0, ms(10));
        assert!((cdf[2].1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn violations_counted_strictly() {
        let s = samples(&[10, 20, 30, 40]);
        assert_eq!(s.violation_rate(ms(40)), 0.0);
        assert_eq!(s.violation_rate(ms(25)), 0.5);
        assert_eq!(s.violation_rate(ms(5)), 1.0);
    }

    #[test]
    fn std_dev() {
        let s = samples(&[10, 20]);
        assert!((s.std_ms() - 7.0710678).abs() < 1e-5);
        assert_eq!(samples(&[10]).std_ms(), 0.0);
    }

    #[test]
    fn streaming_histogram_tracks_exact_small_values() {
        let mut h = StreamingHistogram::new();
        for ns in [10u64, 20, 30, 40] {
            h.record(SimDuration::from_nanos(ns));
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.min(), SimDuration::from_nanos(10));
        assert_eq!(h.max(), SimDuration::from_nanos(40));
        assert_eq!(h.mean(), SimDuration::from_nanos(25));
        assert_eq!(h.percentile(0.0), SimDuration::from_nanos(10));
        assert_eq!(h.percentile(1.0), SimDuration::from_nanos(40));
    }

    #[test]
    fn streaming_histogram_matches_batch_percentiles() {
        // Deterministic pseudo-random latencies spanning µs to seconds.
        let mut h = StreamingHistogram::new();
        let mut batch = LatencySamples::new();
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        for _ in 0..50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let ns = 1_000 + x % 2_000_000_000; // up to 2s
            h.record(SimDuration::from_nanos(ns));
            batch.push(SimDuration::from_nanos(ns));
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let approx = h.percentile(q).as_nanos() as f64;
            let exact = batch.percentile(q).as_nanos() as f64;
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel < 0.002,
                "q={q}: approx {approx} vs exact {exact} ({rel})"
            );
        }
    }

    #[test]
    fn streaming_histogram_merge_and_empty() {
        let empty = StreamingHistogram::new();
        assert!(empty.is_empty());
        assert_eq!(empty.percentile(0.99), SimDuration::ZERO);
        assert_eq!(empty.mean(), SimDuration::ZERO);
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        let mut whole = StreamingHistogram::new();
        for v in 1..=1000u64 {
            let d = SimDuration::from_micros(v);
            if v % 2 == 0 {
                a.record(d)
            } else {
                b.record(d)
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.len(), whole.len());
        assert_eq!(a.percentile(0.5), whole.percentile(0.5));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn threshold_cut_counters_match_percentile_breach() {
        // The counter reduction must agree with the full histogram for
        // every (sample set, target) pair: breach ⟺ le_cut < rank ∧ over.
        let targets: Vec<u64> = vec![500, 4_095, 4_096, 5_000, 1_000_000, 500_000_000];
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for round in 0..200 {
            let mut h = StreamingHistogram::new();
            let mut vals = Vec::new();
            let n = 1 + round % 37;
            for _ in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let ns = x % 1_500_000_000;
                h.record(SimDuration::from_nanos(ns));
                vals.push(ns);
            }
            for &target in &targets {
                let cut = StreamingHistogram::threshold_cut(target);
                assert!(cut <= target);
                let le_cut = vals.iter().filter(|&&v| v <= cut).count() as u64;
                let over = vals.iter().any(|&v| v > target);
                let rank = (0.99 * vals.len() as f64).ceil().max(1.0) as u64;
                let counters = le_cut < rank && over;
                let full = h.percentile(0.99) > SimDuration::from_nanos(target);
                assert_eq!(
                    counters, full,
                    "round {round} target {target}: counters {counters} vs full {full}"
                );
            }
        }
    }

    #[test]
    fn prediction_errors() {
        assert!((prediction_error(ms(110), ms(100)) - 0.1).abs() < 1e-12);
        assert!((prediction_error(ms(90), ms(100)) + 0.1).abs() < 1e-12);
        let pairs = vec![(ms(110), ms(100)), (ms(80), ms(100))];
        assert!((mean_abs_error(&pairs) - 0.15).abs() < 1e-12);
        assert_eq!(mean_abs_error(&[]), 0.0);
    }
}
