//! Latency statistics: summaries, percentiles, CDFs, SLO accounting.

use chiron_model::SimDuration;
use serde::{Deserialize, Serialize};

/// A batch of latency observations (e.g. one per request, or one per
/// function as in Fig. 15's CDF).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySamples {
    samples: Vec<SimDuration>,
}

impl LatencySamples {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_vec(samples: Vec<SimDuration>) -> Self {
        LatencySamples { samples }
    }

    pub fn push(&mut self, sample: SimDuration) {
        self.samples.push(sample);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.samples.iter().copied()
    }

    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_nanos() as u128).sum();
        SimDuration::from_nanos((total / self.samples.len() as u128) as u64)
    }

    pub fn min(&self) -> SimDuration {
        self.samples.iter().copied().min().unwrap_or(SimDuration::ZERO)
    }

    pub fn max(&self) -> SimDuration {
        self.samples.iter().copied().max().unwrap_or(SimDuration::ZERO)
    }

    /// Sample standard deviation in milliseconds.
    pub fn std_ms(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean().as_millis_f64();
        let var: f64 = self
            .samples
            .iter()
            .map(|d| {
                let x = d.as_millis_f64() - mean;
                x * x
            })
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Linear-interpolated percentile, `q` in `[0, 1]`.
    pub fn percentile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            return sorted[lo];
        }
        let frac = pos - lo as f64;
        let lo_ns = sorted[lo].as_nanos() as f64;
        let hi_ns = sorted[hi].as_nanos() as f64;
        SimDuration::from_nanos((lo_ns + (hi_ns - lo_ns) * frac).round() as u64)
    }

    /// Empirical CDF as `(latency, cumulative fraction)` points, sorted by
    /// latency — the exact series Fig. 15 plots.
    pub fn cdf(&self) -> Vec<(SimDuration, f64)> {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        sorted
            .into_iter()
            .enumerate()
            .map(|(i, d)| (d, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Fraction of samples strictly above the SLO (Fig. 14's metric).
    pub fn violation_rate(&self, slo: SimDuration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let violations = self.samples.iter().filter(|&&d| d > slo).count();
        violations as f64 / self.samples.len() as f64
    }
}

impl FromIterator<SimDuration> for LatencySamples {
    fn from_iter<I: IntoIterator<Item = SimDuration>>(iter: I) -> Self {
        LatencySamples {
            samples: iter.into_iter().collect(),
        }
    }
}

/// Relative prediction error `(P̂ − P) / P` (§6.1).
pub fn prediction_error(predicted: SimDuration, actual: SimDuration) -> f64 {
    let actual_ms = actual.as_millis_f64();
    assert!(actual_ms > 0.0, "actual latency must be positive");
    (predicted.as_millis_f64() - actual_ms) / actual_ms
}

/// Mean absolute prediction error over paired samples.
pub fn mean_abs_error(pairs: &[(SimDuration, SimDuration)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|&(p, a)| prediction_error(p, a).abs())
        .sum::<f64>()
        / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn samples(vals: &[u64]) -> LatencySamples {
        vals.iter().map(|&v| ms(v)).collect()
    }

    #[test]
    fn mean_min_max() {
        let s = samples(&[10, 20, 30]);
        assert_eq!(s.mean(), ms(20));
        assert_eq!(s.min(), ms(10));
        assert_eq!(s.max(), ms(30));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_is_safe() {
        let s = LatencySamples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.percentile(0.5), SimDuration::ZERO);
        assert_eq!(s.violation_rate(ms(1)), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = samples(&[10, 20, 30, 40]);
        assert_eq!(s.percentile(0.0), ms(10));
        assert_eq!(s.percentile(1.0), ms(40));
        // median of 4 values: halfway between 20 and 30.
        assert_eq!(s.percentile(0.5), ms(25));
    }

    #[test]
    fn cdf_monotone() {
        let s = samples(&[30, 10, 20]);
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].0, ms(10));
        assert!((cdf[2].1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn violations_counted_strictly() {
        let s = samples(&[10, 20, 30, 40]);
        assert_eq!(s.violation_rate(ms(40)), 0.0);
        assert_eq!(s.violation_rate(ms(25)), 0.5);
        assert_eq!(s.violation_rate(ms(5)), 1.0);
    }

    #[test]
    fn std_dev() {
        let s = samples(&[10, 20]);
        assert!((s.std_ms() - 7.0710678).abs() < 1e-5);
        assert_eq!(samples(&[10]).std_ms(), 0.0);
    }

    #[test]
    fn prediction_errors() {
        assert!((prediction_error(ms(110), ms(100)) - 0.1).abs() < 1e-12);
        assert!((prediction_error(ms(90), ms(100)) + 0.1).abs() < 1e-12);
        let pairs = vec![(ms(110), ms(100)), (ms(80), ms(100))];
        assert!((mean_abs_error(&pairs) - 0.15).abs() < 1e-12);
        assert_eq!(mean_abs_error(&[]), 0.0);
    }
}
