//! Static resource accounting for a deployment plan: peak memory and
//! allocated CPUs (Fig. 8, 16, 17).
//!
//! Memory is accounted per sandbox: a shared runtime image (`sandbox_base`),
//! resident pool workers if any, and — at the busiest stage the sandbox
//! serves — private pages per forked process, per thread, and per function
//! working set. The one-to-one model's memory redundancy (≈77 % in FINRA,
//! Observation 4) emerges naturally because every function-sandbox
//! duplicates the runtime image.

use chiron_model::plan::ProcessSpawn;
use chiron_model::{CostModel, DeploymentPlan, Workflow};
use serde::{Deserialize, Serialize};

/// Resource footprint of one deployed workflow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Peak resident memory across all sandboxes, in bytes.
    pub memory_bytes: u64,
    /// Whole CPUs allocated via cgroups (the paper's allocation unit).
    pub cpus: u32,
}

impl ResourceUsage {
    pub fn memory_mb(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Computes the plan's peak resource usage.
pub fn plan_resources(
    plan: &DeploymentPlan,
    workflow: &Workflow,
    costs: &CostModel,
) -> ResourceUsage {
    let mut memory = 0u64;
    for sb in &plan.sandboxes {
        let mut peak_dynamic = 0u64;
        for stage in &plan.stages {
            let mut stage_dynamic = 0u64;
            for wrap in stage.wraps.iter().filter(|w| w.sandbox == sb.id) {
                for proc in &wrap.processes {
                    // Pool workers' resident memory is charged statically
                    // below; forked processes pay private COW pages here.
                    if proc.spawn == ProcessSpawn::Fork {
                        stage_dynamic += costs.process_overhead_bytes;
                    }
                    for &fid in &proc.functions {
                        stage_dynamic += costs.thread_overhead_bytes;
                        stage_dynamic += workflow.function(fid).workingset_bytes;
                    }
                }
            }
            peak_dynamic = peak_dynamic.max(stage_dynamic);
        }
        memory += costs.sandbox_base_bytes
            + u64::from(sb.pool_size) * costs.pool_worker_bytes
            + peak_dynamic;
    }
    ResourceUsage {
        memory_bytes: memory,
        cpus: plan.total_cpus(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::plan::*;
    use chiron_model::{FunctionId, FunctionSpec, Segment};

    fn workflow() -> Workflow {
        let fns = (0..3)
            .map(|i| {
                FunctionSpec::new(format!("f{i}"), vec![Segment::cpu_ms(1)])
                    .with_workingset_bytes(1 << 20)
            })
            .collect();
        Workflow::new("w", fns, vec![vec![0], vec![1, 2]]).unwrap()
    }

    fn base_plan(sandboxes: Vec<SandboxPlan>, stages: Vec<StagePlan>) -> DeploymentPlan {
        DeploymentPlan {
            system: SystemKind::Chiron,
            workflow: "w".into(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::RpcPayload,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes,
            stages,
        }
    }

    #[test]
    fn one_sandbox_peaks_at_busiest_stage() {
        let costs = CostModel::paper_calibrated();
        let plan = base_plan(
            vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 2,
                pool_size: 0,
            }],
            vec![
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::main_reuse(vec![FunctionId(0)])],
                    }],
                },
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![
                            ProcessPlan::forked(vec![FunctionId(1)]),
                            ProcessPlan::forked(vec![FunctionId(2)]),
                        ],
                    }],
                },
            ],
        );
        let usage = plan_resources(&plan, &workflow(), &costs);
        // Busiest stage: 2 forks + 2 threads + 2 working sets.
        let expected = costs.sandbox_base_bytes
            + 2 * costs.process_overhead_bytes
            + 2 * costs.thread_overhead_bytes
            + 2 * (1 << 20);
        assert_eq!(usage.memory_bytes, expected);
        assert_eq!(usage.cpus, 2);
    }

    #[test]
    fn one_to_one_duplicates_runtime_image() {
        let costs = CostModel::paper_calibrated();
        // Three function-sandboxes, one per function.
        let sandboxes = (0..3)
            .map(|i| SandboxPlan {
                id: SandboxId(i),
                cpus: 1,
                pool_size: 0,
            })
            .collect();
        let stages = vec![
            StagePlan {
                wraps: vec![WrapPlan {
                    sandbox: SandboxId(0),
                    processes: vec![ProcessPlan::main_reuse(vec![FunctionId(0)])],
                }],
            },
            StagePlan {
                wraps: vec![
                    WrapPlan {
                        sandbox: SandboxId(1),
                        processes: vec![ProcessPlan::main_reuse(vec![FunctionId(1)])],
                    },
                    WrapPlan {
                        sandbox: SandboxId(2),
                        processes: vec![ProcessPlan::main_reuse(vec![FunctionId(2)])],
                    },
                ],
            },
        ];
        let one_to_one = base_plan(sandboxes, stages);
        let usage = plan_resources(&one_to_one, &workflow(), &costs);
        // Three duplicated runtime images dominate.
        assert!(usage.memory_bytes > 3 * costs.sandbox_base_bytes);
        assert_eq!(usage.cpus, 3);
    }

    #[test]
    fn pool_workers_are_resident() {
        let costs = CostModel::paper_calibrated();
        let plan = base_plan(
            vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 2,
                pool_size: 4,
            }],
            vec![
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::pooled(vec![FunctionId(0)])],
                    }],
                },
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![
                            ProcessPlan::pooled(vec![FunctionId(1)]),
                            ProcessPlan::pooled(vec![FunctionId(2)]),
                        ],
                    }],
                },
            ],
        );
        let usage = plan_resources(&plan, &workflow(), &costs);
        assert!(usage.memory_bytes >= 4 * costs.pool_worker_bytes);
    }

    #[test]
    fn memory_mb_conversion() {
        let usage = ResourceUsage {
            memory_bytes: 10 << 20,
            cpus: 1,
        };
        assert!((usage.memory_mb() - 10.0).abs() < 1e-9);
    }
}
