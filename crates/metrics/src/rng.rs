//! A small, fast PRNG for simulation hot paths.
//!
//! The serving simulator draws two uniform variates per request (the
//! open-loop arrival gap and the service-time jitter), so generator
//! throughput is directly visible in fleet-scale runs. `StdRng`
//! (ChaCha12) is cryptographically strong but costs tens of nanoseconds
//! per draw; discrete-event jitter needs only good equidistribution, not
//! unpredictability. This is xoshiro256++ — the reference generator of
//! Blackman & Vigna, with a 256-bit state, period 2^256 − 1 and a couple
//! of nanoseconds per draw — seeded through SplitMix64 exactly as its
//! authors specify (so similar seeds still land in well-separated
//! states, which the fleet driver's per-cluster substream seeding relies
//! on).

/// xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct FastRng {
    s: [u64; 4],
}

impl FastRng {
    /// Expands a 64-bit seed into the full 256-bit state via SplitMix64,
    /// the seeding scheme recommended for the xoshiro family (it breaks
    /// up correlated seeds such as consecutive integers).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        FastRng {
            s: [next(), next(), next(), next()],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` from the top 53 bits — the same construction
    /// `rand`'s `StandardUniform` uses for `f64`, so swapping generators
    /// changes the stream but not the distribution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // First outputs of xoshiro256++ from the state {1, 2, 3, 4}
        // (reference implementation, prng.di.unimi.it).
        let mut rng = FastRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for &want in &expected {
            assert_eq!(rng.next_u64(), want);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = FastRng::seed_from_u64(42);
        let mut b = FastRng::seed_from_u64(42);
        let mut c = FastRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = FastRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 10k uniforms should be near 0.5.
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
