//! A graph-convolutional-network regressor, from scratch (the paper's GNN
//! baseline, hyper-parameters after BRP-NAS/Eagle): two GCN layers over the
//! wrap relationship graph, mean pooling, and a linear head predicting the
//! end-to-end latency.
//!
//! Propagation uses the standard symmetric normalisation
//! `Â = D^{-1/2} (A + I) D^{-1/2}` (self-loops are added by the feature
//! extractor).

// Index-based loops mirror the matrix equations directly; iterator
// rewrites obscure the math and fight the split mutable borrows.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the GCN regressor.
#[derive(Debug, Clone, Copy)]
pub struct GnnConfig {
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f64,
    pub seed: u64,
}

impl Default for GnnConfig {
    fn default() -> Self {
        GnnConfig {
            hidden: 16,
            epochs: 150,
            lr: 0.01,
            seed: 0x6cc,
        }
    }
}

type Matrix = Vec<Vec<f64>>;

fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (n, k) = (a.len(), b.len());
    let m = b[0].len();
    let mut out = vec![vec![0.0; m]; n];
    for i in 0..n {
        for kk in 0..k {
            let av = a[i][kk];
            if av == 0.0 {
                continue;
            }
            for j in 0..m {
                out[i][j] += av * b[kk][j];
            }
        }
    }
    out
}

fn transpose(a: &Matrix) -> Matrix {
    let (n, m) = (a.len(), a[0].len());
    let mut out = vec![vec![0.0; n]; m];
    for (i, row) in a.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            out[j][i] = v;
        }
    }
    out
}

/// Symmetric normalisation of an adjacency matrix that already contains
/// self-loops.
fn normalise_adjacency(adj: &Matrix) -> Matrix {
    let n = adj.len();
    let inv_sqrt_deg: Vec<f64> = adj
        .iter()
        .map(|row| {
            let d: f64 = row.iter().sum();
            if d > 0.0 {
                d.powf(-0.5)
            } else {
                0.0
            }
        })
        .collect();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            out[i][j] = inv_sqrt_deg[i] * adj[i][j] * inv_sqrt_deg[j];
        }
    }
    out
}

/// A fitted GCN regressor.
#[derive(Debug)]
pub struct GnnRegressor {
    input_dim: usize,
    w1: Matrix,
    w2: Matrix,
    w_out: Vec<f64>,
    b_out: f64,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl GnnRegressor {
    /// Trains on graphs `(node features, adjacency)` with scalar targets.
    pub fn fit(graphs: &[(Matrix, Matrix)], y: &[f64], config: GnnConfig) -> Self {
        assert_eq!(graphs.len(), y.len());
        assert!(!graphs.is_empty(), "cannot fit on an empty dataset");
        let input_dim = graphs[0].0[0].len();
        let h = config.hidden;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let k1 = (2.0 / input_dim as f64).sqrt();
        let k2 = (2.0 / h as f64).sqrt();
        let mut init = |rows: usize, cols: usize, k: f64| -> Matrix {
            (0..rows)
                .map(|_| (0..cols).map(|_| rng.random_range(-k..k)).collect())
                .collect()
        };
        let w1 = init(input_dim, h, k1);
        let w2 = init(h, h, k2);
        let w_out: Vec<f64> = (0..h).map(|_| rng.random_range(-k2..k2)).collect();

        // Node-feature normalisation statistics across all graphs.
        let mut x_mean = vec![0.0; input_dim];
        let mut x_std = vec![0.0; input_dim];
        let mut count = 0.0;
        for (nodes, _) in graphs {
            for row in nodes {
                for (d, &v) in row.iter().enumerate() {
                    x_mean[d] += v;
                }
                count += 1.0;
            }
        }
        for m in &mut x_mean {
            *m /= count;
        }
        for (nodes, _) in graphs {
            for row in nodes {
                for (d, &v) in row.iter().enumerate() {
                    x_std[d] += (v - x_mean[d]).powi(2);
                }
            }
        }
        for s in &mut x_std {
            *s = (*s / count).sqrt().max(1e-9);
        }
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let y_std = (y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / y.len() as f64)
            .sqrt()
            .max(1e-9);

        let mut model = GnnRegressor {
            input_dim,
            w1,
            w2,
            w_out,
            b_out: 0.0,
            x_mean,
            x_std,
            y_mean,
            y_std,
        };
        // Pre-normalise adjacencies once.
        let prepared: Vec<(Matrix, Matrix)> = graphs
            .iter()
            .map(|(nodes, adj)| (model.normalise_nodes(nodes), normalise_adjacency(adj)))
            .collect();

        let mut order: Vec<usize> = (0..graphs.len()).collect();
        for _ in 0..config.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &s in &order {
                let target = (y[s] - model.y_mean) / model.y_std;
                model.sgd_step(&prepared[s].0, &prepared[s].1, target, config.lr);
            }
        }
        model
    }

    fn normalise_nodes(&self, nodes: &Matrix) -> Matrix {
        nodes
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(d, &v)| (v - self.x_mean[d]) / self.x_std[d])
                    .collect()
            })
            .collect()
    }

    /// Forward pass on prepared inputs; returns intermediates for backprop.
    fn forward(&self, x: &Matrix, a_hat: &Matrix) -> (Matrix, Matrix, Matrix, Vec<f64>, f64) {
        let ax = matmul(a_hat, x);
        let z1 = matmul(&ax, &self.w1);
        let h1: Matrix = z1
            .iter()
            .map(|row| row.iter().map(|&v| v.max(0.0)).collect())
            .collect();
        let ah1 = matmul(a_hat, &h1);
        let h2 = matmul(&ah1, &self.w2);
        let n = h2.len() as f64;
        let mut pooled = vec![0.0; self.w_out.len()];
        for row in &h2 {
            for (j, &v) in row.iter().enumerate() {
                pooled[j] += v / n;
            }
        }
        let pred = self.b_out
            + pooled
                .iter()
                .zip(&self.w_out)
                .map(|(a, b)| a * b)
                .sum::<f64>();
        (ax, h1, ah1, pooled, pred)
    }

    fn sgd_step(&mut self, x: &Matrix, a_hat: &Matrix, target: f64, lr: f64) {
        let (ax, h1, ah1, pooled, pred) = self.forward(x, a_hat);
        let n = x.len() as f64;
        let h = self.w_out.len();
        let dl = 2.0 * (pred - target);

        // Head gradients.
        let d_wout: Vec<f64> = pooled.iter().map(|&p| dl * p).collect();
        let d_bout = dl;

        // d pooled → d h2 rows (mean pooling spreads gradient evenly).
        let dpool: Vec<f64> = self.w_out.iter().map(|w| dl * w / n).collect();
        // dW2 = (A·H1)^T · dH2, where every row of dH2 equals dpool.
        let ah1_t = transpose(&ah1);
        let mut d_w2 = vec![vec![0.0; h]; h];
        for (r, ah1_col) in ah1_t.iter().enumerate() {
            let col_sum: f64 = ah1_col.iter().sum();
            for (c, dp) in dpool.iter().enumerate() {
                d_w2[r][c] = col_sum * dp;
            }
        }
        // dH1 = A^T · dH2 · W2^T, with uniform dH2 rows; A_hat is symmetric.
        let row_weights: Vec<f64> = a_hat.iter().map(|row| row.iter().sum::<f64>()).collect();
        let w2_dp: Vec<f64> = self
            .w2
            .iter()
            .map(|w2_row| w2_row.iter().zip(&dpool).map(|(a, b)| a * b).sum())
            .collect();
        // ReLU mask and dW1 = (A·X)^T · dZ1.
        let mut d_w1 = vec![vec![0.0; h]; self.input_dim];
        for (i, z_row) in h1.iter().enumerate() {
            for (j, &relu_out) in z_row.iter().enumerate() {
                if relu_out <= 0.0 {
                    continue;
                }
                let dz = row_weights[i] * w2_dp[j];
                for (d, ax_row) in ax[i].iter().enumerate() {
                    d_w1[d][j] += ax_row * dz;
                }
            }
        }

        let clip = |v: f64| v.clamp(-5.0, 5.0);
        for r in 0..self.input_dim {
            for c in 0..h {
                self.w1[r][c] -= lr * clip(d_w1[r][c]);
            }
        }
        for r in 0..h {
            for c in 0..h {
                self.w2[r][c] -= lr * clip(d_w2[r][c]);
            }
        }
        for j in 0..h {
            self.w_out[j] -= lr * clip(d_wout[j]);
        }
        self.b_out -= lr * clip(d_bout);
    }

    /// Predicts the (denormalised) target for one graph.
    pub fn predict(&self, nodes: &Matrix, adj: &Matrix) -> f64 {
        let x = self.normalise_nodes(nodes);
        let a_hat = normalise_adjacency(adj);
        let (_, _, _, _, pred) = self.forward(&x, &a_hat);
        pred * self.y_std + self.y_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Graphs whose target is the total of the first node feature — a
    /// structure a mean-pooled GCN can capture.
    fn dataset(n: usize) -> (Vec<(Matrix, Matrix)>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(21);
        let mut graphs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let size = rng.random_range(3..7usize);
            let nodes: Matrix = (0..size)
                .map(|_| vec![rng.random_range(0.0..5.0), rng.random_range(0.0..1.0)])
                .collect();
            let mut adj = vec![vec![0.0; size]; size];
            for (i, row) in adj.iter_mut().enumerate() {
                row[i] = 1.0;
                if i + 1 < size {
                    row[i + 1] = 1.0;
                }
            }
            // Symmetrise the chain.
            for i in 0..size {
                for j in 0..size {
                    if adj[i][j] > 0.0 {
                        adj[j][i] = adj[i][j];
                    }
                }
            }
            let y: f64 = nodes.iter().map(|r| r[0]).sum();
            graphs.push((nodes, adj));
            ys.push(y);
        }
        (graphs, ys)
    }

    #[test]
    fn learns_additive_graph_target() {
        let (graphs, y) = dataset(50);
        let model = GnnRegressor::fit(&graphs, &y, GnnConfig::default());
        let mut abs_err = 0.0;
        for ((nodes, adj), &target) in graphs.iter().zip(&y) {
            abs_err += (model.predict(nodes, adj) - target).abs();
        }
        let mean_err = abs_err / y.len() as f64;
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!(
            mean_err < 0.40 * y_mean,
            "mean abs error {mean_err} vs target mean {y_mean}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (graphs, y) = dataset(8);
        let cfg = GnnConfig {
            epochs: 10,
            ..GnnConfig::default()
        };
        let a = GnnRegressor::fit(&graphs, &y, cfg).predict(&graphs[0].0, &graphs[0].1);
        let b = GnnRegressor::fit(&graphs, &y, cfg).predict(&graphs[0].0, &graphs[0].1);
        assert_eq!(a, b);
    }

    #[test]
    fn predictions_finite_on_varied_sizes() {
        let (graphs, y) = dataset(20);
        let model = GnnRegressor::fit(
            &graphs,
            &y,
            GnnConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        for (nodes, adj) in &graphs {
            assert!(model.predict(nodes, adj).is_finite());
        }
    }

    #[test]
    fn adjacency_normalisation_is_symmetric() {
        let adj = vec![
            vec![1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0],
            vec![0.0, 1.0, 1.0],
        ];
        let a_hat = normalise_adjacency(&adj);
        for i in 0..3 {
            for j in 0..3 {
                assert!((a_hat[i][j] - a_hat[j][i]).abs() < 1e-12);
            }
        }
        // A uniform-degree graph (the 3-cycle plus self-loops) has unit
        // row sums under symmetric normalisation.
        let cycle = vec![
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ];
        for row in &normalise_adjacency(&cycle) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
