//! CART regression trees: the building block of the random-forest baseline.
//!
//! Standard variance-reduction splitting with depth and leaf-size limits.
//! Implemented from scratch — the paper uses scikit-learn's
//! `RandomForestRegressor` with default parameters; this mirrors its core
//! algorithm.

/// Configuration of one regression tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Features considered per split (`None` = all), for forest
    /// decorrelation.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    root: Node,
    n_features: usize,
}

impl RegressionTree {
    /// Fits a tree on `(x, y)`; `feature_order` supplies the (possibly
    /// subsampled and shuffled) feature indices to consider at every split.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        config: TreeConfig,
        feature_pick: &mut impl FnMut(usize) -> Vec<usize>,
    ) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        let n_features = x[0].len();
        let idx: Vec<usize> = (0..x.len()).collect();
        let root = build(x, y, &idx, 0, config, n_features, feature_pick);
        RegressionTree { root, n_features }
    }

    pub fn predict(&self, sample: &[f64]) -> f64 {
        assert_eq!(sample.len(), self.n_features, "feature dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if sample[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

fn mean(y: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
}

fn sse(y: &[f64], idx: &[usize]) -> f64 {
    let m = mean(y, idx);
    idx.iter().map(|&i| (y[i] - m).powi(2)).sum()
}

#[allow(clippy::too_many_arguments)]
fn build(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    depth: usize,
    config: TreeConfig,
    n_features: usize,
    feature_pick: &mut impl FnMut(usize) -> Vec<usize>,
) -> Node {
    if depth >= config.max_depth || idx.len() < config.min_samples_split {
        return Node::Leaf {
            value: mean(y, idx),
        };
    }
    let parent_sse = sse(y, idx);
    if parent_sse <= f64::EPSILON {
        return Node::Leaf {
            value: mean(y, idx),
        };
    }

    let candidates = feature_pick(n_features);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    for &f in &candidates {
        // Candidate thresholds: midpoints between consecutive sorted values.
        let mut values: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        values.dedup();
        for w in values.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (mut l, mut r) = (Vec::new(), Vec::new());
            for &i in idx {
                if x[i][f] <= threshold {
                    l.push(i);
                } else {
                    r.push(i);
                }
            }
            if l.is_empty() || r.is_empty() {
                continue;
            }
            let score = sse(y, &l) + sse(y, &r);
            if best.map(|(_, _, s)| score < s).unwrap_or(true) {
                best = Some((f, threshold, score));
            }
        }
    }

    match best {
        Some((feature, threshold, score)) if score < parent_sse => {
            let (mut l, mut r) = (Vec::new(), Vec::new());
            for &i in idx {
                if x[i][feature] <= threshold {
                    l.push(i);
                } else {
                    r.push(i);
                }
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(x, y, &l, depth + 1, config, n_features, feature_pick)),
                right: Box::new(build(x, y, &r, depth + 1, config, n_features, feature_pick)),
            }
        }
        _ => Node::Leaf {
            value: mean(y, idx),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_features(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn fits_a_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let tree = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut all_features);
        assert_eq!(tree.predict(&[3.0]), 1.0);
        assert_eq!(tree.predict(&[15.0]), 5.0);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let y = vec![7.0; 10];
        let tree = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut all_features);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[4.2]), 7.0);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = (0..64).map(f64::from).collect();
        let cfg = TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &y, cfg, &mut all_features);
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn interpolates_two_features() {
        // y depends only on feature 1.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                x.push(vec![f64::from(i), f64::from(j)]);
                y.push(f64::from(j) * 2.0);
            }
        }
        let tree = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut all_features);
        assert!((tree.predict(&[0.0, 7.0]) - 14.0).abs() < 1e-9);
        assert!((tree.predict(&[9.0, 2.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn rejects_wrong_dimension() {
        let tree = RegressionTree::fit(
            &[vec![1.0]],
            &[1.0],
            TreeConfig::default(),
            &mut all_features,
        );
        tree.predict(&[1.0, 2.0]);
    }
}
