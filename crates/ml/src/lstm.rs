//! An LSTM regressor, from scratch (the paper's LSTM baseline: PyTorch
//! `nn.LSTM`, learning rate 0.01, batch size 1).
//!
//! One LSTM layer consumes the workflow's per-stage feature sequence; a
//! linear head on the final hidden state predicts the end-to-end latency.
//! Training is full BPTT with per-sample SGD and gradient clipping.

// Index-based loops mirror the matrix equations directly; iterator
// rewrites obscure the math and fight the split mutable borrows.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GATES: usize = 4; // input, forget, cell, output

/// Configuration of the LSTM regressor.
#[derive(Debug, Clone, Copy)]
pub struct LstmConfig {
    pub hidden: usize,
    pub epochs: usize,
    /// Learning rate (0.01 was the paper's best across {0.1..0.0001}).
    pub lr: f64,
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            hidden: 16,
            epochs: 120,
            lr: 0.01,
            seed: 0x157a,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A fitted LSTM regressor.
#[derive(Debug)]
pub struct LstmRegressor {
    input_dim: usize,
    hidden: usize,
    /// `wx[g][j][k]`: gate g, hidden unit j, input k.
    wx: Vec<Vec<Vec<f64>>>,
    /// `wh[g][j][k]`: gate g, hidden unit j, previous hidden k.
    wh: Vec<Vec<Vec<f64>>>,
    b: Vec<Vec<f64>>,
    w_out: Vec<f64>,
    b_out: f64,
    // Input/target normalisation fitted on the training set.
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    gates: [Vec<f64>; GATES], // post-activation i, f, g, o
    c: Vec<f64>,
    h: Vec<f64>,
}

impl LstmRegressor {
    /// Trains on sequences `x` (each a `Vec` of per-step feature vectors)
    /// with scalar targets `y`.
    pub fn fit(x: &[Vec<Vec<f64>>], y: &[f64], config: LstmConfig) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        let input_dim = x[0][0].len();
        let h = config.hidden;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let k = 1.0 / (h as f64).sqrt();
        let mut init = |rows: usize, cols: usize| -> Vec<Vec<f64>> {
            (0..rows)
                .map(|_| (0..cols).map(|_| rng.random_range(-k..k)).collect())
                .collect()
        };
        let wx: Vec<_> = (0..GATES).map(|_| init(h, input_dim)).collect();
        let wh: Vec<_> = (0..GATES).map(|_| init(h, h)).collect();
        let b: Vec<Vec<f64>> = (0..GATES).map(|_| vec![0.0; h]).collect();
        let w_out: Vec<f64> = (0..h).map(|_| rng.random_range(-k..k)).collect();

        // Normalisation statistics.
        let mut x_mean = vec![0.0; input_dim];
        let mut x_std = vec![0.0; input_dim];
        let mut count = 0.0;
        for seq in x {
            for step in seq {
                for (d, &v) in step.iter().enumerate() {
                    x_mean[d] += v;
                }
                count += 1.0;
            }
        }
        for m in &mut x_mean {
            *m /= count;
        }
        for seq in x {
            for step in seq {
                for (d, &v) in step.iter().enumerate() {
                    x_std[d] += (v - x_mean[d]).powi(2);
                }
            }
        }
        for s in &mut x_std {
            *s = (*s / count).sqrt().max(1e-9);
        }
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let y_std = (y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / y.len() as f64)
            .sqrt()
            .max(1e-9);

        let mut model = LstmRegressor {
            input_dim,
            hidden: h,
            wx,
            wh,
            b,
            w_out,
            b_out: 0.0,
            x_mean,
            x_std,
            y_mean,
            y_std,
        };

        let mut order: Vec<usize> = (0..x.len()).collect();
        for _ in 0..config.epochs {
            // Deterministic shuffle per epoch.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &s in &order {
                model.sgd_step(&x[s], y[s], config.lr);
            }
        }
        model
    }

    fn normalise(&self, step: &[f64]) -> Vec<f64> {
        step.iter()
            .enumerate()
            .map(|(d, &v)| (v - self.x_mean[d]) / self.x_std[d])
            .collect()
    }

    fn forward(&self, seq: &[Vec<f64>]) -> (Vec<StepCache>, f64) {
        let h = self.hidden;
        let mut hidden = vec![0.0; h];
        let mut cell = vec![0.0; h];
        let mut caches = Vec::with_capacity(seq.len());
        for step in seq {
            let x = self.normalise(step);
            let mut gates: [Vec<f64>; GATES] = std::array::from_fn(|_| vec![0.0; h]);
            for g in 0..GATES {
                for j in 0..h {
                    let mut a = self.b[g][j];
                    for (kx, &xv) in x.iter().enumerate() {
                        a += self.wx[g][j][kx] * xv;
                    }
                    for (kh, &hv) in hidden.iter().enumerate() {
                        a += self.wh[g][j][kh] * hv;
                    }
                    gates[g][j] = if g == 2 { a.tanh() } else { sigmoid(a) };
                }
            }
            let mut c = vec![0.0; h];
            let mut hn = vec![0.0; h];
            for j in 0..h {
                c[j] = gates[1][j] * cell[j] + gates[0][j] * gates[2][j];
                hn[j] = gates[3][j] * c[j].tanh();
            }
            caches.push(StepCache {
                x,
                h_prev: hidden.clone(),
                c_prev: cell.clone(),
                gates,
                c: c.clone(),
                h: hn.clone(),
            });
            hidden = hn;
            cell = c;
        }
        let pred: f64 = self.b_out
            + hidden
                .iter()
                .zip(&self.w_out)
                .map(|(a, b)| a * b)
                .sum::<f64>();
        (caches, pred)
    }

    fn sgd_step(&mut self, seq: &[Vec<f64>], target: f64, lr: f64) {
        let h = self.hidden;
        let y = (target - self.y_mean) / self.y_std;
        let (caches, pred) = self.forward(seq);
        let dl = 2.0 * (pred - y);

        let last_h = caches.last().map(|c| c.h.clone()).unwrap_or(vec![0.0; h]);
        let mut d_wx = vec![vec![vec![0.0; self.input_dim]; h]; GATES];
        let mut d_wh = vec![vec![vec![0.0; h]; h]; GATES];
        let mut d_b = vec![vec![0.0; h]; GATES];
        let mut d_wout = vec![0.0; h];
        for j in 0..h {
            d_wout[j] = dl * last_h[j];
        }
        let d_bout = dl;

        let mut dh: Vec<f64> = self.w_out.iter().map(|w| dl * w).collect();
        let mut dc = vec![0.0; h];
        for cache in caches.iter().rev() {
            let (i_g, f_g, g_g, o_g) = (
                &cache.gates[0],
                &cache.gates[1],
                &cache.gates[2],
                &cache.gates[3],
            );
            let mut da: [Vec<f64>; GATES] = std::array::from_fn(|_| vec![0.0; h]);
            for j in 0..h {
                let tanh_c = cache.c[j].tanh();
                let do_ = dh[j] * tanh_c;
                dc[j] += dh[j] * o_g[j] * (1.0 - tanh_c * tanh_c);
                let di = dc[j] * g_g[j];
                let df = dc[j] * cache.c_prev[j];
                let dg = dc[j] * i_g[j];
                da[0][j] = di * i_g[j] * (1.0 - i_g[j]);
                da[1][j] = df * f_g[j] * (1.0 - f_g[j]);
                da[2][j] = dg * (1.0 - g_g[j] * g_g[j]);
                da[3][j] = do_ * o_g[j] * (1.0 - o_g[j]);
            }
            let mut dh_prev = vec![0.0; h];
            let mut dc_prev = vec![0.0; h];
            for g in 0..GATES {
                for j in 0..h {
                    for (kx, &xv) in cache.x.iter().enumerate() {
                        d_wx[g][j][kx] += da[g][j] * xv;
                    }
                    for (kh, &hv) in cache.h_prev.iter().enumerate() {
                        d_wh[g][j][kh] += da[g][j] * hv;
                        dh_prev[kh] += self.wh[g][j][kh] * da[g][j];
                    }
                    d_b[g][j] += da[g][j];
                }
            }
            for j in 0..h {
                dc_prev[j] = dc[j] * f_g[j];
            }
            dh = dh_prev;
            dc = dc_prev;
        }

        // Clip and apply.
        let clip = |v: f64| v.clamp(-5.0, 5.0);
        for g in 0..GATES {
            for j in 0..h {
                for kx in 0..self.input_dim {
                    self.wx[g][j][kx] -= lr * clip(d_wx[g][j][kx]);
                }
                for kh in 0..h {
                    self.wh[g][j][kh] -= lr * clip(d_wh[g][j][kh]);
                }
                self.b[g][j] -= lr * clip(d_b[g][j]);
            }
        }
        for j in 0..h {
            self.w_out[j] -= lr * clip(d_wout[j]);
        }
        self.b_out -= lr * clip(d_bout);
    }

    /// Predicts the (denormalised) target for one sequence.
    pub fn predict(&self, seq: &[Vec<f64>]) -> f64 {
        let (_, pred) = self.forward(seq);
        pred * self.y_std + self.y_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Target = sum of first feature over the sequence — learnable.
    fn dataset(n: usize) -> (Vec<Vec<Vec<f64>>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let len = rng.random_range(2..5usize);
            let seq: Vec<Vec<f64>> = (0..len)
                .map(|_| vec![rng.random_range(0.0..4.0), rng.random_range(0.0..1.0)])
                .collect();
            let y: f64 = seq.iter().map(|s| s[0]).sum();
            xs.push(seq);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn learns_additive_sequence_target() {
        let (x, y) = dataset(60);
        let model = LstmRegressor::fit(&x, &y, LstmConfig::default());
        let mut abs_err = 0.0;
        for (seq, &target) in x.iter().zip(&y) {
            abs_err += (model.predict(seq) - target).abs();
        }
        let mean_err = abs_err / y.len() as f64;
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!(
            mean_err < 0.35 * y_mean,
            "mean abs error {mean_err} vs target mean {y_mean}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = dataset(10);
        let cfg = LstmConfig {
            epochs: 5,
            ..LstmConfig::default()
        };
        let a = LstmRegressor::fit(&x, &y, cfg).predict(&x[0]);
        let b = LstmRegressor::fit(&x, &y, cfg).predict(&x[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_single_sample() {
        let x = vec![vec![vec![1.0, 2.0], vec![3.0, 4.0]]];
        let y = vec![10.0];
        let cfg = LstmConfig {
            epochs: 50,
            ..LstmConfig::default()
        };
        let model = LstmRegressor::fit(&x, &y, cfg);
        let pred = model.predict(&x[0]);
        assert!((pred - 10.0).abs() < 1.0, "pred {pred}");
    }

    #[test]
    fn predictions_are_finite() {
        let (x, y) = dataset(20);
        let model = LstmRegressor::fit(
            &x,
            &y,
            LstmConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        for seq in &x {
            assert!(model.predict(seq).is_finite());
        }
    }
}
