//! Feature extraction for the learned latency-prediction baselines
//! (Fig. 12, §6.1).
//!
//! The paper feeds RFR/LSTM per-function features recommended by Gsight
//! (solo latency, context switches, cache MPKIs, utilisations, ...) and the
//! GNN additionally an adjacency matrix relating threads, processes, stages
//! and workflows within the wrap. Our virtual platform has no hardware
//! counters, so the feature set is the platform-level analogue: behavioural
//! quantities (latencies, CPU/block mixes, switch estimates) plus
//! deployment-structure quantities (process/thread/wrap counts, CPUs,
//! execution mode).

// Index-based loops mirror the matrix equations directly; iterator
// rewrites obscure the math and fight the split mutable borrows.
#![allow(clippy::needless_range_loop)]

use chiron_model::plan::ProcessSpawn;
use chiron_model::{DeploymentPlan, FunctionId, IsolationKind, RuntimeKind, Workflow};
use chiron_profiler::WorkflowProfile;

/// Number of per-sample features produced by [`plan_features`].
pub const PLAN_FEATURE_DIM: usize = 16;

/// Number of per-node features produced by [`plan_graph`].
pub const NODE_FEATURE_DIM: usize = 8;

/// Flat feature vector describing one (workflow, plan) pair — the RFR/LSTM
/// input representation.
pub fn plan_features(
    workflow: &Workflow,
    profile: &WorkflowProfile,
    plan: &DeploymentPlan,
) -> Vec<f64> {
    let n_functions = workflow.function_count() as f64;
    let n_stages = workflow.stage_count() as f64;
    let max_par = workflow.max_parallelism() as f64;

    let mut n_processes = 0f64;
    let mut n_forked = 0f64;
    let mut n_threads_in_shared = 0f64;
    let mut n_wraps = 0f64;
    for stage in &plan.stages {
        n_wraps += stage.wraps.len() as f64;
        for wrap in &stage.wraps {
            n_processes += wrap.processes.len() as f64;
            for proc in &wrap.processes {
                if proc.spawn == ProcessSpawn::Fork {
                    n_forked += 1.0;
                }
                if proc.functions.len() > 1 {
                    n_threads_in_shared += proc.functions.len() as f64;
                }
            }
        }
    }

    let mut total_solo = 0.0;
    let mut max_solo: f64 = 0.0;
    let mut total_cpu = 0.0;
    let mut total_block = 0.0;
    let mut switches = 0.0;
    for fp in &profile.functions {
        let solo = fp.solo_latency.as_millis_f64();
        total_solo += solo;
        max_solo = max_solo.max(solo);
        total_cpu += fp.cpu_time().as_millis_f64();
        total_block += fp.block_time().as_millis_f64();
        // A context-switch estimate: one per block period plus one per
        // 5ms GIL quantum of CPU time.
        switches += fp.blocks.len() as f64 + fp.cpu_time().as_millis_f64() / 5.0;
    }
    let cpu_fraction = if total_solo > 0.0 {
        total_cpu / total_solo
    } else {
        0.0
    };

    vec![
        n_functions,
        n_stages,
        max_par,
        n_processes,
        n_forked,
        n_threads_in_shared,
        n_wraps,
        f64::from(plan.total_cpus()),
        total_solo,
        max_solo,
        total_cpu,
        total_block,
        cpu_fraction,
        switches,
        match plan.runtime {
            RuntimeKind::PseudoParallel => 0.0,
            RuntimeKind::TrueParallel => 1.0,
        },
        match plan.isolation {
            IsolationKind::None => 0.0,
            IsolationKind::Mpk => 1.0,
            IsolationKind::Sfi => 2.0,
        },
    ]
}

/// Per-stage feature sequence (the LSTM consumes the workflow as a
/// time-series of stages).
pub fn stage_sequence(
    workflow: &Workflow,
    profile: &WorkflowProfile,
    plan: &DeploymentPlan,
) -> Vec<Vec<f64>> {
    plan.stages
        .iter()
        .enumerate()
        .map(|(si, stage_plan)| {
            let stage = &workflow.stages[si];
            let mut solo = 0.0;
            let mut max_solo: f64 = 0.0;
            let mut cpu = 0.0;
            for &fid in &stage.functions {
                let fp = profile.function(fid);
                solo += fp.solo_latency.as_millis_f64();
                max_solo = max_solo.max(fp.solo_latency.as_millis_f64());
                cpu += fp.cpu_time().as_millis_f64();
            }
            let n_procs: f64 = stage_plan
                .wraps
                .iter()
                .map(|w| w.processes.len() as f64)
                .sum();
            vec![
                stage.functions.len() as f64,
                stage_plan.wraps.len() as f64,
                n_procs,
                solo,
                max_solo,
                cpu,
            ]
        })
        .collect()
}

/// Node features + symmetric adjacency for the GNN: one node per function;
/// edges between functions sharing a process (weight 1.0), sharing a wrap
/// (0.6), sharing a stage (0.3), or adjacent in consecutive stages (0.2).
pub fn plan_graph(
    workflow: &Workflow,
    profile: &WorkflowProfile,
    plan: &DeploymentPlan,
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let n = workflow.function_count();
    let mut nodes = Vec::with_capacity(n);
    for fp in &profile.functions {
        nodes.push(vec![
            fp.solo_latency.as_millis_f64(),
            fp.cpu_time().as_millis_f64(),
            fp.block_time().as_millis_f64(),
            fp.blocks.len() as f64,
            0.0, // stage index, filled below
            0.0, // process size, filled below
            0.0, // wrap size, filled below
            0.0, // forked?
        ]);
    }
    let mut adj = vec![vec![0.0; n]; n];
    let link = |adj: &mut Vec<Vec<f64>>, a: FunctionId, b: FunctionId, w: f64| {
        if a != b {
            let (i, j) = (a.index(), b.index());
            adj[i][j] = adj[i][j].max(w);
            adj[j][i] = adj[j][i].max(w);
        }
    };
    for (si, stage_plan) in plan.stages.iter().enumerate() {
        for wrap in &stage_plan.wraps {
            let wrap_fns: Vec<FunctionId> = wrap.functions().collect();
            for proc in &wrap.processes {
                for &f in &proc.functions {
                    let node = &mut nodes[f.index()];
                    node[4] = si as f64;
                    node[5] = proc.functions.len() as f64;
                    node[6] = wrap_fns.len() as f64;
                    node[7] = f64::from(proc.spawn == ProcessSpawn::Fork);
                }
                for &a in &proc.functions {
                    for &b in &proc.functions {
                        link(&mut adj, a, b, 1.0);
                    }
                }
            }
            for &a in &wrap_fns {
                for &b in &wrap_fns {
                    link(&mut adj, a, b, 0.6);
                }
            }
        }
        for &a in &workflow.stages[si].functions {
            for &b in &workflow.stages[si].functions {
                link(&mut adj, a, b, 0.3);
            }
            if si + 1 < workflow.stages.len() {
                for &b in &workflow.stages[si + 1].functions {
                    link(&mut adj, a, b, 0.2);
                }
            }
        }
    }
    // Self-loops, as in standard GCN propagation.
    for (i, row) in adj.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    (nodes, adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::plan::*;
    use chiron_model::{apps, SandboxId, SandboxPlan, SchedulingKind, SystemKind, TransferKind};
    use chiron_profiler::Profiler;

    fn sample() -> (Workflow, WorkflowProfile, DeploymentPlan) {
        let wf = apps::finra(5);
        let profile = Profiler::default().profile_workflow(&wf);
        let plan = DeploymentPlan {
            system: SystemKind::Faastlane,
            workflow: wf.name.clone(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::RpcPayload,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes: vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 5,
                pool_size: 0,
            }],
            stages: vec![
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::main_reuse(vec![FunctionId(0)])],
                    }],
                },
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: (1..=5)
                            .map(|i| ProcessPlan::forked(vec![FunctionId(i)]))
                            .collect(),
                    }],
                },
            ],
        };
        (wf, profile, plan)
    }

    #[test]
    fn flat_features_have_fixed_dim() {
        let (wf, profile, plan) = sample();
        let f = plan_features(&wf, &profile, &plan);
        assert_eq!(f.len(), PLAN_FEATURE_DIM);
        assert_eq!(f[0], 6.0); // functions
        assert_eq!(f[3], 6.0); // processes
        assert_eq!(f[4], 5.0); // forked
        assert!(f[8] > 0.0); // total solo latency
    }

    #[test]
    fn stage_sequence_one_entry_per_stage() {
        let (wf, profile, plan) = sample();
        let seq = stage_sequence(&wf, &profile, &plan);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0][0], 1.0);
        assert_eq!(seq[1][0], 5.0);
    }

    #[test]
    fn graph_is_symmetric_with_self_loops() {
        let (wf, profile, plan) = sample();
        let (nodes, adj) = plan_graph(&wf, &profile, &plan);
        assert_eq!(nodes.len(), 6);
        assert_eq!(nodes[0].len(), NODE_FEATURE_DIM);
        for i in 0..6 {
            assert_eq!(adj[i][i], 1.0);
            for j in 0..6 {
                assert_eq!(adj[i][j], adj[j][i]);
            }
        }
        // Stage-2 rules share a stage (0.3) but not a process.
        assert!(adj[1][2] >= 0.3);
        // Fetch connects to rules across the stage boundary (0.2).
        assert!(adj[0][1] >= 0.2);
    }

    #[test]
    fn thread_plan_links_process_mates_strongly() {
        let (wf, profile, mut plan) = sample();
        plan.stages[1].wraps[0].processes =
            vec![ProcessPlan::main_reuse((1..=5).map(FunctionId).collect())];
        let (_, adj) = plan_graph(&wf, &profile, &plan);
        assert_eq!(adj[1][2], 1.0);
    }
}
