//! Random-forest regression (the paper's RFR baseline, built on
//! scikit-learn's `RandomForestRegressor` with default parameters:
//! bootstrap sampling, per-split feature subsampling, mean aggregation).

use crate::tree::{RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the forest.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 50,
            tree: TreeConfig::default(),
            seed: 0xf07e57,
        }
    }
}

/// A fitted random-forest regressor.
#[derive(Debug)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits `config.n_trees` trees on bootstrap resamples of `(x, y)`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: ForestConfig) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        let n = x.len();
        let n_features = x[0].len();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            // Bootstrap resample.
            let mut bx = Vec::with_capacity(n);
            let mut by = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.random_range(0..n);
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            // Feature subsampling at every split (sqrt heuristic), unless
            // the tree config overrides it.
            let k = config
                .tree
                .max_features
                .unwrap_or_else(|| (n_features as f64).sqrt().ceil() as usize)
                .clamp(1, n_features);
            let mut pick_rng = StdRng::seed_from_u64(rng.random());
            let mut picker = move |nf: usize| {
                let mut all: Vec<usize> = (0..nf).collect();
                all.shuffle(&mut pick_rng);
                all.truncate(k);
                all
            };
            trees.push(RegressionTree::fit(&bx, &by, config.tree, &mut picker));
        }
        RandomForest { trees }
    }

    /// Mean prediction over all trees.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(sample)).sum::<f64>() / self.trees.len() as f64
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 3·x0 + noiseless structure over two features.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            for j in 0..3 {
                x.push(vec![f64::from(i), f64::from(j)]);
                y.push(3.0 * f64::from(i) + f64::from(j));
            }
        }
        (x, y)
    }

    #[test]
    fn learns_smooth_function() {
        let (x, y) = dataset();
        let forest = RandomForest::fit(&x, &y, ForestConfig::default());
        assert_eq!(forest.n_trees(), 50);
        let pred = forest.predict(&[15.0, 1.0]);
        assert!((pred - 46.0).abs() < 6.0, "prediction {pred}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = dataset();
        let a = RandomForest::fit(&x, &y, ForestConfig::default()).predict(&[10.0, 0.0]);
        let b = RandomForest::fit(&x, &y, ForestConfig::default()).predict(&[10.0, 0.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = dataset();
        let a = RandomForest::fit(&x, &y, ForestConfig::default());
        let cfg = ForestConfig {
            seed: 999,
            ..ForestConfig::default()
        };
        let b = RandomForest::fit(&x, &y, cfg);
        // The ensembles are different (predictions usually differ slightly).
        let pa = a.predict(&[12.5, 1.5]);
        let pb = b.predict(&[12.5, 1.5]);
        assert!((pa - pb).abs() > 1e-12 || pa == pb); // sanity: both finite
        assert!(pa.is_finite() && pb.is_finite());
    }

    #[test]
    fn single_sample_dataset() {
        let forest = RandomForest::fit(&[vec![1.0, 2.0]], &[42.0], ForestConfig::default());
        assert_eq!(forest.predict(&[9.0, 9.0]), 42.0);
    }
}
