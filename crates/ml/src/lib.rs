//! # chiron-ml
//!
//! From-scratch learned baselines for the prediction-error evaluation
//! (Fig. 12, §6.1): a CART-based random-forest regressor (the paper's RFR),
//! an LSTM regressor trained with BPTT (the paper's LSTM, lr = 0.01,
//! batch = 1), and a two-layer GCN regressor over the wrap relationship
//! graph (the paper's GNN). No external ML dependencies.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod features;
pub mod forest;
pub mod gnn;
pub mod lstm;
pub mod tree;

pub use features::{plan_features, plan_graph, stage_sequence, NODE_FEATURE_DIM, PLAN_FEATURE_DIM};
pub use forest::{ForestConfig, RandomForest};
pub use gnn::{GnnConfig, GnnRegressor};
pub use lstm::{LstmConfig, LstmRegressor};
pub use tree::{RegressionTree, TreeConfig};
