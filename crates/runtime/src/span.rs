//! Execution timelines: what happened to every function of a request and
//! when. These records are the raw material for Fig. 5 (process vs. thread
//! timelines), Fig. 15 (per-function latency CDFs), and the Profiler's
//! strace-style traces.

use chiron_model::{FunctionId, SandboxId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The kind of activity a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// Waiting in the platform gateway's scheduling queue (Fig. 3).
    Scheduled,
    /// Reading stage input from the object store (one-to-one model).
    TransferIn,
    /// Writing output to the object store (one-to-one model).
    TransferOut,
    /// Waiting for earlier forks of the same wrap to finish (`T_Block`).
    BlockWait,
    /// Fork / clone / pool-dispatch / isolation-domain entry (`T_Startup`).
    Startup,
    /// Executing bytecode on a CPU.
    Exec,
    /// Blocked in a syscall (GIL released).
    Io,
    /// Runnable but waiting for the GIL or for a CPU share.
    GilWait,
    /// Returning the result to the orchestrator over a pipe (`T_IPC`).
    Ipc,
}

/// A half-open interval `[start, end)` of one activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    pub kind: SpanKind,
    pub start: SimTime,
    pub end: SimTime,
}

impl Span {
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Everything that happened to one function during one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionTimeline {
    pub function: FunctionId,
    pub sandbox: SandboxId,
    /// Stage the function belongs to.
    pub stage: usize,
    /// When the platform began materialising this function (fork initiated,
    /// gateway dispatch, ...).
    pub dispatched: SimTime,
    /// When the function's own code started executing.
    pub exec_start: SimTime,
    /// When the function finished (result available in its process).
    pub completed: SimTime,
    pub spans: Vec<Span>,
}

impl FunctionTimeline {
    /// Total time attributed to one span kind.
    pub fn total(&self, kind: SpanKind) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(Span::duration)
            .sum()
    }

    /// Function latency as Fig. 15 plots it: dispatch to completion.
    pub fn latency(&self) -> SimDuration {
        self.completed.since(self.dispatched)
    }

    /// Startup overhead: everything before the first executed instruction.
    pub fn startup_overhead(&self) -> SimDuration {
        self.exec_start.since(self.dispatched)
    }

    /// Checks internal invariants: spans ordered, non-overlapping, within
    /// the dispatch/completion window.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut cursor = self.dispatched;
        for (i, s) in self.spans.iter().enumerate() {
            if s.end < s.start {
                return Err(format!("span {i} ends before it starts"));
            }
            if s.start < cursor {
                return Err(format!("span {i} overlaps its predecessor"));
            }
            cursor = s.end;
        }
        if self.exec_start < self.dispatched {
            return Err("exec_start precedes dispatch".into());
        }
        if self.completed < self.exec_start {
            return Err("completion precedes exec_start".into());
        }
        Ok(())
    }
}

/// Outcome of executing one workflow request on the virtual platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// End-to-end latency of the request.
    pub e2e: SimDuration,
    /// Per-function timelines, in `FunctionId` order.
    pub timelines: Vec<FunctionTimeline>,
    /// `[start, end)` of every stage.
    pub stage_windows: Vec<(SimTime, SimTime)>,
}

impl RequestOutcome {
    pub fn timeline(&self, id: FunctionId) -> &FunctionTimeline {
        self.timelines
            .iter()
            .find(|t| t.function == id)
            .expect("timeline for every function")
    }

    /// Aggregate time spent in one span kind across all functions.
    pub fn total(&self, kind: SpanKind) -> SimDuration {
        self.timelines.iter().map(|t| t.total(kind)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_nanos(v * 1_000_000)
    }

    fn span(kind: SpanKind, s: u64, e: u64) -> Span {
        Span {
            kind,
            start: ms(s),
            end: ms(e),
        }
    }

    fn timeline() -> FunctionTimeline {
        FunctionTimeline {
            function: FunctionId(1),
            sandbox: SandboxId(0),
            stage: 0,
            dispatched: ms(0),
            exec_start: ms(8),
            completed: ms(20),
            spans: vec![
                span(SpanKind::BlockWait, 0, 3),
                span(SpanKind::Startup, 3, 8),
                span(SpanKind::Exec, 8, 14),
                span(SpanKind::Io, 14, 18),
                span(SpanKind::Exec, 18, 20),
            ],
        }
    }

    #[test]
    fn totals_by_kind() {
        let t = timeline();
        assert_eq!(t.total(SpanKind::Exec).as_millis_f64(), 8.0);
        assert_eq!(t.total(SpanKind::Io).as_millis_f64(), 4.0);
        assert_eq!(t.total(SpanKind::Ipc), SimDuration::ZERO);
        assert_eq!(t.latency().as_millis_f64(), 20.0);
        assert_eq!(t.startup_overhead().as_millis_f64(), 8.0);
    }

    #[test]
    fn invariants_hold() {
        timeline().check_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_overlap() {
        let mut t = timeline();
        t.spans[1].start = ms(2);
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_backwards_span() {
        let mut t = timeline();
        t.spans[0].end = SimTime::ZERO;
        t.spans[0].start = ms(1);
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn outcome_lookup() {
        let outcome = RequestOutcome {
            e2e: SimDuration::from_millis(20),
            timelines: vec![timeline()],
            stage_windows: vec![(ms(0), ms(20))],
        };
        assert_eq!(outcome.timeline(FunctionId(1)).stage, 0);
        assert_eq!(outcome.total(SpanKind::Exec).as_millis_f64(), 8.0);
    }
}
