//! The virtual serverless platform: executes one workflow request under an
//! arbitrary [`DeploymentPlan`] and produces ground-truth latencies and
//! per-function timelines.
//!
//! The execution semantics follow the paper's system model:
//!
//! * Stages run in sequence; stage `i+1` starts when stage `i`'s primary
//!   wrap has collected every result (Eq. 1).
//! * Within a stage, wrap 1 receives the stage input and invokes wraps
//!   `k ≥ 2` over the network, paying `(k−1)·T_INV + T_RPC` (Eq. 2); every
//!   remote wrap pays a `T_RPC` on the return path.
//! * Within a wrap, forked processes queue behind each other: process `j`
//!   begins executing after `(j−1)·T_Block + T_Startup` (Eq. 4, the block
//!   overhead of Observation 2). Threads are cloned serially at thread-clone
//!   cost; pool workers only pay a dispatch cost.
//! * Results of a wrap's processes drain serially over a pipe at `T_IPC`
//!   each, except the first (Eq. 3's `(|P|−1)·T_IPC`).
//! * One-to-one systems pass intermediate data through an object store
//!   (read before execution, write after — Fig. 4's costs); wraps pass data
//!   by RPC payload, pipe, or shared memory depending on locality.
//! * CPU contention, the GIL, and true parallelism are simulated by the
//!   [`fluid`](crate::fluid) engine.

use crate::fluid::{execute_sandbox_scratch, ThreadTask};
use crate::jitter::Jitter;
use crate::scratch::SimScratch;
use crate::span::{FunctionTimeline, RequestOutcome, Span, SpanKind};
use chiron_isolation::IsolationCosts;
use chiron_model::plan::ProcessSpawn;
use chiron_model::{
    DeploymentPlan, FunctionId, NodePlacement, PlanError, PlatformConfig, SandboxId,
    SchedulingKind, Segment, SimDuration, SimTime, TransferKind, Workflow, WrapPlan,
};
use chiron_store::TransferModel;
use std::cell::RefCell;
use std::collections::HashSet;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

static REFERENCE_ENGINE: AtomicBool = AtomicBool::new(false);

/// Routes [`VirtualPlatform::execute`] through the retained
/// pre-optimisation engine ([`VirtualPlatform::execute_reference`]).
/// `figures -- perf-eval` uses this for its sequential baseline; results
/// are byte-identical either way, only wall-clock changes.
pub fn set_reference_engine(enabled: bool) {
    REFERENCE_ENGINE.store(enabled, Ordering::SeqCst);
}

/// Whether [`execute`](VirtualPlatform::execute) currently routes through
/// the reference engine.
pub fn reference_engine() -> bool {
    REFERENCE_ENGINE.load(Ordering::SeqCst)
}

/// Size of the initial request payload entering stage 1.
const REQUEST_PAYLOAD_BYTES: u64 = 1 << 10;

thread_local! {
    /// Default scratch for callers that don't manage their own (one per OS
    /// thread, so sweep workers never contend).
    static SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::new());
}

/// Reusable buffers for [`VirtualPlatform::execute`] and `run_wrap`.
/// `pre_all` holds every pre-execution span of the current wrap
/// back-to-back; each thread's metadata keeps a [`Range`] into it instead
/// of an owned clone, so the only per-function allocation left is the
/// timeline's final span vector (which is returned to the caller and
/// therefore cannot be pooled).
#[derive(Debug, Default)]
pub(crate) struct WrapScratch {
    // -- per-request buffers (execute) --
    stage_sets: Vec<Vec<FunctionId>>,
    warm: HashSet<chiron_model::SandboxId>,
    wrap_ends: Vec<SimTime>,
    // -- per-wrap buffers (run_wrap), taken wholesale so the fluid engine
    //    can borrow the rest of the scratch during the simulation --
    bufs: WrapBufs,
}

#[derive(Debug, Default)]
struct WrapBufs {
    tasks: Vec<ThreadTask>,
    metas: Vec<ThreadMeta>,
    pre_all: Vec<Span>,
    proc_end: Vec<SimTime>,
    order: Vec<usize>,
    ipc_span: Vec<Option<Span>>,
    first_meta: Vec<usize>,
}

#[derive(Debug)]
struct ThreadMeta {
    function: FunctionId,
    process: usize,
    /// This thread's pre-execution spans, as a range into `pre_all`.
    pre: Range<usize>,
    dispatched: SimTime,
}

/// The virtual platform.
#[derive(Debug, Clone)]
pub struct VirtualPlatform {
    config: PlatformConfig,
    transfer: TransferModel,
    include_cold_start: bool,
    /// First-use startup charge per sandbox; `None` falls back to the cost
    /// model's full `sandbox_cold_start`.
    start_cost: Option<SimDuration>,
}

impl VirtualPlatform {
    pub fn new(config: PlatformConfig) -> Self {
        VirtualPlatform {
            config,
            transfer: TransferModel::paper_calibrated(),
            include_cold_start: false,
            start_cost: None,
        }
    }

    /// Also charge the sandbox cold start on first use (off by default: the
    /// paper measures "without cold start", §6.2).
    pub fn with_cold_starts(mut self, enabled: bool) -> Self {
        self.include_cold_start = enabled;
        self
    }

    /// Overrides the first-use startup charge — how lifecycle tiers enter
    /// the request path: a snapshot restore or zygote fork replaces the
    /// full cold boot with its own (much smaller) latency. Only takes
    /// effect when cold starts are enabled via
    /// [`with_cold_starts`](Self::with_cold_starts).
    pub fn with_start_cost(mut self, cost: SimDuration) -> Self {
        self.start_cost = Some(cost);
        self
    }

    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    pub fn transfer_model(&self) -> &TransferModel {
        &self.transfer
    }

    /// Executes one request; `seed` drives the jitter model (ignored when
    /// jitter is off). Uses a thread-local [`SimScratch`]; callers that want
    /// explicit control over buffer reuse use
    /// [`execute_with_scratch`](Self::execute_with_scratch).
    pub fn execute(
        &self,
        workflow: &Workflow,
        plan: &DeploymentPlan,
        seed: u64,
    ) -> Result<RequestOutcome, PlanError> {
        if reference_engine() {
            return self.execute_reference(workflow, plan, seed);
        }
        SCRATCH.with(|s| self.execute_with_scratch(workflow, plan, seed, &mut s.borrow_mut()))
    }

    /// Like [`execute`](Self::execute), but drawing every internal buffer
    /// from `scratch`. Byte-identical to a fresh-allocation run: buffers are
    /// cleared before reuse and carry no state between requests.
    pub fn execute_with_scratch(
        &self,
        workflow: &Workflow,
        plan: &DeploymentPlan,
        seed: u64,
        scratch: &mut SimScratch,
    ) -> Result<RequestOutcome, PlanError> {
        {
            let stage_sets = &mut scratch.wrap.stage_sets;
            for (i, s) in workflow.stages.iter().enumerate() {
                if let Some(set) = stage_sets.get_mut(i) {
                    set.clear();
                    set.extend_from_slice(&s.functions);
                } else {
                    stage_sets.push(s.functions.clone());
                }
            }
            stage_sets.truncate(workflow.stages.len());
        }
        plan.validate(&scratch.wrap.stage_sets)?;

        let costs = &self.config.costs;
        let mut jit = Jitter::new(self.config.jitter, seed);
        let iso = IsolationCosts::for_kind(plan.isolation);
        let store_based = !matches!(
            plan.transfer,
            TransferKind::RpcPayload | TransferKind::ShmRing
        );
        // Locality only matters to the shm-ring tier; every other kind
        // prices independently of placement, so skip the packing work.
        let placement = (plan.transfer == TransferKind::ShmRing)
            .then(|| NodePlacement::first_fit(plan, costs.node_cpus));
        let colocated =
            |a: SandboxId, b: SandboxId| placement.as_ref().is_some_and(|p| p.colocated(a, b));
        let last_stage = plan.stages.len() - 1;

        let mut timelines: Vec<Option<FunctionTimeline>> = vec![None; workflow.function_count()];
        let mut warm = std::mem::take(&mut scratch.wrap.warm);
        warm.clear();
        let mut wrap_ends = std::mem::take(&mut scratch.wrap.wrap_ends);
        let mut stage_windows = Vec::with_capacity(plan.stages.len());
        let mut t = SimTime::ZERO;
        let mut prev_primary = None;

        for (si, stage_plan) in plan.stages.iter().enumerate() {
            let stage_input_bytes = if si == 0 {
                REQUEST_PAYLOAD_BYTES
            } else {
                workflow.stage_output_bytes(si - 1)
            };

            // Cross-stage control handoff between pre-deployed wraps in
            // different sandboxes.
            let primary = stage_plan.wraps[0].sandbox;
            if plan.scheduling == SchedulingKind::PreDeployed {
                if let Some(prev) = prev_primary {
                    if prev != primary {
                        // A co-located pair rides the ring: the doorbell
                        // floor replaces the RPC round trip entirely.
                        t += if colocated(prev, primary) {
                            jit.comm(self.transfer.shm_ring.latency(stage_input_bytes))
                        } else {
                            jit.comm(costs.rpc)
                                + jit.comm(
                                    self.transfer
                                        .cross_sandbox(TransferKind::RpcPayload, stage_input_bytes),
                                )
                        };
                    }
                }
            }
            prev_primary = Some(primary);

            let stage_start = t;
            wrap_ends.clear();

            for (k, wrap) in stage_plan.wraps.iter().enumerate() {
                // ---- invocation time of this wrap -----------------------
                let mut avail = match plan.scheduling {
                    SchedulingKind::Asf => {
                        stage_start + jit.comm(self.config.scheduling.asf_schedule_time(k as u32))
                    }
                    SchedulingKind::OpenFaasGateway => {
                        stage_start
                            + jit.comm(self.config.scheduling.openfaas_stage_overhead(k as u32 + 1))
                            + jit.comm(costs.rpc)
                    }
                    SchedulingKind::PreDeployed => {
                        if k == 0 {
                            stage_start
                        } else if colocated(primary, wrap.sandbox) {
                            // Invocation still costs T_INV per Eq. 2, but
                            // the payload rides the ring in place of the
                            // RPC round trip + piggy-backed copy.
                            stage_start
                                + jit.comm(costs.inv * k as u64)
                                + jit.comm(self.transfer.shm_ring.latency(stage_input_bytes))
                        } else {
                            stage_start
                                + jit.comm(costs.inv * k as u64)
                                + jit.comm(costs.rpc)
                                + jit.comm(
                                    self.transfer
                                        .cross_sandbox(TransferKind::RpcPayload, stage_input_bytes),
                                )
                        }
                    }
                };
                if self.include_cold_start && !warm.contains(&wrap.sandbox) {
                    avail += jit.startup(self.start_cost.unwrap_or(costs.sandbox_cold_start));
                }
                warm.insert(wrap.sandbox);

                let read_input = store_based && si > 0;
                let write_output = store_based && si < last_stage;
                let end = self.run_wrap(
                    WrapRun {
                        workflow,
                        plan,
                        wrap,
                        stage: si,
                        stage_start,
                        avail,
                        stage_input_bytes,
                        read_input,
                        write_output,
                        iso: &iso,
                        jit: &mut jit,
                        timelines: &mut timelines,
                    },
                    scratch,
                );
                wrap_ends.push(end);
            }

            // ---- stage completion (Eq. 2) -------------------------------
            let remote_return = plan.scheduling != SchedulingKind::PreDeployed;
            let mut stage_end = SimTime::ZERO;
            for (k, &end) in wrap_ends.iter().enumerate() {
                let e = if k == 0 && !remote_return {
                    end
                } else if !remote_return && colocated(stage_plan.wraps[k].sandbox, primary) {
                    // Result notification over the ring: doorbell only.
                    end + jit.comm(self.transfer.shm_ring.floor)
                } else {
                    end + jit.comm(costs.rpc)
                };
                stage_end = stage_end.max(e);
            }
            t = stage_end;
            stage_windows.push((stage_start, stage_end));
        }

        scratch.wrap.warm = warm;
        scratch.wrap.wrap_ends = wrap_ends;
        let timelines: Vec<FunctionTimeline> = timelines
            .into_iter()
            .map(|t| t.expect("every function executed"))
            .collect();
        Ok(RequestOutcome {
            e2e: t.since(SimTime::ZERO),
            timelines,
            stage_windows,
        })
    }

    /// Executes one wrap and returns the instant its result set is complete
    /// inside its sandbox.
    fn run_wrap(&self, run: WrapRun<'_>, scratch: &mut SimScratch) -> SimTime {
        let WrapRun {
            workflow,
            plan,
            wrap,
            stage,
            stage_start,
            avail,
            stage_input_bytes,
            read_input,
            write_output,
            iso,
            jit,
            timelines,
        } = run;
        let costs = &self.config.costs;
        let sb = plan.sandbox(wrap.sandbox).expect("validated plan");

        // The wrap buffers move out of the scratch so the fluid engine can
        // borrow the rest of it during the simulation; they go back below.
        let mut ws = std::mem::take(&mut scratch.wrap.bufs);
        let WrapBufs {
            tasks,
            metas,
            pre_all,
            proc_end,
            order,
            ipc_span,
            first_meta,
        } = &mut ws;
        tasks.clear();
        metas.clear();
        pre_all.clear();

        let mut cum_block = SimDuration::ZERO;
        let mut forked_before = false;
        for (pi, proc) in wrap.processes.iter().enumerate() {
            // ---- process materialisation --------------------------------
            let proc_pre_start = pre_all.len();
            if avail > stage_start {
                pre_all.push(Span {
                    kind: SpanKind::Scheduled,
                    start: stage_start,
                    end: avail,
                });
            }
            let mut cursor = avail;
            match proc.spawn {
                ProcessSpawn::Fork => {
                    if forked_before {
                        cum_block += jit.startup(costs.process_block);
                    }
                    forked_before = true;
                    if !cum_block.is_zero() {
                        let end = cursor + cum_block;
                        pre_all.push(Span {
                            kind: SpanKind::BlockWait,
                            start: cursor,
                            end,
                        });
                        cursor = end;
                    }
                    let startup = jit.startup(costs.process_startup);
                    let end = cursor + startup;
                    pre_all.push(Span {
                        kind: SpanKind::Startup,
                        start: cursor,
                        end,
                    });
                    cursor = end;
                }
                ProcessSpawn::Pool => {
                    // Under the shm-ring tier the dispatch payload rides the
                    // ring (orchestrator and worker share the node by
                    // construction); otherwise it crosses a pipe.
                    let payload = if plan.transfer == TransferKind::ShmRing {
                        self.transfer.shm_ring.latency(stage_input_bytes)
                    } else {
                        self.transfer.cross_process(stage_input_bytes)
                    };
                    let dispatch = jit.startup(costs.pool_dispatch) + jit.comm(payload);
                    let end = cursor + dispatch;
                    pre_all.push(Span {
                        kind: SpanKind::Startup,
                        start: cursor,
                        end,
                    });
                    cursor = end;
                }
                ProcessSpawn::MainReuse => {}
            }
            let proc_pre_end = pre_all.len();
            let proc_ready = cursor;

            // MPK/SFI isolation wraps thread execution: it applies wherever
            // a function shares an address space (the orchestrator's
            // process, or a multi-function process). A forked or pooled
            // process hosting a single function is isolated by the process
            // boundary itself.
            let isolated = proc.spawn == ProcessSpawn::MainReuse || proc.functions.len() > 1;

            for (ti, &fid) in proc.functions.iter().enumerate() {
                // Each thread's pre-spans begin with its process's prefix.
                let pre_start = pre_all.len();
                for i in proc_pre_start..proc_pre_end {
                    let span = pre_all[i];
                    pre_all.push(span);
                }
                let mut cursor = proc_ready;
                if ti > 0 {
                    // Threads are cloned serially by the process main.
                    let clone_cost = jit.startup(costs.thread_clone) * ti as u64;
                    let end = cursor + clone_cost;
                    pre_all.push(Span {
                        kind: SpanKind::Startup,
                        start: cursor,
                        end,
                    });
                    cursor = end;
                }
                if isolated && !iso.startup.is_zero() {
                    let end = cursor + jit.startup(iso.startup);
                    pre_all.push(Span {
                        kind: SpanKind::Startup,
                        start: cursor,
                        end,
                    });
                    cursor = end;
                }
                if read_input {
                    let read = jit.comm(
                        self.transfer
                            .cross_sandbox(plan.transfer, stage_input_bytes),
                    );
                    let end = cursor + read;
                    pre_all.push(Span {
                        kind: SpanKind::TransferIn,
                        start: cursor,
                        end,
                    });
                    cursor = end;
                }
                let spec = workflow.function(fid);
                let mut segments = scratch.segs.take();
                segments.extend(spec.segments.iter().map(|&seg| {
                    let stretched = if isolated {
                        iso.stretch_segment(seg)
                    } else {
                        seg.duration()
                    };
                    match seg {
                        Segment::Cpu(_) => Segment::Cpu(jit.cpu(stretched)),
                        Segment::Block { kind, .. } => Segment::Block {
                            kind,
                            dur: jit.io(stretched),
                        },
                    }
                }));
                tasks.push(ThreadTask {
                    process: pi,
                    start: cursor,
                    segments,
                });
                metas.push(ThreadMeta {
                    function: fid,
                    process: pi,
                    pre: pre_start..pre_all.len(),
                    dispatched: stage_start,
                });
            }
        }

        let results = execute_sandbox_scratch(
            tasks,
            sb.cpus,
            plan.runtime,
            costs.gil_switch_interval,
            scratch,
        );

        // ---- per-process completion and IPC drain (Eq. 3) ---------------
        let n_procs = wrap.processes.len();
        proc_end.clear();
        proc_end.resize(n_procs, SimTime::ZERO);
        first_meta.clear();
        first_meta.resize(n_procs, usize::MAX);
        for (mi, (meta, result)) in metas.iter().zip(results).enumerate() {
            proc_end[meta.process] = proc_end[meta.process].max(result.end);
            if first_meta[meta.process] == usize::MAX {
                first_meta[meta.process] = mi;
            }
        }
        order.clear();
        order.extend(0..n_procs);
        order.sort_by_key(|&p| proc_end[p]);
        let mut drain = SimTime::ZERO;
        ipc_span.clear();
        ipc_span.resize(n_procs, None);
        for (rank, &p) in order.iter().enumerate() {
            if rank == 0 {
                drain = proc_end[p];
                continue;
            }
            let start = drain.max(proc_end[p]);
            let out_bytes: u64 = wrap.processes[p]
                .functions
                .iter()
                .map(|&fid| workflow.function(fid).output_bytes)
                .sum();
            // Processes of one wrap share a node: under the shm-ring tier
            // the drain rides the ring (floor replaces T_IPC's pipe write).
            let cost = if plan.transfer == TransferKind::ShmRing {
                jit.comm(self.transfer.shm_ring.latency(out_bytes))
            } else {
                jit.comm(costs.ipc_pipe + self.transfer.cross_process(out_bytes))
            };
            drain = start + cost;
            ipc_span[p] = Some(Span {
                kind: SpanKind::Ipc,
                start,
                end: drain,
            });
        }
        let mut wrap_end = drain;

        // ---- assemble timelines ------------------------------------------
        for (mi, (meta, result)) in metas.iter().zip(results).enumerate() {
            // IPC span attaches to the process's functions (recorded once,
            // on the process's first function).
            let ipc = ipc_span[meta.process].filter(|_| first_meta[meta.process] == mi);
            let mut spans = Vec::with_capacity(
                meta.pre.len()
                    + result.spans.len()
                    + usize::from(ipc.is_some())
                    + usize::from(write_output),
            );
            spans.extend_from_slice(&pre_all[meta.pre.clone()]);
            spans.extend_from_slice(&result.spans);
            let mut completed = result.end;
            if let Some(ipc) = ipc {
                spans.push(ipc);
            }
            if write_output {
                let write =
                    jit.comm(self.transfer.cross_sandbox(
                        plan.transfer,
                        workflow.function(meta.function).output_bytes,
                    ));
                // The write starts when the function's own result exists.
                let start = completed;
                completed = start + write;
                spans.push(Span {
                    kind: SpanKind::TransferOut,
                    start,
                    end: completed,
                });
                wrap_end = wrap_end.max(completed);
            }
            // Tracing hook (one relaxed load when disabled): the warm-path
            // engine reports each function's DES window. The reference
            // engine stays uninstrumented — it exists to reproduce the
            // seed harness byte-for-byte, overhead included.
            if chiron_obs::tracing_enabled() {
                let dispatched_ns = meta.dispatched.as_nanos();
                let rel = |t: chiron_model::SimTime| {
                    u32::try_from(t.as_nanos().saturating_sub(dispatched_ns)).unwrap_or(u32::MAX)
                };
                chiron_obs::emit(
                    dispatched_ns,
                    chiron_obs::TraceEventKind::DesSpan {
                        function: meta.function.0 as u16,
                        sandbox: wrap.sandbox.0 as u16,
                        stage: stage as u16,
                        spans: spans.len().min(u16::MAX as usize) as u16,
                        dispatched_ns,
                        exec_rel_ns: rel(result.exec_start),
                        complete_rel_ns: rel(completed),
                    },
                );
                // The window's §2.2 component breakdown, for latency
                // attribution: startup / block / interaction / execution.
                let mut parts = [0u64; 4];
                for span in &spans {
                    let slot = match span.kind {
                        SpanKind::Startup => 0,
                        SpanKind::BlockWait | SpanKind::GilWait | SpanKind::Scheduled => 1,
                        SpanKind::TransferIn | SpanKind::TransferOut | SpanKind::Ipc => 2,
                        SpanKind::Exec | SpanKind::Io => 3,
                    };
                    parts[slot] += span.end.since(span.start).as_nanos();
                }
                let sat = |ns: u64| u32::try_from(ns).unwrap_or(u32::MAX);
                chiron_obs::emit(
                    dispatched_ns,
                    chiron_obs::TraceEventKind::DesBreakdown {
                        function: meta.function.0 as u16,
                        stage: stage as u16,
                        startup_ns: sat(parts[0]),
                        blocked_ns: sat(parts[1]),
                        interaction_ns: sat(parts[2]),
                        exec_ns: sat(parts[3]),
                    },
                );
            }
            timelines[meta.function.index()] = Some(FunctionTimeline {
                function: meta.function,
                sandbox: wrap.sandbox,
                stage,
                dispatched: meta.dispatched,
                exec_start: result.exec_start,
                completed,
                spans,
            });
        }

        // Recycle the task segment buffers, then hand the wrap buffers back.
        for task in tasks.drain(..) {
            scratch.segs.put(task.segments);
        }
        scratch.wrap.bufs = ws;
        wrap_end
    }

    // -----------------------------------------------------------------------
    // Reference engine
    // -----------------------------------------------------------------------

    /// The pre-optimisation execution path, retained verbatim: allocates
    /// every buffer per request and simulates sandboxes with
    /// [`execute_sandbox_reference`](crate::fluid::execute_sandbox_reference).
    /// Byte-identical to [`execute`](Self::execute) — `figures -- perf-eval`
    /// benchmarks against it and the property tests assert the equality.
    pub fn execute_reference(
        &self,
        workflow: &Workflow,
        plan: &DeploymentPlan,
        seed: u64,
    ) -> Result<RequestOutcome, PlanError> {
        let stage_sets: Vec<Vec<FunctionId>> = workflow
            .stages
            .iter()
            .map(|s| s.functions.clone())
            .collect();
        plan.validate(&stage_sets)?;

        let costs = &self.config.costs;
        let mut jit = Jitter::new(self.config.jitter, seed);
        let iso = IsolationCosts::for_kind(plan.isolation);
        let store_based = !matches!(
            plan.transfer,
            TransferKind::RpcPayload | TransferKind::ShmRing
        );
        let placement = (plan.transfer == TransferKind::ShmRing)
            .then(|| NodePlacement::first_fit(plan, costs.node_cpus));
        let colocated =
            |a: SandboxId, b: SandboxId| placement.as_ref().is_some_and(|p| p.colocated(a, b));
        let last_stage = plan.stages.len() - 1;

        let mut timelines: Vec<Option<FunctionTimeline>> = vec![None; workflow.function_count()];
        let mut warm: HashSet<chiron_model::SandboxId> = HashSet::new();
        let mut stage_windows = Vec::with_capacity(plan.stages.len());
        let mut t = SimTime::ZERO;
        let mut prev_primary = None;

        for (si, stage_plan) in plan.stages.iter().enumerate() {
            let stage_input_bytes = if si == 0 {
                REQUEST_PAYLOAD_BYTES
            } else {
                workflow.stage_output_bytes(si - 1)
            };

            // Cross-stage control handoff between pre-deployed wraps in
            // different sandboxes.
            let primary = stage_plan.wraps[0].sandbox;
            if plan.scheduling == SchedulingKind::PreDeployed {
                if let Some(prev) = prev_primary {
                    if prev != primary {
                        // A co-located pair rides the ring: the doorbell
                        // floor replaces the RPC round trip entirely.
                        t += if colocated(prev, primary) {
                            jit.comm(self.transfer.shm_ring.latency(stage_input_bytes))
                        } else {
                            jit.comm(costs.rpc)
                                + jit.comm(
                                    self.transfer
                                        .cross_sandbox(TransferKind::RpcPayload, stage_input_bytes),
                                )
                        };
                    }
                }
            }
            prev_primary = Some(primary);

            let stage_start = t;
            let mut wrap_ends: Vec<SimTime> = Vec::with_capacity(stage_plan.wraps.len());

            for (k, wrap) in stage_plan.wraps.iter().enumerate() {
                // ---- invocation time of this wrap -----------------------
                let mut avail = match plan.scheduling {
                    SchedulingKind::Asf => {
                        stage_start + jit.comm(self.config.scheduling.asf_schedule_time(k as u32))
                    }
                    SchedulingKind::OpenFaasGateway => {
                        stage_start
                            + jit.comm(self.config.scheduling.openfaas_stage_overhead(k as u32 + 1))
                            + jit.comm(costs.rpc)
                    }
                    SchedulingKind::PreDeployed => {
                        if k == 0 {
                            stage_start
                        } else if colocated(primary, wrap.sandbox) {
                            // Invocation still costs T_INV per Eq. 2, but
                            // the payload rides the ring in place of the
                            // RPC round trip + piggy-backed copy.
                            stage_start
                                + jit.comm(costs.inv * k as u64)
                                + jit.comm(self.transfer.shm_ring.latency(stage_input_bytes))
                        } else {
                            stage_start
                                + jit.comm(costs.inv * k as u64)
                                + jit.comm(costs.rpc)
                                + jit.comm(
                                    self.transfer
                                        .cross_sandbox(TransferKind::RpcPayload, stage_input_bytes),
                                )
                        }
                    }
                };
                if self.include_cold_start && !warm.contains(&wrap.sandbox) {
                    avail += jit.startup(self.start_cost.unwrap_or(costs.sandbox_cold_start));
                }
                warm.insert(wrap.sandbox);

                let read_input = store_based && si > 0;
                let write_output = store_based && si < last_stage;
                let end = self.run_wrap_reference(WrapRun {
                    workflow,
                    plan,
                    wrap,
                    stage: si,
                    stage_start,
                    avail,
                    stage_input_bytes,
                    read_input,
                    write_output,
                    iso: &iso,
                    jit: &mut jit,
                    timelines: &mut timelines,
                });
                wrap_ends.push(end);
            }

            // ---- stage completion (Eq. 2) -------------------------------
            let remote_return = plan.scheduling != SchedulingKind::PreDeployed;
            let mut stage_end = SimTime::ZERO;
            for (k, &end) in wrap_ends.iter().enumerate() {
                let e = if k == 0 && !remote_return {
                    end
                } else if !remote_return && colocated(stage_plan.wraps[k].sandbox, primary) {
                    // Result notification over the ring: doorbell only.
                    end + jit.comm(self.transfer.shm_ring.floor)
                } else {
                    end + jit.comm(costs.rpc)
                };
                stage_end = stage_end.max(e);
            }
            t = stage_end;
            stage_windows.push((stage_start, stage_end));
        }

        let timelines: Vec<FunctionTimeline> = timelines
            .into_iter()
            .map(|t| t.expect("every function executed"))
            .collect();
        Ok(RequestOutcome {
            e2e: t.since(SimTime::ZERO),
            timelines,
            stage_windows,
        })
    }

    /// `run_wrap` as it was before buffer reuse: per-call vectors, cloned
    /// pre-span lists and the re-scanning fluid engine.
    fn run_wrap_reference(&self, run: WrapRun<'_>) -> SimTime {
        let WrapRun {
            workflow,
            plan,
            wrap,
            stage,
            stage_start,
            avail,
            stage_input_bytes,
            read_input,
            write_output,
            iso,
            jit,
            timelines,
        } = run;
        let costs = &self.config.costs;
        let sb = plan.sandbox(wrap.sandbox).expect("validated plan");

        struct RefMeta {
            function: FunctionId,
            process: usize,
            pre_spans: Vec<Span>,
            dispatched: SimTime,
        }
        let mut tasks: Vec<ThreadTask> = Vec::with_capacity(wrap.function_count());
        let mut metas: Vec<RefMeta> = Vec::with_capacity(wrap.function_count());

        let mut cum_block = SimDuration::ZERO;
        let mut forked_before = false;
        for (pi, proc) in wrap.processes.iter().enumerate() {
            // ---- process materialisation --------------------------------
            let mut pre: Vec<Span> = Vec::new();
            if avail > stage_start {
                pre.push(Span {
                    kind: SpanKind::Scheduled,
                    start: stage_start,
                    end: avail,
                });
            }
            let mut cursor = avail;
            match proc.spawn {
                ProcessSpawn::Fork => {
                    if forked_before {
                        cum_block += jit.startup(costs.process_block);
                    }
                    forked_before = true;
                    if !cum_block.is_zero() {
                        let end = cursor + cum_block;
                        pre.push(Span {
                            kind: SpanKind::BlockWait,
                            start: cursor,
                            end,
                        });
                        cursor = end;
                    }
                    let startup = jit.startup(costs.process_startup);
                    let end = cursor + startup;
                    pre.push(Span {
                        kind: SpanKind::Startup,
                        start: cursor,
                        end,
                    });
                    cursor = end;
                }
                ProcessSpawn::Pool => {
                    // Under the shm-ring tier the dispatch payload rides the
                    // ring (orchestrator and worker share the node by
                    // construction); otherwise it crosses a pipe.
                    let payload = if plan.transfer == TransferKind::ShmRing {
                        self.transfer.shm_ring.latency(stage_input_bytes)
                    } else {
                        self.transfer.cross_process(stage_input_bytes)
                    };
                    let dispatch = jit.startup(costs.pool_dispatch) + jit.comm(payload);
                    let end = cursor + dispatch;
                    pre.push(Span {
                        kind: SpanKind::Startup,
                        start: cursor,
                        end,
                    });
                    cursor = end;
                }
                ProcessSpawn::MainReuse => {}
            }
            let proc_ready = cursor;

            let isolated = proc.spawn == ProcessSpawn::MainReuse || proc.functions.len() > 1;

            for (ti, &fid) in proc.functions.iter().enumerate() {
                let mut spans = pre.clone();
                let mut cursor = proc_ready;
                if ti > 0 {
                    // Threads are cloned serially by the process main.
                    let clone_cost = jit.startup(costs.thread_clone) * ti as u64;
                    let end = cursor + clone_cost;
                    spans.push(Span {
                        kind: SpanKind::Startup,
                        start: cursor,
                        end,
                    });
                    cursor = end;
                }
                if isolated && !iso.startup.is_zero() {
                    let end = cursor + jit.startup(iso.startup);
                    spans.push(Span {
                        kind: SpanKind::Startup,
                        start: cursor,
                        end,
                    });
                    cursor = end;
                }
                if read_input {
                    let read = jit.comm(
                        self.transfer
                            .cross_sandbox(plan.transfer, stage_input_bytes),
                    );
                    let end = cursor + read;
                    spans.push(Span {
                        kind: SpanKind::TransferIn,
                        start: cursor,
                        end,
                    });
                    cursor = end;
                }
                let spec = workflow.function(fid);
                let segments: Vec<Segment> = spec
                    .segments
                    .iter()
                    .map(|&seg| {
                        let stretched = if isolated {
                            iso.stretch_segment(seg)
                        } else {
                            seg.duration()
                        };
                        match seg {
                            Segment::Cpu(_) => Segment::Cpu(jit.cpu(stretched)),
                            Segment::Block { kind, .. } => Segment::Block {
                                kind,
                                dur: jit.io(stretched),
                            },
                        }
                    })
                    .collect();
                tasks.push(ThreadTask {
                    process: pi,
                    start: cursor,
                    segments,
                });
                metas.push(RefMeta {
                    function: fid,
                    process: pi,
                    pre_spans: spans,
                    dispatched: stage_start,
                });
            }
        }

        let results = crate::fluid::execute_sandbox_reference(
            &tasks,
            sb.cpus,
            plan.runtime,
            costs.gil_switch_interval,
        );

        // ---- per-process completion and IPC drain (Eq. 3) ---------------
        let n_procs = wrap.processes.len();
        let mut proc_end = vec![SimTime::ZERO; n_procs];
        for (meta, result) in metas.iter().zip(&results) {
            proc_end[meta.process] = proc_end[meta.process].max(result.end);
        }
        let mut order: Vec<usize> = (0..n_procs).collect();
        order.sort_by_key(|&p| proc_end[p]);
        let mut drain = SimTime::ZERO;
        let mut ipc_span: Vec<Option<Span>> = vec![None; n_procs];
        for (rank, &p) in order.iter().enumerate() {
            if rank == 0 {
                drain = proc_end[p];
                continue;
            }
            let start = drain.max(proc_end[p]);
            let out_bytes: u64 = wrap.processes[p]
                .functions
                .iter()
                .map(|&fid| workflow.function(fid).output_bytes)
                .sum();
            // Processes of one wrap share a node: under the shm-ring tier
            // the drain rides the ring (floor replaces T_IPC's pipe write).
            let cost = if plan.transfer == TransferKind::ShmRing {
                jit.comm(self.transfer.shm_ring.latency(out_bytes))
            } else {
                jit.comm(costs.ipc_pipe + self.transfer.cross_process(out_bytes))
            };
            drain = start + cost;
            ipc_span[p] = Some(Span {
                kind: SpanKind::Ipc,
                start,
                end: drain,
            });
        }
        let mut wrap_end = drain;

        // ---- assemble timelines ------------------------------------------
        for (meta, result) in metas.iter().zip(&results) {
            let mut spans = meta.pre_spans.clone();
            spans.extend(result.spans.iter().copied());
            let mut completed = result.end;
            // IPC span attaches to the process's functions (recorded once,
            // on the process's first function).
            if let Some(ipc) = ipc_span[meta.process] {
                let first_of_proc = metas
                    .iter()
                    .position(|m| m.process == meta.process)
                    .expect("process has functions");
                if metas[first_of_proc].function == meta.function {
                    spans.push(ipc);
                }
            }
            if write_output {
                let write =
                    jit.comm(self.transfer.cross_sandbox(
                        plan.transfer,
                        workflow.function(meta.function).output_bytes,
                    ));
                // The write starts when the function's own result exists.
                let start = completed;
                completed = start + write;
                spans.push(Span {
                    kind: SpanKind::TransferOut,
                    start,
                    end: completed,
                });
                wrap_end = wrap_end.max(completed);
            }
            timelines[meta.function.index()] = Some(FunctionTimeline {
                function: meta.function,
                sandbox: wrap.sandbox,
                stage,
                dispatched: meta.dispatched,
                exec_start: result.exec_start,
                completed,
                spans,
            });
        }
        wrap_end
    }
}

/// Parameters for executing one wrap (bundled to keep `run_wrap` readable).
struct WrapRun<'a> {
    workflow: &'a Workflow,
    plan: &'a DeploymentPlan,
    wrap: &'a WrapPlan,
    stage: usize,
    stage_start: SimTime,
    avail: SimTime,
    stage_input_bytes: u64,
    read_input: bool,
    write_output: bool,
    iso: &'a IsolationCosts,
    jit: &'a mut Jitter,
    timelines: &'a mut Vec<Option<FunctionTimeline>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::plan::*;
    use chiron_model::{apps, FunctionSpec, IsolationKind, RuntimeKind, SandboxId, SandboxPlan};

    fn platform() -> VirtualPlatform {
        VirtualPlatform::new(PlatformConfig::paper_calibrated())
    }

    /// A trivial single-stage, single-function workflow + plan.
    fn solo() -> (Workflow, DeploymentPlan) {
        let wf = Workflow::new(
            "solo",
            vec![FunctionSpec::new("f", vec![Segment::cpu_ms(10)])],
            vec![vec![0]],
        )
        .unwrap();
        let plan = DeploymentPlan {
            system: SystemKind::Chiron,
            workflow: "solo".into(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::RpcPayload,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes: vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 1,
                pool_size: 0,
            }],
            stages: vec![StagePlan {
                wraps: vec![WrapPlan {
                    sandbox: SandboxId(0),
                    processes: vec![ProcessPlan::main_reuse(vec![FunctionId(0)])],
                }],
            }],
        };
        (wf, plan)
    }

    #[test]
    fn solo_function_runs_at_cost() {
        let (wf, plan) = solo();
        let outcome = platform().execute(&wf, &plan, 0).unwrap();
        assert_eq!(outcome.e2e.as_millis_f64(), 10.0);
        let t = outcome.timeline(FunctionId(0));
        t.check_invariants().unwrap();
        assert_eq!(t.startup_overhead(), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_without_jitter() {
        let (wf, plan) = solo();
        let p = platform();
        let a = p.execute(&wf, &plan, 1).unwrap();
        let b = p.execute(&wf, &plan, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn jitter_changes_outcome_but_is_seed_stable() {
        let (wf, plan) = solo();
        let p = VirtualPlatform::new(
            PlatformConfig::paper_calibrated().with_jitter(chiron_model::JitterModel::cluster()),
        );
        let a = p.execute(&wf, &plan, 1).unwrap();
        let b = p.execute(&wf, &plan, 1).unwrap();
        let c = p.execute(&wf, &plan, 2).unwrap();
        assert_eq!(a, b, "same seed, same outcome");
        assert_ne!(a, c, "different seed, different outcome");
    }

    /// FINRA-5 deployed Faastlane-style: fetch as orchestrator thread, five
    /// forked rule processes in one sandbox.
    fn finra5_faastlane() -> (Workflow, DeploymentPlan) {
        let wf = apps::finra(5);
        let plan = DeploymentPlan {
            system: SystemKind::Faastlane,
            workflow: wf.name.clone(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::RpcPayload,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes: vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 5,
                pool_size: 0,
            }],
            stages: vec![
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::main_reuse(vec![FunctionId(0)])],
                    }],
                },
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: (1..=5)
                            .map(|i| ProcessPlan::forked(vec![FunctionId(i)]))
                            .collect(),
                    }],
                },
            ],
        };
        (wf, plan)
    }

    #[test]
    fn fork_block_semantics_follow_eq4() {
        let (wf, plan) = finra5_faastlane();
        let outcome = platform().execute(&wf, &plan, 0).unwrap();
        let costs = CostModelRef::get();
        // Process j (0-based) begins executing at stage2_start +
        // j·T_Block + T_Startup.
        let stage2_start = outcome.stage_windows[1].0;
        for j in 0..5u32 {
            let t = outcome.timeline(FunctionId(1 + j));
            t.check_invariants().unwrap();
            let expected =
                stage2_start + costs.process_block * u64::from(j) + costs.process_startup;
            assert_eq!(
                t.exec_start, expected,
                "process {j} exec_start {:?} vs {:?}",
                t.exec_start, expected
            );
        }
        // Interaction: 4 × (T_IPC + tiny pipe payload) ≈ the paper's 4.3ms.
        let ipc = outcome.total(SpanKind::Ipc).as_millis_f64();
        assert!((3.5..5.5).contains(&ipc), "IPC drain: {ipc}ms");
    }

    /// Convenience accessor for the calibrated cost constants in tests.
    struct CostModelRef;
    impl CostModelRef {
        fn get() -> chiron_model::CostModel {
            chiron_model::CostModel::paper_calibrated()
        }
    }

    #[test]
    fn thread_mode_skips_fork_overheads() {
        let wf = apps::finra(5);
        // Faastlane-T: all five rules as threads of one process.
        let plan = DeploymentPlan {
            system: SystemKind::FaastlaneT,
            workflow: wf.name.clone(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::RpcPayload,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes: vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 5,
                pool_size: 0,
            }],
            stages: vec![
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::main_reuse(vec![FunctionId(0)])],
                    }],
                },
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::main_reuse((1..=5).map(FunctionId).collect())],
                    }],
                },
            ],
        };
        let thread_outcome = platform().execute(&wf, &plan, 0).unwrap();
        let (_, fork_plan) = finra5_faastlane();
        let fork_outcome = platform().execute(&wf, &fork_plan, 0).unwrap();
        // FINRA-5's rules are sub-millisecond: thread execution wins even
        // though the GIL serialises them (Observation 3 / Fig. 6 at n=5).
        assert!(
            thread_outcome.e2e < fork_outcome.e2e,
            "threads {} vs processes {}",
            thread_outcome.e2e,
            fork_outcome.e2e
        );
        // And the fork plan pays measurable block time.
        assert!(fork_outcome.total(SpanKind::BlockWait) > SimDuration::ZERO);
        assert_eq!(thread_outcome.total(SpanKind::BlockWait), SimDuration::ZERO);
    }

    #[test]
    fn one_to_one_pays_store_and_scheduling() {
        let wf = apps::finra(5);
        // OpenFaaS-style: every function in its own sandbox, MinIO data.
        let sandboxes: Vec<SandboxPlan> = (0..6)
            .map(|i| SandboxPlan {
                id: SandboxId(i),
                cpus: 1,
                pool_size: 0,
            })
            .collect();
        let plan = DeploymentPlan {
            system: SystemKind::OpenFaas,
            workflow: wf.name.clone(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::LocalMinio,
            scheduling: SchedulingKind::OpenFaasGateway,
            sandboxes,
            stages: vec![
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::main_reuse(vec![FunctionId(0)])],
                    }],
                },
                StagePlan {
                    wraps: (1..=5)
                        .map(|i| WrapPlan {
                            sandbox: SandboxId(i),
                            processes: vec![ProcessPlan::main_reuse(vec![FunctionId(i)])],
                        })
                        .collect(),
                },
            ],
        };
        let outcome = platform().execute(&wf, &plan, 0).unwrap();
        // Stage-2 functions each read their input from MinIO (≥10ms).
        assert!(outcome.total(SpanKind::TransferIn) >= SimDuration::from_millis(50));
        // Stage-1 output was written to the store.
        assert!(outcome.total(SpanKind::TransferOut) >= SimDuration::from_millis(10));
        // Scheduling spans exist for gateway-dispatched functions.
        assert!(outcome.total(SpanKind::Scheduled) > SimDuration::ZERO);
        for t in &outcome.timelines {
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn cold_start_charged_once_per_sandbox() {
        let (wf, plan) = solo();
        let cold = platform()
            .with_cold_starts(true)
            .execute(&wf, &plan, 0)
            .unwrap();
        let warm = platform().execute(&wf, &plan, 0).unwrap();
        let delta = cold.e2e.as_millis_f64() - warm.e2e.as_millis_f64();
        assert!((delta - 167.0).abs() < 0.5, "cold start delta {delta}");
    }

    #[test]
    fn start_cost_override_replaces_the_cold_boot() {
        // A tiered start (snapshot restore ≈ 12 ms) charges its own
        // latency in place of the 167 ms cold boot, once per sandbox.
        let (wf, plan) = solo();
        let restored = platform()
            .with_cold_starts(true)
            .with_start_cost(SimDuration::from_millis(12))
            .execute(&wf, &plan, 0)
            .unwrap();
        let warm = platform().execute(&wf, &plan, 0).unwrap();
        let delta = restored.e2e.as_millis_f64() - warm.e2e.as_millis_f64();
        assert!((delta - 12.0).abs() < 0.5, "restore delta {delta}");
        // Without cold starts enabled the override charges nothing.
        let ignored = platform()
            .with_start_cost(SimDuration::from_millis(12))
            .execute(&wf, &plan, 0)
            .unwrap();
        assert_eq!(ignored.e2e, warm.e2e);
    }

    #[test]
    fn mpk_isolation_slows_thread_execution() {
        let (wf, mut plan) = solo();
        plan.isolation = IsolationKind::Mpk;
        let mpk = platform().execute(&wf, &plan, 0).unwrap();
        plan.isolation = IsolationKind::None;
        let bare = platform().execute(&wf, &plan, 0).unwrap();
        let ratio = mpk.e2e.as_millis_f64() / bare.e2e.as_millis_f64();
        // 10ms pure CPU → 35.2% slower plus 0.2ms domain entry.
        assert!((1.33..1.42).contains(&ratio), "MPK ratio {ratio}");
    }

    #[test]
    fn multi_wrap_stage_staggers_invocations() {
        let wf = apps::finra(4);
        // Two wraps of two forked rule processes each.
        let plan = DeploymentPlan {
            system: SystemKind::Chiron,
            workflow: wf.name.clone(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::RpcPayload,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes: vec![
                SandboxPlan {
                    id: SandboxId(0),
                    cpus: 2,
                    pool_size: 0,
                },
                SandboxPlan {
                    id: SandboxId(1),
                    cpus: 2,
                    pool_size: 0,
                },
            ],
            stages: vec![
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::main_reuse(vec![FunctionId(0)])],
                    }],
                },
                StagePlan {
                    wraps: vec![
                        WrapPlan {
                            sandbox: SandboxId(0),
                            processes: vec![
                                ProcessPlan::forked(vec![FunctionId(1)]),
                                ProcessPlan::forked(vec![FunctionId(2)]),
                            ],
                        },
                        WrapPlan {
                            sandbox: SandboxId(1),
                            processes: vec![
                                ProcessPlan::forked(vec![FunctionId(3)]),
                                ProcessPlan::forked(vec![FunctionId(4)]),
                            ],
                        },
                    ],
                },
            ],
        };
        let outcome = platform().execute(&wf, &plan, 0).unwrap();
        let stage2 = outcome.stage_windows[1].0;
        let local = outcome.timeline(FunctionId(1));
        let remote = outcome.timeline(FunctionId(3));
        // The remote wrap starts T_INV + T_RPC + payload later.
        assert_eq!(local.spans[0].start, stage2);
        assert!(remote.exec_start > local.exec_start);
        // The remote wrap's functions carry a Scheduled span.
        assert!(remote.total(SpanKind::Scheduled) > SimDuration::ZERO);
    }

    #[test]
    fn pool_dispatch_is_cheap_and_parallel() {
        let wf = apps::finra(5);
        let plan = DeploymentPlan {
            system: SystemKind::ChironP,
            workflow: wf.name.clone(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::RpcPayload,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes: vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 5,
                pool_size: 6,
            }],
            stages: vec![
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::pooled(vec![FunctionId(0)])],
                    }],
                },
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: (1..=5)
                            .map(|i| ProcessPlan::pooled(vec![FunctionId(i)]))
                            .collect(),
                    }],
                },
            ],
        };
        let pooled = platform().execute(&wf, &plan, 0).unwrap();
        let (_, forked) = finra5_faastlane();
        let forked = platform().execute(&wf, &forked, 0).unwrap();
        assert!(
            pooled.e2e < forked.e2e,
            "pool should beat per-request forks"
        );
        assert_eq!(pooled.total(SpanKind::BlockWait), SimDuration::ZERO);
        // Pool workers are separate processes: rules run truly in parallel,
        // so the last rule finishes ≈ when the first does.
        let ends: Vec<f64> = (1..=5)
            .map(|i| pooled.timeline(FunctionId(i)).completed.as_millis_f64())
            .collect();
        let spread = ends.iter().cloned().fold(f64::MIN, f64::max)
            - ends.iter().cloned().fold(f64::MAX, f64::min);
        // The rules' own execution times differ by up to 11.5ms; a fork
        // ladder would add ~14ms of stagger on top of that.
        assert!(spread < 12.5, "pool spread {spread}ms");
    }

    /// The multi-wrap FINRA-4 plan (two sandboxes of 2 cpus — first-fit
    /// packs both onto one 40-cpu node) under a configurable transfer kind.
    fn finra4_two_wraps(transfer: TransferKind) -> (Workflow, DeploymentPlan) {
        let wf = apps::finra(4);
        let plan = DeploymentPlan {
            system: SystemKind::Chiron,
            workflow: wf.name.clone(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes: vec![
                SandboxPlan {
                    id: SandboxId(0),
                    cpus: 2,
                    pool_size: 0,
                },
                SandboxPlan {
                    id: SandboxId(1),
                    cpus: 2,
                    pool_size: 0,
                },
            ],
            stages: vec![
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::main_reuse(vec![FunctionId(0)])],
                    }],
                },
                StagePlan {
                    wraps: vec![
                        WrapPlan {
                            sandbox: SandboxId(0),
                            processes: vec![
                                ProcessPlan::forked(vec![FunctionId(1)]),
                                ProcessPlan::forked(vec![FunctionId(2)]),
                            ],
                        },
                        WrapPlan {
                            sandbox: SandboxId(1),
                            processes: vec![
                                ProcessPlan::forked(vec![FunctionId(3)]),
                                ProcessPlan::forked(vec![FunctionId(4)]),
                            ],
                        },
                    ],
                },
            ],
        };
        (wf, plan)
    }

    #[test]
    fn shm_ring_beats_rpc_payload_when_colocated() {
        let p = platform();
        let (wf, rpc_plan) = finra4_two_wraps(TransferKind::RpcPayload);
        let (_, ring_plan) = finra4_two_wraps(TransferKind::ShmRing);
        let rpc = p.execute(&wf, &rpc_plan, 0).unwrap();
        let ring = p.execute(&wf, &ring_plan, 0).unwrap();
        // Both 2-cpu sandboxes pack onto one 40-cpu node, so the remote
        // wrap's invocation payload, result return, and the IPC drains all
        // ride the ring — the saving is the dropped RPC round trips plus
        // the pipe-vs-ring bandwidth gap.
        assert!(ring.e2e < rpc.e2e, "ring {} vs rpc {}", ring.e2e, rpc.e2e);
        // The drain still appears, but priced at ring cost (< 1µs for the
        // tiny rule outputs vs ≥1ms of T_IPC each).
        assert!(ring.total(SpanKind::Ipc) < SimDuration::from_micros(10));
        // Two wraps × one drained process each at T_IPC ≈ 1ms.
        assert!(rpc.total(SpanKind::Ipc) >= SimDuration::from_millis(2));
    }

    #[test]
    fn shm_ring_engines_stay_byte_identical() {
        let p = VirtualPlatform::new(
            PlatformConfig::paper_calibrated().with_jitter(chiron_model::JitterModel::cluster()),
        );
        let (wf, plan) = finra4_two_wraps(TransferKind::ShmRing);
        for seed in [0u64, 7, 2023] {
            let fast = p.execute(&wf, &plan, seed).unwrap();
            let reference = p.execute_reference(&wf, &plan, seed).unwrap();
            assert_eq!(fast, reference, "shm-ring engines diverge on seed {seed}");
        }
    }

    #[test]
    fn rejects_invalid_plan() {
        let (wf, mut plan) = solo();
        plan.stages.clear();
        assert!(platform().execute(&wf, &plan, 0).is_err());
    }

    #[test]
    fn reference_engine_matches_optimised_engine() {
        let p = VirtualPlatform::new(
            PlatformConfig::paper_calibrated().with_jitter(chiron_model::JitterModel::cluster()),
        );
        let (solo_wf, solo_plan) = solo();
        let (finra_wf, finra_plan) = finra5_faastlane();
        let cases = [(&solo_wf, &solo_plan), (&finra_wf, &finra_plan)];
        for (wf, plan) in cases {
            for seed in [0u64, 1, 2023] {
                let fast = p.execute(wf, plan, seed).unwrap();
                let reference = p.execute_reference(wf, plan, seed).unwrap();
                assert_eq!(
                    fast, reference,
                    "engines diverge on {} seed {seed}",
                    wf.name
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let p = platform();
        let (wf, plan) = finra5_faastlane();
        let mut reused = crate::scratch::SimScratch::new();
        for seed in 0..5u64 {
            let warm = p
                .execute_with_scratch(&wf, &plan, seed, &mut reused)
                .unwrap();
            let fresh = p
                .execute_with_scratch(&wf, &plan, seed, &mut crate::scratch::SimScratch::new())
                .unwrap();
            assert_eq!(warm, fresh, "scratch reuse changed the outcome");
        }
    }
}
