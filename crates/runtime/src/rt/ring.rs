//! Lock-free SPSC ring buffer: the zero-copy shared-memory data plane for
//! intra-node wrap-to-wrap transfers (the sub-microsecond regime at the
//! left edge of the paper's Fig. 4 five-decade span).
//!
//! Layout and protocol (in the style of Aetherless's shm ring):
//!
//! ```text
//!   capacity = 2^k bytes                      frame = [len u32 LE]
//!   ┌────────────────────────────────┐                [crc u32 LE]
//!   │ ..::[frame][frame][fra ]::.... │                [payload len B]
//!   └────▲───────────────────▲───────┘
//!        head (consumer)     tail (producer)   — free-running indices,
//!                                                masked on access
//! ```
//!
//! * One producer, one consumer, each on its own cache line
//!   (`CachePadded`) so the hot indices never false-share.
//! * Fast path touches no shared atomic: the producer caches the last
//!   head it observed and only refreshes (Acquire) when the ring looks
//!   full; the consumer mirrors that with a cached tail.
//! * Frames wrap: a payload crossing the physical end of the buffer is
//!   written as two copies and read back as two borrowed slices
//!   ([`Consumer::pop_with`]) — the consumer sees the bytes in place,
//!   zero-copy.
//! * Every frame carries a CRC32 (IEEE) over its payload, validated on
//!   pop; a mismatch surfaces as [`RingError::Corrupt`] instead of
//!   silently delivering torn data.
//!
//! The measured `floor + bytes/bandwidth` fit of this ring
//! ([`measure_fit`], plus the Criterion bench `bench/benches/ring.rs`)
//! calibrates the `shm_ring` tier in `chiron-store::transfer`.

use chiron_model::SimDuration;
use chiron_obs::{StaticCounter, StaticHistogram};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

// Data-plane telemetry, registered with `chiron-obs` so `figures -- obs`
// and the fleet flight recorder see ring health next to the simulator's
// own metrics. Every record is gated on `chiron_obs::tracing_enabled()`
// (one Relaxed atomic load), so the sub-microsecond push/pop paths pay
// nothing when observability is off.
//
// Occupancy is measured in *bytes* but `StaticHistogram` is
// duration-typed; we store bytes as nanoseconds (1 B ↔ 1 ns), which the
// metric name makes explicit.
static RING_OCCUPANCY: StaticHistogram = StaticHistogram::new("runtime.ring.occupancy_bytes_as_ns");
static RING_TORN_FRAMES: StaticCounter = StaticCounter::new("runtime.ring.torn_frames");
static RING_CRC_FAILURES: StaticCounter = StaticCounter::new("runtime.ring.crc_failures");
static RING_FULL_REJECTS: StaticCounter = StaticCounter::new("runtime.ring.full_rejects");
static RING_BACKOFF_YIELDS: StaticCounter = StaticCounter::new("runtime.ring.backoff_yields");

/// Point-in-time totals of the ring data-plane telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    /// Occupancy samples recorded (one per successful push).
    pub occupancy_samples: u64,
    /// Frames whose published region was shorter than their own framing.
    pub torn_frames: u64,
    /// Frames whose payload failed CRC validation on pop.
    pub crc_failures: u64,
    /// Pushes rejected because the ring was full at that instant.
    pub full_rejects: u64,
    /// Spin budgets exhausted into a scheduler yield while waiting.
    pub backoff_yields: u64,
}

/// Snapshot of the global ring telemetry counters.
pub fn ring_stats() -> RingStats {
    RingStats {
        occupancy_samples: RING_OCCUPANCY.summary().samples,
        torn_frames: RING_TORN_FRAMES.get(),
        crc_failures: RING_CRC_FAILURES.get(),
        full_rejects: RING_FULL_REJECTS.get(),
        backoff_yields: RING_BACKOFF_YIELDS.get(),
    }
}

/// Resets the global ring telemetry (scoped to the ring: other
/// registered metrics are untouched).
pub fn reset_ring_stats() {
    RING_OCCUPANCY.reset();
    RING_TORN_FRAMES.reset();
    RING_CRC_FAILURES.reset();
    RING_FULL_REJECTS.reset();
    RING_BACKOFF_YIELDS.reset();
}

/// Bytes of frame header preceding every payload: `[len u32][crc u32]`.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Smallest ring the constructor will build.
pub const MIN_CAPACITY: usize = 64;

/// Why a push or pop could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// Not enough free space for the frame right now.
    Full,
    /// The frame can never fit this ring's capacity.
    TooLarge,
    /// CRC mismatch between the stored frame and its payload bytes.
    Corrupt,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Full => write!(f, "ring full"),
            RingError::TooLarge => write!(f, "frame exceeds ring capacity"),
            RingError::Corrupt => write!(f, "frame CRC mismatch"),
        }
    }
}

impl std::error::Error for RingError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table generated at compile time.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ CRC_TABLE[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(u32::MAX, bytes)
}

/// CRC32 (IEEE) of the concatenation of two slices (a wrapped payload).
pub fn crc32_pair(a: &[u8], b: &[u8]) -> u32 {
    !crc32_update(crc32_update(u32::MAX, a), b)
}

// ---------------------------------------------------------------------------
// Shared ring state
// ---------------------------------------------------------------------------

/// Pads the hot indices to their own cache lines so producer and consumer
/// never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Spin briefly, then yield: on a multi-core host the partner usually
/// lands within the spin budget; on a single-core host (or under heavy
/// oversubscription) pure spinning would burn the waiter's entire
/// scheduler timeslice (~milliseconds) before the partner could run at
/// all, turning a sub-microsecond handoff into a multi-millisecond one.
struct Backoff(u32);

impl Backoff {
    const SPIN_BUDGET: u32 = 64;

    fn new() -> Self {
        Backoff(0)
    }

    fn snooze(&mut self) {
        if self.0 < Self::SPIN_BUDGET {
            self.0 += 1;
            std::hint::spin_loop();
        } else {
            if chiron_obs::tracing_enabled() {
                RING_BACKOFF_YIELDS.incr();
            }
            std::thread::yield_now();
        }
    }
}

struct Shared {
    buf: Box<[UnsafeCell<u8>]>,
    mask: usize,
    /// Consumer's free-running read index.
    head: CachePadded<AtomicUsize>,
    /// Producer's free-running write index.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the buffer is only written between `head` and `tail` by the
// single producer and only read by the single consumer, with the
// Release/Acquire pairs on the indices ordering those accesses; the
// producer/consumer halves are !Clone, so exactly one thread is on each
// side.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

impl Shared {
    fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Copies `data` into the buffer starting at free-running index `at`,
    /// wrapping past the physical end.
    ///
    /// SAFETY: caller must hold the producer role and have verified that
    /// `[at, at + data.len())` lies in the free region.
    unsafe fn write(&self, at: usize, data: &[u8]) {
        let idx = at & self.mask;
        let first = data.len().min(self.capacity() - idx);
        std::ptr::copy_nonoverlapping(data.as_ptr(), self.buf[idx].get(), first);
        if first < data.len() {
            std::ptr::copy_nonoverlapping(
                data.as_ptr().add(first),
                self.buf[0].get(),
                data.len() - first,
            );
        }
    }

    /// Borrows `len` bytes starting at free-running index `at` as (up to)
    /// two wrap-aware slices.
    ///
    /// SAFETY: caller must hold the consumer role and have verified that
    /// `[at, at + len)` lies in the readable region published by the
    /// producer's Release store.
    unsafe fn slices(&self, at: usize, len: usize) -> (&[u8], &[u8]) {
        let idx = at & self.mask;
        let first = len.min(self.capacity() - idx);
        let a = std::slice::from_raw_parts(self.buf[idx].get() as *const u8, first);
        let b = std::slice::from_raw_parts(self.buf.as_ptr() as *const u8, len - first);
        (a, b)
    }
}

/// Builds a ring of at least `capacity` bytes (rounded up to a power of
/// two, minimum [`MIN_CAPACITY`]) and returns its two endpoints.
pub fn ring(capacity: usize) -> (Producer, Consumer) {
    let cap = capacity.next_power_of_two().max(MIN_CAPACITY);
    let buf: Box<[UnsafeCell<u8>]> = (0..cap).map(|_| UnsafeCell::new(0)).collect();
    let shared = Arc::new(Shared {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: shared.clone(),
            tail: 0,
            cached_head: 0,
        },
        Consumer {
            shared,
            head: 0,
            cached_tail: 0,
        },
    )
}

/// The write endpoint. `!Clone`: exactly one thread may produce.
pub struct Producer {
    shared: Arc<Shared>,
    /// Local copy of the free-running write index (only this side moves it).
    tail: usize,
    /// Last head observed — refreshed (Acquire) only on apparent-full.
    cached_head: usize,
}

impl std::fmt::Debug for Producer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &self.shared.capacity())
            .field("tail", &self.tail)
            .finish()
    }
}

impl Producer {
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Appends one CRC-framed payload. Zero allocation; two bounded
    /// memcpys (header + payload, each possibly split at the wrap point).
    pub fn try_push(&mut self, payload: &[u8]) -> Result<(), RingError> {
        let frame = FRAME_HEADER_BYTES + payload.len();
        if frame > self.shared.capacity() {
            return Err(RingError::TooLarge);
        }
        // Fast path: judge freeness against the cached head; only touch
        // the shared atomic when the ring looks full.
        if self.shared.capacity() - self.tail.wrapping_sub(self.cached_head) < frame {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if self.shared.capacity() - self.tail.wrapping_sub(self.cached_head) < frame {
                if chiron_obs::tracing_enabled() {
                    RING_FULL_REJECTS.incr();
                }
                return Err(RingError::Full);
            }
        }
        let mut header = [0u8; FRAME_HEADER_BYTES];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        // SAFETY: the region `[tail, tail + frame)` was just verified free,
        // and this is the unique producer.
        unsafe {
            self.shared.write(self.tail, &header);
            self.shared
                .write(self.tail.wrapping_add(FRAME_HEADER_BYTES), payload);
        }
        self.tail = self.tail.wrapping_add(frame);
        // Publish: the consumer's Acquire load of `tail` sees the bytes.
        self.shared.tail.0.store(self.tail, Ordering::Release);
        if chiron_obs::tracing_enabled() {
            // Against the cached head, so the sample never adds an extra
            // Acquire to the fast path; a stale head only over-reports.
            let occupied = self.tail.wrapping_sub(self.cached_head) as u64;
            RING_OCCUPANCY.record(SimDuration::from_nanos(occupied));
        }
        Ok(())
    }

    /// Waits (spin-then-yield) until `payload` fits — the consumer side
    /// must be draining.
    pub fn push_blocking(&mut self, payload: &[u8]) -> Result<(), RingError> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_push(payload) {
                Err(RingError::Full) => backoff.snooze(),
                other => return other,
            }
        }
    }
}

/// The read endpoint. `!Clone`: exactly one thread may consume.
pub struct Consumer {
    shared: Arc<Shared>,
    /// Local copy of the free-running read index (only this side moves it).
    head: usize,
    /// Last tail observed — refreshed (Acquire) only on apparent-empty.
    cached_tail: usize,
}

impl std::fmt::Debug for Consumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &self.shared.capacity())
            .field("head", &self.head)
            .finish()
    }
}

impl Consumer {
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Whether a frame is ready right now (refreshes the cached tail).
    pub fn is_empty(&mut self) -> bool {
        if self.head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
        }
        self.head == self.cached_tail
    }

    /// Pops one frame, handing the payload to `read` as two wrap-aware
    /// borrowed slices (second empty unless the payload wraps) — the
    /// zero-copy read path. The CRC is validated before `read` runs;
    /// `Ok(None)` means the ring is empty.
    pub fn pop_with<R>(
        &mut self,
        read: impl FnOnce(&[u8], &[u8]) -> R,
    ) -> Result<Option<R>, RingError> {
        if self.is_empty() {
            return Ok(None);
        }
        let readable = self.cached_tail.wrapping_sub(self.head);
        // The producer publishes whole frames, so a readable region
        // shorter than its own framing is corruption, not emptiness.
        if readable < FRAME_HEADER_BYTES {
            if chiron_obs::tracing_enabled() {
                RING_TORN_FRAMES.incr();
            }
            return Err(RingError::Corrupt);
        }
        // SAFETY: `[head, head + readable)` was published by the
        // producer's Release store, and this is the unique consumer.
        let (len, crc) = unsafe {
            let (a, b) = self.shared.slices(self.head, FRAME_HEADER_BYTES);
            let mut header = [0u8; FRAME_HEADER_BYTES];
            header[..a.len()].copy_from_slice(a);
            header[a.len()..].copy_from_slice(b);
            (
                u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize,
                u32::from_le_bytes(header[4..].try_into().expect("4 bytes")),
            )
        };
        if FRAME_HEADER_BYTES + len > readable {
            if chiron_obs::tracing_enabled() {
                RING_TORN_FRAMES.incr();
            }
            return Err(RingError::Corrupt);
        }
        // SAFETY: same published region, offset past the header.
        let (a, b) = unsafe {
            self.shared
                .slices(self.head.wrapping_add(FRAME_HEADER_BYTES), len)
        };
        if crc32_pair(a, b) != crc {
            if chiron_obs::tracing_enabled() {
                RING_CRC_FAILURES.incr();
            }
            return Err(RingError::Corrupt);
        }
        let out = read(a, b);
        self.head = self.head.wrapping_add(FRAME_HEADER_BYTES + len);
        // Release the space back to the producer.
        self.shared.head.0.store(self.head, Ordering::Release);
        Ok(Some(out))
    }

    /// [`Consumer::pop_with`] collecting the payload into an owned vector.
    pub fn pop(&mut self) -> Result<Option<Vec<u8>>, RingError> {
        self.pop_with(|a, b| {
            let mut v = Vec::with_capacity(a.len() + b.len());
            v.extend_from_slice(a);
            v.extend_from_slice(b);
            v
        })
    }

    /// Waits (spin-then-yield) until a frame arrives and pops it zero-copy.
    pub fn pop_with_blocking<R>(
        &mut self,
        read: impl FnOnce(&[u8], &[u8]) -> R,
    ) -> Result<R, RingError> {
        let mut backoff = Backoff::new();
        while self.is_empty() {
            backoff.snooze();
        }
        match self.pop_with(read)? {
            Some(r) => Ok(r),
            None => unreachable!("a frame was ready after the non-empty check"),
        }
    }
}

// ---------------------------------------------------------------------------
// Measured fit
// ---------------------------------------------------------------------------

/// A measured `floor + bytes/bandwidth` fit of the real ring, in the same
/// shape as `chiron-store`'s `LinkModel`.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct RingFit {
    /// One-way small-frame latency (half a cross-thread round trip), ns.
    pub floor_ns: f64,
    /// Sustained large-frame bandwidth, bytes per second.
    pub bytes_per_sec: f64,
}

/// Measures the live ring on this machine: a two-thread ping-pong of
/// 16-byte frames for the floor, then a bulk stream of 64 KiB frames for
/// the bandwidth.
///
/// The floor is the **minimum** over several batches of the per-batch mean
/// half-round-trip: an oversubscribed host preempts the spinning threads
/// for milliseconds at a time, which poisons a global mean but leaves the
/// best batch close to the hardware floor. Wall-clock either way, so the
/// result varies by host — the model keeps fixed calibrated constants and
/// `figures -- transfer` records this fit next to them.
pub fn measure_fit() -> RingFit {
    // Debug builds are ~an order of magnitude slower through the CRC and
    // copy paths; scale the sample counts so tests stay quick.
    let rounds: u32 = if cfg!(debug_assertions) { 200 } else { 2_000 };
    let batches: u32 = 10;
    let (mut to_echo, mut from_main) = ring(1 << 12);
    let (mut to_main, mut from_echo) = ring(1 << 12);
    let total = rounds * batches;
    let echo = std::thread::spawn(move || {
        let mut buf = [0u8; 16];
        for _ in 0..total {
            let n = from_main
                .pop_with_blocking(|a, b| {
                    buf[..a.len()].copy_from_slice(a);
                    buf[a.len()..a.len() + b.len()].copy_from_slice(b);
                    a.len() + b.len()
                })
                .expect("uncorrupted ping");
            to_main.push_blocking(&buf[..n]).expect("pong fits");
        }
    });
    let payload = [7u8; 16];
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..rounds {
            to_echo.push_blocking(&payload).expect("ping fits");
            from_echo
                .pop_with_blocking(|a, b| a.len() + b.len())
                .expect("uncorrupted pong");
        }
        let per_hop = start.elapsed().as_nanos() as f64 / f64::from(rounds) / 2.0;
        best = best.min(per_hop);
    }
    echo.join().expect("echo thread");
    let floor_ns = best;

    const FRAME: usize = 64 << 10;
    let frames: usize = if cfg!(debug_assertions) { 256 } else { 2048 };
    let (mut tx, mut rx) = ring(1 << 20);
    let drain = std::thread::spawn(move || {
        for _ in 0..frames {
            rx.pop_with_blocking(|a, b| a.len() + b.len())
                .expect("uncorrupted stream");
        }
    });
    let chunk = vec![0xA5u8; FRAME];
    let start = Instant::now();
    for _ in 0..frames {
        tx.push_blocking(&chunk).expect("frame fits");
    }
    drain.join().expect("drain thread");
    let elapsed = start.elapsed().as_secs_f64();
    let bytes_per_sec = (FRAME * frames) as f64 / elapsed.max(f64::MIN_POSITIVE);

    RingFit {
        floor_ns,
        bytes_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip() {
        let (mut tx, mut rx) = ring(256);
        tx.try_push(b"alpha").unwrap();
        tx.try_push(b"").unwrap();
        tx.try_push(b"gamma").unwrap();
        assert_eq!(rx.pop().unwrap().unwrap(), b"alpha");
        assert_eq!(rx.pop().unwrap().unwrap(), b"");
        assert_eq!(rx.pop().unwrap().unwrap(), b"gamma");
        assert!(rx.pop().unwrap().is_none());
    }

    #[test]
    fn frames_wrap_across_the_physical_end() {
        let (mut tx, mut rx) = ring(64);
        // 24-byte frames: the third wraps the 64-byte buffer.
        for round in 0..20u8 {
            let payload = [round; 16];
            tx.try_push(&payload).unwrap();
            let got = rx.pop().unwrap().unwrap();
            assert_eq!(got, payload, "round {round}");
        }
    }

    #[test]
    fn wrapped_payload_surfaces_as_two_slices() {
        let (mut tx, mut rx) = ring(64);
        // Advance the indices so the next payload straddles the end.
        tx.try_push(&[1u8; 40]).unwrap();
        rx.pop().unwrap().unwrap();
        tx.try_push(&[2u8; 32]).unwrap();
        let (a_len, b_len) = rx
            .pop_with(|a, b| (a.len(), b.len()))
            .unwrap()
            .expect("frame ready");
        assert_eq!(a_len + b_len, 32);
        assert!(b_len > 0, "payload should have wrapped");
    }

    #[test]
    fn full_and_too_large() {
        let (mut tx, mut rx) = ring(64);
        assert_eq!(tx.try_push(&[0u8; 100]), Err(RingError::TooLarge));
        tx.try_push(&[1u8; 20]).unwrap();
        tx.try_push(&[2u8; 20]).unwrap();
        assert_eq!(tx.try_push(&[3u8; 20]), Err(RingError::Full));
        rx.pop().unwrap().unwrap();
        tx.try_push(&[3u8; 20]).unwrap();
    }

    #[test]
    fn crc_catches_corruption() {
        let (mut tx, mut rx) = ring(128);
        tx.try_push(b"payload-bytes").unwrap();
        // Flip a payload byte behind the ring's back.
        unsafe {
            *tx.shared.buf[FRAME_HEADER_BYTES + 2].get() ^= 0xFF;
        }
        assert_eq!(rx.pop(), Err(RingError::Corrupt));
    }

    #[test]
    fn crc32_known_vector() {
        // The IEEE polynomial's classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_pair(b"12345", b"6789"), 0xCBF4_3926);
        assert_eq!(crc32_pair(b"", b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn threaded_stream_preserves_order_and_content() {
        let (mut tx, mut rx) = ring(1 << 10);
        const N: u32 = 5000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let len = (i % 97) as usize;
                let mut payload = vec![0u8; len];
                for (j, b) in payload.iter_mut().enumerate() {
                    *b = (i as u8).wrapping_add(j as u8);
                }
                tx.push_blocking(&payload).unwrap();
            }
        });
        for i in 0..N {
            let got = loop {
                match rx.pop().unwrap() {
                    Some(v) => break v,
                    None => std::thread::yield_now(),
                }
            };
            assert_eq!(got.len(), (i % 97) as usize, "frame {i} length");
            for (j, &b) in got.iter().enumerate() {
                assert_eq!(b, (i as u8).wrapping_add(j as u8), "frame {i} byte {j}");
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn telemetry_is_zero_cost_when_tracing_disabled() {
        // Phase 1: tracing off — pushes, pops, full rejections, and a CRC
        // failure must leave every instrument untouched.
        let before = ring_stats();
        let (mut tx, mut rx) = ring(64);
        tx.try_push(&[1u8; 20]).unwrap();
        tx.try_push(&[2u8; 20]).unwrap();
        assert_eq!(tx.try_push(&[3u8; 20]), Err(RingError::Full));
        rx.pop().unwrap().unwrap();
        unsafe {
            *tx.shared.buf[(20 + FRAME_HEADER_BYTES * 2 + 2) & tx.shared.mask].get() ^= 0xFF;
        }
        assert_eq!(rx.pop(), Err(RingError::Corrupt));
        assert_eq!(ring_stats(), before, "disabled tracing must record nothing");

        // Phase 2: tracing on — the same traffic shows up in the stats.
        chiron_obs::set_tracing(true);
        let (mut tx, mut rx) = ring(64);
        tx.try_push(&[1u8; 20]).unwrap();
        tx.try_push(&[2u8; 20]).unwrap();
        assert_eq!(tx.try_push(&[3u8; 20]), Err(RingError::Full));
        rx.pop().unwrap().unwrap();
        unsafe {
            *tx.shared.buf[(20 + FRAME_HEADER_BYTES * 2 + 2) & tx.shared.mask].get() ^= 0xFF;
        }
        assert_eq!(rx.pop(), Err(RingError::Corrupt));
        chiron_obs::set_tracing(false);
        let after = ring_stats();
        assert!(after.occupancy_samples >= before.occupancy_samples + 2);
        assert!(after.full_rejects > before.full_rejects);
        assert!(after.crc_failures > before.crc_failures);
    }

    #[test]
    fn measured_fit_is_sane() {
        let fit = measure_fit();
        assert!(fit.floor_ns > 0.0 && fit.floor_ns.is_finite());
        assert!(fit.bytes_per_sec > 1e6, "bw {}", fit.bytes_per_sec);
        // The modelled pipe floor is 50µs; a release-built real shm hop
        // sits orders of magnitude below it (the `figures -- transfer`
        // gate checks exactly this). Debug builds on a loaded host only
        // get a sanity bound.
        let bound = if cfg!(debug_assertions) {
            10_000_000.0
        } else {
            50_000.0
        };
        assert!(fit.floor_ns < bound, "floor {}ns", fit.floor_ns);
    }
}
