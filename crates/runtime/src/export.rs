//! Chrome-trace export of request timelines.
//!
//! Serialises a [`RequestOutcome`](crate::span::RequestOutcome) into the
//! Trace Event Format consumed by `chrome://tracing` / Perfetto, so the
//! Fig. 5-style execution timelines can be inspected interactively: one
//! trace row per function, one complete event per span, colour-coded by
//! span kind. The JSON is emitted by hand — it is a write-only format
//! here, so no JSON dependency is needed.

use crate::span::{RequestOutcome, SpanKind};
use chiron_model::Workflow;
use std::fmt::Write as _;

/// Maps span kinds to trace-viewer colour names (`cname`).
fn color(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Scheduled => "grey",
        SpanKind::TransferIn | SpanKind::TransferOut => "thread_state_iowait",
        SpanKind::BlockWait => "terrible",
        SpanKind::Startup => "bad",
        SpanKind::Exec => "good",
        SpanKind::Io => "thread_state_sleeping",
        SpanKind::GilWait => "generic_work",
        SpanKind::Ipc => "grey",
    }
}

fn label(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Scheduled => "scheduled",
        SpanKind::TransferIn => "transfer-in",
        SpanKind::TransferOut => "transfer-out",
        SpanKind::BlockWait => "fork-block",
        SpanKind::Startup => "startup",
        SpanKind::Exec => "exec",
        SpanKind::Io => "io",
        SpanKind::GilWait => "gil-wait",
        SpanKind::Ipc => "ipc",
    }
}

/// Minimal JSON string escaping (names are ASCII identifiers in practice).
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders the outcome as a Trace Event Format JSON document.
///
/// Load the result in `chrome://tracing` or <https://ui.perfetto.dev>:
/// process = sandbox, thread = function, events = spans (µs timestamps).
pub fn to_chrome_trace(workflow: &Workflow, outcome: &RequestOutcome) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    for timeline in &outcome.timelines {
        let pid = timeline.sandbox.0;
        let tid = timeline.function.0;
        let name = escape(&workflow.function(timeline.function).name);
        // Thread-name metadata so rows are labelled by function.
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
        for span in &timeline.spans {
            let ts_us = span.start.as_nanos() as f64 / 1e3;
            let dur_us = span.duration().as_nanos() as f64 / 1e3;
            if dur_us <= 0.0 {
                continue;
            }
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:.3},\
                     \"dur\":{dur_us:.3},\"name\":\"{}\",\"cname\":\"{}\",\
                     \"args\":{{\"stage\":{}}}}}",
                    label(span.kind),
                    color(span.kind),
                    timeline.stage
                ),
                &mut out,
                &mut first,
            );
        }
    }
    // Stage markers on a dedicated row.
    for (si, &(start, end)) in outcome.stage_windows.iter().enumerate() {
        let ts_us = start.as_nanos() as f64 / 1e3;
        let dur_us = end.since(start).as_nanos() as f64 / 1e3;
        push(
            format!(
                "{{\"ph\":\"X\",\"pid\":9999,\"tid\":0,\"ts\":{ts_us:.3},\
                 \"dur\":{dur_us:.3},\"name\":\"stage {si}\"}}"
            ),
            &mut out,
            &mut first,
        );
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"workflow\":\"{}\",\
         \"e2e_ms\":{:.3}}}}}",
        escape(&workflow.name),
        outcome.e2e.as_millis_f64()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::VirtualPlatform;
    use chiron_model::plan::*;
    use chiron_model::{
        apps, FunctionId, IsolationKind, PlatformConfig, RuntimeKind, SandboxId, SandboxPlan,
    };

    fn outcome() -> (Workflow, RequestOutcome) {
        let wf = apps::finra(5);
        let plan = DeploymentPlan {
            system: SystemKind::Faastlane,
            workflow: wf.name.clone(),
            runtime: RuntimeKind::PseudoParallel,
            isolation: IsolationKind::None,
            transfer: TransferKind::RpcPayload,
            scheduling: SchedulingKind::PreDeployed,
            sandboxes: vec![SandboxPlan {
                id: SandboxId(0),
                cpus: 5,
                pool_size: 0,
            }],
            stages: vec![
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: vec![ProcessPlan::main_reuse(vec![FunctionId(0)])],
                    }],
                },
                StagePlan {
                    wraps: vec![WrapPlan {
                        sandbox: SandboxId(0),
                        processes: (1..=5)
                            .map(|i| ProcessPlan::forked(vec![FunctionId(i)]))
                            .collect(),
                    }],
                },
            ],
        };
        let out = VirtualPlatform::new(PlatformConfig::paper_calibrated())
            .execute(&wf, &plan, 0)
            .unwrap();
        (wf, out)
    }

    #[test]
    fn emits_wellformed_trace_structure() {
        let (wf, out) = outcome();
        let trace = to_chrome_trace(&wf, &out);
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.ends_with('}'));
        // Balanced braces (no quoting subtleties in our identifiers).
        let opens = trace.matches('{').count();
        let closes = trace.matches('}').count();
        assert_eq!(opens, closes);
        // One thread-name metadata record per function.
        assert_eq!(trace.matches("thread_name").count(), wf.function_count());
        // Startup, exec and fork-block spans all appear.
        for needle in [
            "\"startup\"",
            "\"exec\"",
            "\"fork-block\"",
            "\"io\"",
            "stage 1",
        ] {
            assert!(trace.contains(needle), "missing {needle}");
        }
        assert!(trace.contains("\"workflow\":\"FINRA-5\""));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let (wf, out) = outcome();
        let trace = to_chrome_trace(&wf, &out);
        // The fetch function's 40ms net I/O appears as a 40000µs span.
        assert!(trace.contains("\"dur\":40000.000"), "{trace}");
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("tab\tchar"), "tab\\u0009char");
    }
}
