//! Deterministic random perturbation of platform costs.
//!
//! The Predictor models the platform with constant parameters; a real
//! cluster does not behave that way. When a [`JitterModel`] is active, the
//! virtual platform multiplies every cost by a lognormal factor with unit
//! mean, seeded per request, so that prediction error (Fig. 12) and SLO
//! violations (Fig. 14) are meaningful quantities.

use chiron_model::{JitterModel, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded source of multiplicative noise.
#[derive(Debug)]
pub struct Jitter {
    rng: StdRng,
    model: JitterModel,
}

impl Jitter {
    pub fn new(model: JitterModel, seed: u64) -> Self {
        Jitter {
            rng: StdRng::seed_from_u64(seed),
            model,
        }
    }

    /// Standard normal via Box–Muller (no extra dependency needed).
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A lognormal factor with mean 1 and the given relative spread.
    fn factor(&mut self, rel_std: f64) -> f64 {
        if rel_std == 0.0 {
            return 1.0;
        }
        // For lognormal(μ, σ): mean = exp(μ + σ²/2); pick μ = −σ²/2.
        let sigma = rel_std;
        (sigma * self.standard_normal() - sigma * sigma / 2.0).exp()
    }

    pub fn startup(&mut self, d: SimDuration) -> SimDuration {
        let s = self.model.startup_rel_std;
        d.mul_f64(self.factor(s))
    }

    pub fn cpu(&mut self, d: SimDuration) -> SimDuration {
        let s = self.model.cpu_rel_std;
        d.mul_f64(self.factor(s))
    }

    pub fn io(&mut self, d: SimDuration) -> SimDuration {
        let s = self.model.io_rel_std;
        d.mul_f64(self.factor(s))
    }

    pub fn comm(&mut self, d: SimDuration) -> SimDuration {
        let s = self.model.comm_rel_std;
        d.mul_f64(self.factor(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_jitter_is_identity() {
        let mut j = Jitter::new(JitterModel::NONE, 42);
        let d = SimDuration::from_millis(10);
        for _ in 0..10 {
            assert_eq!(j.startup(d), d);
            assert_eq!(j.cpu(d), d);
            assert_eq!(j.io(d), d);
            assert_eq!(j.comm(d), d);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = SimDuration::from_millis(10);
        let run = |seed| {
            let mut j = Jitter::new(JitterModel::cluster(), seed);
            (0..5).map(|_| j.startup(d).as_nanos()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn mean_is_roughly_one() {
        let mut j = Jitter::new(JitterModel::cluster(), 1);
        let d = SimDuration::from_millis(100);
        let n = 4000;
        let total: f64 = (0..n).map(|_| j.startup(d).as_millis_f64()).sum();
        let mean = total / f64::from(n);
        assert!((95.0..105.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn jitter_never_negative() {
        let mut j = Jitter::new(JitterModel::cluster(), 3);
        for _ in 0..1000 {
            assert!(j.io(SimDuration::from_millis(1)) > SimDuration::ZERO);
        }
    }
}
