//! The sandbox execution engine: a deterministic event-driven simulation of
//! threads executing CPU and blocking segments inside one sandbox.
//!
//! Three mechanisms interact here, and each maps to a first-class rule:
//!
//! 1. **The GIL** (`RuntimeKind::PseudoParallel`): at most one thread per
//!    process executes CPU work at a time. The holder is asked to drop the
//!    GIL after the switch interval when other threads are waiting, and the
//!    next holder is the runnable thread with the least accumulated CPU
//!    time (the CFS-style rule Algorithm 1 uses). Blocking segments release
//!    the GIL immediately (Fig. 2).
//! 2. **CPU capacity** (cgroups): if more threads hold a CPU-executing slot
//!    than the sandbox's CPU allocation, they progress at the fluid rate
//!    `cpus / runnable` — the generalised-processor-sharing approximation
//!    of the kernel scheduler.
//! 3. **True parallelism** (`RuntimeKind::TrueParallel`, Java / process
//!    pool): every runnable thread executes concurrently, subject only to
//!    rule 2.
//!
//! The engine is exact for piecewise-constant rates: it advances from event
//! to event (thread starts, segment completions, GIL switch expiries) and
//! never time-steps.

// Index loops are deliberate here: the engine mutates `threads[i]` while
// consulting `holder`/`quantum_end`, which iterator forms cannot express.
#![allow(clippy::needless_range_loop)]

use crate::scratch::{self, SimScratch};
use crate::span::{Span, SpanKind};
use chiron_model::{RuntimeKind, Segment, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One thread to execute: absolute start time plus its segment list
/// (already stretched by isolation overheads and jittered by the caller).
#[derive(Debug, Clone)]
pub struct ThreadTask {
    /// Process the thread belongs to (GIL domain).
    pub process: usize,
    /// When the thread exists and begins its first segment.
    pub start: SimTime,
    pub segments: Vec<Segment>,
}

/// Result of executing one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadResult {
    /// First instant the thread made progress (CPU granted or I/O issued).
    pub exec_start: SimTime,
    /// Instant the last segment finished.
    pub end: SimTime,
    /// Exec / Io / GilWait spans, ordered and non-overlapping.
    pub spans: Vec<Span>,
    /// Total CPU time consumed.
    pub cpu_time: SimDuration,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    NotStarted,
    /// Wants a CPU (and the GIL) but does not have it.
    Ready,
    /// Holds the GIL (pseudo) or a run slot (true) and burns CPU.
    Running,
    Io {
        until: SimTime,
    },
    Done,
}

#[derive(Debug)]
struct ThreadState {
    process: usize,
    seg_idx: usize,
    /// Remaining nanoseconds of work in the current segment.
    remaining: f64,
    phase: Phase,
    cpu_used: f64,
    exec_start: Option<SimTime>,
    end: SimTime,
    spans: Vec<Span>,
    open: Option<(SpanKind, SimTime)>,
}

/// The engine's per-call state, kept between calls so a hot loop of
/// `run_wrap`s reuses every buffer. All scheduling structures are
/// incremental replacements for what used to be full per-event scans:
///
/// * `ready` — one min-heap per process ordered by `(cpu_used, index)`.
///   A `Ready` thread's `cpu_used` is frozen (it only accumulates while
///   `Running`, and the only exit from `Ready` is being granted, which
///   pops its entry), so entries can never go stale and the heap's
///   minimum is exactly the CFS `min_by(cpu_used).then(index)` victim —
///   no re-sorting. IEEE-754 bits of a non-negative f64 order like the
///   float itself, so the key is the bit pattern.
/// * `wake` — min-heap of fixed future times: thread arrivals (`start`)
///   and I/O completions (`until`), both immutable once pushed.
/// * `running` + `run_pos` — the running set as a swap-remove list, so
///   the fluid rate is `cpus / running.len()` with no O(threads) count
///   and steps 5/6 only touch running threads.
/// * `ready_total` — total ready entries; when zero (e.g. 200 forked
///   single-thread processes) the preemption/grant/quantum scans are
///   skipped outright.
#[derive(Debug, Default)]
pub(crate) struct FluidScratch {
    threads: Vec<ThreadState>,
    holder: Vec<Option<usize>>,
    quantum_end: Vec<SimTime>,
    ready: Vec<BinaryHeap<Reverse<(u64, usize)>>>,
    ready_fifo: Vec<usize>,
    wake: BinaryHeap<Reverse<(SimTime, usize)>>,
    running: Vec<usize>,
    run_pos: Vec<usize>,
    results: Vec<ThreadResult>,
}

const NOT_RUNNING: usize = usize::MAX;

impl ThreadState {
    fn open_span(&mut self, kind: SpanKind, now: SimTime) {
        debug_assert!(self.open.is_none(), "span already open");
        self.open = Some((kind, now));
    }

    fn close_span(&mut self, now: SimTime) {
        if let Some((kind, start)) = self.open.take() {
            if now > start {
                self.spans.push(Span {
                    kind,
                    start,
                    end: now,
                });
            }
        }
    }
}

/// Executes `tasks` inside one sandbox with `cpus` CPUs.
///
/// `gil_interval` is the CPython switch interval; it is ignored under
/// `RuntimeKind::TrueParallel`.
pub fn execute_sandbox(
    tasks: &[ThreadTask],
    cpus: u32,
    runtime: RuntimeKind,
    gil_interval: SimDuration,
) -> Vec<ThreadResult> {
    let mut scratch = SimScratch::new();
    execute_sandbox_scratch(tasks, cpus, runtime, gil_interval, &mut scratch).to_vec()
}

/// [`execute_sandbox`] writing into `scratch`'s reusable buffers. The
/// returned slice lives until the next simulation call on the same
/// scratch; results are byte-identical to [`execute_sandbox`].
pub fn execute_sandbox_scratch<'a>(
    tasks: &[ThreadTask],
    cpus: u32,
    runtime: RuntimeKind,
    gil_interval: SimDuration,
    scratch: &'a mut SimScratch,
) -> &'a [ThreadResult] {
    assert!(cpus > 0, "sandbox needs at least one CPU");
    assert!(
        runtime == RuntimeKind::TrueParallel || !gil_interval.is_zero(),
        "GIL switch interval must be positive"
    );
    let span_pool = &mut scratch.spans;
    let FluidScratch {
        threads,
        holder,
        quantum_end,
        ready,
        ready_fifo,
        wake,
        running,
        run_pos,
        results,
    } = &mut scratch.fluid;

    // Recycle the previous call's span buffers and rebuild thread state.
    for r in results.drain(..) {
        span_pool.put(r.spans);
    }
    threads.clear();
    for t in tasks {
        threads.push(ThreadState {
            process: t.process,
            seg_idx: 0,
            remaining: 0.0,
            phase: Phase::NotStarted,
            cpu_used: 0.0,
            exec_start: None,
            end: t.start,
            spans: span_pool.take(),
            open: None,
        });
    }
    if tasks.is_empty() {
        return results;
    }

    let n_procs = tasks.iter().map(|t| t.process).max().unwrap_or(0) + 1;
    holder.clear();
    holder.resize(n_procs, None);
    quantum_end.clear();
    quantum_end.resize(n_procs, SimTime::FAR_FUTURE);
    for heap in ready.iter_mut() {
        heap.clear();
    }
    if ready.len() < n_procs {
        ready.resize_with(n_procs, BinaryHeap::new);
    }
    ready_fifo.clear();
    wake.clear();
    running.clear();
    run_pos.clear();
    run_pos.resize(tasks.len(), NOT_RUNNING);
    let mut ready_total: usize = 0;
    let mut events: u64 = 0;

    for (i, t) in tasks.iter().enumerate() {
        wake.push(Reverse((t.start, i)));
    }
    let Some(&Reverse((mut now, _))) = wake.peek() else {
        unreachable!("non-empty task list")
    };

    loop {
        events += 1;
        // -- 1. Activate arrivals and I/O completions at `now`. -----------
        // Wake times are immutable once pushed (thread starts are fixed,
        // an Io `until` never changes), so each heap entry matches exactly
        // one pending arrival or I/O episode of its thread.
        while let Some(&Reverse((due, i))) = wake.peek() {
            if due > now {
                break;
            }
            wake.pop();
            match threads[i].phase {
                Phase::NotStarted => {}
                Phase::Io { until } => {
                    debug_assert!(until <= now);
                    threads[i].close_span(now);
                    threads[i].seg_idx += 1;
                }
                _ => unreachable!("stale wake entry"),
            }
            enter_segment(
                &mut threads[i],
                i,
                &tasks[i].segments,
                now,
                runtime,
                ready,
                ready_fifo,
                &mut ready_total,
                wake,
            );
        }

        // -- 2. Preempt expired GIL quanta (pseudo-parallel only). --------
        // `ready_total == 0` (e.g. every process single-threaded) means no
        // waiter anywhere: nothing to preempt, grant or time out.
        if runtime == RuntimeKind::PseudoParallel && ready_total > 0 {
            for p in 0..n_procs {
                if let Some(h) = holder[p] {
                    if quantum_end[p] <= now && !ready[p].is_empty() {
                        // The holder is asked to drop the GIL (Fig. 2) and
                        // re-queues behind the CFS rule.
                        let t = &mut threads[h];
                        t.close_span(now);
                        t.phase = Phase::Ready;
                        t.open_span(SpanKind::GilWait, now);
                        ready[p].push(Reverse((t.cpu_used.to_bits(), h)));
                        ready_total += 1;
                        holder[p] = None;
                        remove_running(running, run_pos, h);
                    }
                }
            }
        }

        // -- 3. Grant the GIL / run slots. ---------------------------------
        match runtime {
            RuntimeKind::PseudoParallel => {
                if ready_total > 0 {
                    for p in 0..n_procs {
                        if holder[p].is_none() {
                            // CFS rule: the heap minimum is the ready thread
                            // with the least CPU time (ties to lowest index).
                            if let Some(Reverse((_, i))) = ready[p].pop() {
                                ready_total -= 1;
                                let t = &mut threads[i];
                                t.close_span(now);
                                t.phase = Phase::Running;
                                t.exec_start.get_or_insert(now);
                                t.open_span(SpanKind::Exec, now);
                                holder[p] = Some(i);
                                quantum_end[p] = now + gil_interval;
                                run_pos[i] = running.len();
                                running.push(i);
                            }
                        }
                    }
                }
            }
            RuntimeKind::TrueParallel => {
                for &i in ready_fifo.iter() {
                    let t = &mut threads[i];
                    t.close_span(now);
                    t.phase = Phase::Running;
                    t.exec_start.get_or_insert(now);
                    t.open_span(SpanKind::Exec, now);
                    run_pos[i] = running.len();
                    running.push(i);
                }
                ready_fifo.clear();
            }
        }

        // -- 4. Fluid rate for the running set. ----------------------------
        let rate = if running.is_empty() {
            0.0
        } else {
            (f64::from(cpus) / running.len() as f64).min(1.0)
        };

        // -- 5. Find the next event. ---------------------------------------
        let mut next = SimTime::FAR_FUTURE;
        if let Some(&Reverse((due, _))) = wake.peek() {
            next = next.min(due);
        }
        for &i in running.iter() {
            let ns = (threads[i].remaining / rate).ceil() as u64;
            next = next.min(now + SimDuration::from_nanos(ns));
        }
        if runtime == RuntimeKind::PseudoParallel && ready_total > 0 {
            for p in 0..n_procs {
                if holder[p].is_some() && !ready[p].is_empty() {
                    next = next.min(quantum_end[p]);
                }
            }
        }
        if next == SimTime::FAR_FUTURE {
            break; // every thread is Done
        }
        debug_assert!(next >= now, "time must advance monotonically");

        // -- 6. Advance running threads by `dt`. ----------------------------
        let dt = next.since(now).as_nanos() as f64;
        if dt > 0.0 && rate > 0.0 {
            for &i in running.iter() {
                let t = &mut threads[i];
                let progress = (dt * rate).min(t.remaining);
                t.remaining -= progress;
                t.cpu_used += progress;
            }
        }
        now = next;

        // -- 7. Complete finished CPU segments. -----------------------------
        let mut k = 0;
        while k < running.len() {
            let i = running[k];
            if threads[i].remaining > 0.5 {
                k += 1;
                continue;
            }
            threads[i].close_span(now);
            let p = threads[i].process;
            if holder[p] == Some(i) {
                holder[p] = None;
            }
            running.swap_remove(k);
            run_pos[i] = NOT_RUNNING;
            if let Some(&j) = running.get(k) {
                run_pos[j] = k;
            }
            threads[i].seg_idx += 1;
            // A CPU segment followed directly by another CPU segment
            // keeps the GIL: re-grant immediately in the next loop
            // iteration (the thread is Ready with min cpu time unless a
            // starved sibling takes over — which is exactly CFS).
            enter_segment(
                &mut threads[i],
                i,
                &tasks[i].segments,
                now,
                runtime,
                ready,
                ready_fifo,
                &mut ready_total,
                wake,
            );
        }
    }

    scratch::count_events(events);
    for t in threads.drain(..) {
        debug_assert_eq!(t.phase, Phase::Done);
        results.push(ThreadResult {
            exec_start: t.exec_start.unwrap_or(t.end),
            end: t.end,
            spans: t.spans,
            cpu_time: SimDuration::from_nanos(t.cpu_used.round() as u64),
        });
    }
    results
}

/// Unlinks thread `i` from the running list in O(1).
fn remove_running(running: &mut Vec<usize>, run_pos: &mut [usize], i: usize) {
    let pos = run_pos[i];
    debug_assert_ne!(pos, NOT_RUNNING);
    running.swap_remove(pos);
    run_pos[i] = NOT_RUNNING;
    if let Some(&j) = running.get(pos) {
        run_pos[j] = pos;
    }
}

/// Starts the thread's current segment at `now` (or finishes the thread),
/// skipping zero-length segments, and registers the thread with the
/// scheduler structure its new phase belongs to.
#[allow(clippy::too_many_arguments)]
fn enter_segment(
    t: &mut ThreadState,
    i: usize,
    segments: &[Segment],
    now: SimTime,
    runtime: RuntimeKind,
    ready: &mut [BinaryHeap<Reverse<(u64, usize)>>],
    ready_fifo: &mut Vec<usize>,
    ready_total: &mut usize,
    wake: &mut BinaryHeap<Reverse<(SimTime, usize)>>,
) {
    loop {
        match segments.get(t.seg_idx) {
            None => {
                t.phase = Phase::Done;
                t.end = now;
                return;
            }
            Some(&Segment::Cpu(d)) => {
                if d.is_zero() {
                    t.seg_idx += 1;
                    continue;
                }
                t.remaining = d.as_nanos() as f64;
                t.phase = Phase::Ready;
                t.open_span(SpanKind::GilWait, now);
                match runtime {
                    RuntimeKind::PseudoParallel => {
                        ready[t.process].push(Reverse((t.cpu_used.to_bits(), i)));
                        *ready_total += 1;
                    }
                    RuntimeKind::TrueParallel => ready_fifo.push(i),
                }
                return;
            }
            Some(&Segment::Block { dur, .. }) => {
                t.exec_start.get_or_insert(now);
                if dur.is_zero() {
                    t.seg_idx += 1;
                    continue;
                }
                t.phase = Phase::Io { until: now + dur };
                t.open_span(SpanKind::Io, now);
                wake.push(Reverse((now + dur, i)));
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reference engine
// ---------------------------------------------------------------------------

/// Thread state of the reference engine, which re-scans every thread per
/// event and allocates all buffers per call.
#[derive(Debug)]
struct RefThreadState {
    process: usize,
    start: SimTime,
    segments: Vec<Segment>,
    seg_idx: usize,
    remaining: f64,
    phase: Phase,
    cpu_used: f64,
    exec_start: Option<SimTime>,
    end: SimTime,
    spans: Vec<Span>,
    open: Option<(SpanKind, SimTime)>,
}

impl RefThreadState {
    fn open_span(&mut self, kind: SpanKind, now: SimTime) {
        debug_assert!(self.open.is_none(), "span already open");
        self.open = Some((kind, now));
    }

    fn close_span(&mut self, now: SimTime) {
        if let Some((kind, start)) = self.open.take() {
            if now > start {
                self.spans.push(Span {
                    kind,
                    start,
                    end: now,
                });
            }
        }
    }
}

/// The pre-optimisation fluid engine, retained verbatim as a reference:
/// `figures -- perf-eval` measures the incremental engine against it, and
/// the property tests assert both produce byte-identical results. Unlike
/// [`execute_sandbox_scratch`] it allocates every buffer per call and
/// re-scans all threads at every event.
pub fn execute_sandbox_reference(
    tasks: &[ThreadTask],
    cpus: u32,
    runtime: RuntimeKind,
    gil_interval: SimDuration,
) -> Vec<ThreadResult> {
    assert!(cpus > 0, "sandbox needs at least one CPU");
    assert!(
        runtime == RuntimeKind::TrueParallel || !gil_interval.is_zero(),
        "GIL switch interval must be positive"
    );
    let mut threads: Vec<RefThreadState> = tasks
        .iter()
        .map(|t| RefThreadState {
            process: t.process,
            start: t.start,
            segments: t.segments.clone(),
            seg_idx: 0,
            remaining: 0.0,
            phase: Phase::NotStarted,
            cpu_used: 0.0,
            exec_start: None,
            end: t.start,
            spans: Vec::new(),
            open: None,
        })
        .collect();
    if threads.is_empty() {
        return Vec::new();
    }

    let n_procs = tasks.iter().map(|t| t.process).max().unwrap_or(0) + 1;
    // Per process: the current GIL holder and when its quantum expires.
    let mut holder: Vec<Option<usize>> = vec![None; n_procs];
    let mut quantum_end: Vec<SimTime> = vec![SimTime::FAR_FUTURE; n_procs];

    let mut now = threads.iter().map(|t| t.start).min().expect("non-empty");

    loop {
        // -- 1. Activate arrivals and I/O completions at `now`. -----------
        for i in 0..threads.len() {
            if threads[i].phase == Phase::NotStarted && threads[i].start <= now {
                ref_enter_segment(&mut threads[i], now);
            }
            if let Phase::Io { until } = threads[i].phase {
                if until <= now {
                    threads[i].close_span(now);
                    ref_advance_segment(&mut threads[i], now);
                }
            }
        }

        // -- 2. Preempt expired GIL quanta (pseudo-parallel only). --------
        if runtime == RuntimeKind::PseudoParallel {
            for p in 0..n_procs {
                if let Some(h) = holder[p] {
                    let waiter_exists = threads
                        .iter()
                        .enumerate()
                        .any(|(i, t)| i != h && t.process == p && t.phase == Phase::Ready);
                    if quantum_end[p] <= now && waiter_exists {
                        // The holder is asked to drop the GIL (Fig. 2).
                        threads[h].close_span(now);
                        threads[h].phase = Phase::Ready;
                        threads[h].open_span(SpanKind::GilWait, now);
                        holder[p] = None;
                    }
                }
            }
        }

        // -- 3. Grant the GIL / run slots. ---------------------------------
        match runtime {
            RuntimeKind::PseudoParallel => {
                for p in 0..n_procs {
                    let holder_running = holder[p]
                        .map(|h| threads[h].phase == Phase::Running)
                        .unwrap_or(false);
                    if !holder_running {
                        holder[p] = None;
                        // CFS rule: the ready thread with minimum CPU time.
                        let next = threads
                            .iter()
                            .enumerate()
                            .filter(|(_, t)| t.process == p && t.phase == Phase::Ready)
                            .min_by(|(i, a), (j, b)| {
                                a.cpu_used
                                    .partial_cmp(&b.cpu_used)
                                    .expect("cpu time is finite")
                                    .then(i.cmp(j))
                            })
                            .map(|(i, _)| i);
                        if let Some(i) = next {
                            threads[i].close_span(now);
                            threads[i].phase = Phase::Running;
                            threads[i].exec_start.get_or_insert(now);
                            threads[i].open_span(SpanKind::Exec, now);
                            holder[p] = Some(i);
                            quantum_end[p] = now + gil_interval;
                        }
                    }
                }
            }
            RuntimeKind::TrueParallel => {
                for t in threads.iter_mut() {
                    if t.phase == Phase::Ready {
                        t.close_span(now);
                        t.phase = Phase::Running;
                        t.exec_start.get_or_insert(now);
                        t.open_span(SpanKind::Exec, now);
                    }
                }
            }
        }

        // -- 4. Fluid rate for the running set. ----------------------------
        let running = threads.iter().filter(|t| t.phase == Phase::Running).count();
        let rate = if running == 0 {
            0.0
        } else {
            (f64::from(cpus) / running as f64).min(1.0)
        };

        // -- 5. Find the next event. ---------------------------------------
        let mut next = SimTime::FAR_FUTURE;
        for t in &threads {
            match t.phase {
                Phase::NotStarted => next = next.min(t.start),
                Phase::Io { until } => next = next.min(until),
                Phase::Running => {
                    let ns = (t.remaining / rate).ceil() as u64;
                    next = next.min(now + SimDuration::from_nanos(ns));
                }
                _ => {}
            }
        }
        if runtime == RuntimeKind::PseudoParallel {
            for p in 0..n_procs {
                if let Some(h) = holder[p] {
                    let waiter_exists = threads
                        .iter()
                        .enumerate()
                        .any(|(i, t)| i != h && t.process == p && t.phase == Phase::Ready);
                    if waiter_exists {
                        next = next.min(quantum_end[p]);
                    }
                }
            }
        }
        if next == SimTime::FAR_FUTURE {
            break; // every thread is Done
        }
        debug_assert!(next >= now, "time must advance monotonically");

        // -- 6. Advance running threads by `dt`. ----------------------------
        let dt = next.since(now).as_nanos() as f64;
        if dt > 0.0 && rate > 0.0 {
            for t in threads.iter_mut() {
                if t.phase == Phase::Running {
                    let progress = (dt * rate).min(t.remaining);
                    t.remaining -= progress;
                    t.cpu_used += progress;
                }
            }
        }
        now = next;

        // -- 7. Complete finished CPU segments. -----------------------------
        for i in 0..threads.len() {
            if threads[i].phase == Phase::Running && threads[i].remaining <= 0.5 {
                threads[i].close_span(now);
                if let Some(h) = holder.get_mut(threads[i].process) {
                    if *h == Some(i) {
                        *h = None;
                    }
                }
                ref_advance_segment(&mut threads[i], now);
            }
        }
    }

    threads
        .into_iter()
        .map(|t| {
            debug_assert_eq!(t.phase, Phase::Done);
            ThreadResult {
                exec_start: t.exec_start.unwrap_or(t.end),
                end: t.end,
                spans: t.spans,
                cpu_time: SimDuration::from_nanos(t.cpu_used.round() as u64),
            }
        })
        .collect()
}

/// Starts the thread's current segment at `now` (or finishes the thread).
fn ref_enter_segment(t: &mut RefThreadState, now: SimTime) {
    match t.segments.get(t.seg_idx) {
        None => {
            t.phase = Phase::Done;
            t.end = now;
        }
        Some(&Segment::Cpu(d)) => {
            if d.is_zero() {
                t.seg_idx += 1;
                ref_enter_segment(t, now);
                return;
            }
            t.remaining = d.as_nanos() as f64;
            t.phase = Phase::Ready;
            t.open_span(SpanKind::GilWait, now);
        }
        Some(&Segment::Block { dur, .. }) => {
            t.exec_start.get_or_insert(now);
            if dur.is_zero() {
                t.seg_idx += 1;
                ref_enter_segment(t, now);
                return;
            }
            t.phase = Phase::Io { until: now + dur };
            t.open_span(SpanKind::Io, now);
        }
    }
}

/// Moves to the next segment after the current one completed at `now`.
fn ref_advance_segment(t: &mut RefThreadState, now: SimTime) {
    t.seg_idx += 1;
    ref_enter_segment(t, now);
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::SyscallKind;

    const GIL: SimDuration = SimDuration::from_millis(5);

    fn cpu(ms: u64) -> Segment {
        Segment::cpu_ms(ms)
    }

    fn io(ms: u64) -> Segment {
        Segment::Block {
            kind: SyscallKind::NetIo,
            dur: SimDuration::from_millis(ms),
        }
    }

    fn task(process: usize, start_ms: u64, segments: Vec<Segment>) -> ThreadTask {
        ThreadTask {
            process,
            start: SimTime::from_nanos(start_ms * 1_000_000),
            segments,
        }
    }

    fn end_ms(r: &ThreadResult) -> f64 {
        r.end.as_millis_f64()
    }

    #[test]
    fn single_thread_runs_solo() {
        let res = execute_sandbox(
            &[task(0, 0, vec![cpu(10), io(5), cpu(5)])],
            1,
            RuntimeKind::PseudoParallel,
            GIL,
        );
        assert_eq!(end_ms(&res[0]), 20.0);
        assert_eq!(res[0].cpu_time.as_millis_f64(), 15.0);
        assert_eq!(res[0].exec_start, SimTime::ZERO);
    }

    #[test]
    fn gil_serialises_two_cpu_threads() {
        // Two 10ms CPU threads, one process, 4 CPUs: the GIL forces ~20ms.
        let res = execute_sandbox(
            &[task(0, 0, vec![cpu(10)]), task(0, 0, vec![cpu(10)])],
            4,
            RuntimeKind::PseudoParallel,
            GIL,
        );
        let finish = res.iter().map(end_ms).fold(0.0, f64::max);
        assert_eq!(finish, 20.0);
        // The first thread is preempted at every 5ms quantum, so both
        // interleave rather than run-to-completion.
        let first_done = res.iter().map(end_ms).fold(f64::MAX, f64::min);
        assert!(first_done >= 15.0, "interleaving expected: {first_done}");
    }

    #[test]
    fn true_parallelism_uses_both_cpus() {
        let res = execute_sandbox(
            &[task(0, 0, vec![cpu(10)]), task(0, 0, vec![cpu(10)])],
            2,
            RuntimeKind::TrueParallel,
            GIL,
        );
        assert!(res.iter().all(|r| end_ms(r) == 10.0));
    }

    #[test]
    fn separate_processes_run_in_parallel_under_gil() {
        // Two processes, one thread each: the GIL does not serialise them.
        let res = execute_sandbox(
            &[task(0, 0, vec![cpu(10)]), task(1, 0, vec![cpu(10)])],
            2,
            RuntimeKind::PseudoParallel,
            GIL,
        );
        assert!(res.iter().all(|r| end_ms(r) == 10.0));
    }

    #[test]
    fn cpu_cap_slows_parallel_processes() {
        // Two processes on one CPU: fluid sharing halves each one's rate.
        let res = execute_sandbox(
            &[task(0, 0, vec![cpu(10)]), task(1, 0, vec![cpu(10)])],
            1,
            RuntimeKind::PseudoParallel,
            GIL,
        );
        assert!(res.iter().all(|r| end_ms(r) == 20.0));
    }

    #[test]
    fn io_overlaps_with_gil_holder() {
        // Fig. 2's key property: a blocked thread does not hold the GIL, so
        // CPU work and I/O overlap fully.
        let res = execute_sandbox(
            &[task(0, 0, vec![io(20)]), task(0, 0, vec![cpu(20)])],
            1,
            RuntimeKind::PseudoParallel,
            GIL,
        );
        assert_eq!(end_ms(&res[0]), 20.0);
        assert_eq!(end_ms(&res[1]), 20.0);
    }

    #[test]
    fn gil_wait_is_recorded() {
        let res = execute_sandbox(
            &[task(0, 0, vec![cpu(10)]), task(0, 0, vec![cpu(10)])],
            4,
            RuntimeKind::PseudoParallel,
            GIL,
        );
        let wait: f64 = res
            .iter()
            .map(|r| {
                r.spans
                    .iter()
                    .filter(|s| s.kind == SpanKind::GilWait)
                    .map(|s| s.duration().as_millis_f64())
                    .sum::<f64>()
            })
            .sum();
        // Makespan 20ms: A waits 5ms (one preemption), B waits 10ms
        // (initial grant + A's final quantum) ⇒ 15ms total GIL wait.
        assert!((wait - 15.0).abs() < 0.1, "total GIL wait: {wait}");
    }

    #[test]
    fn staggered_starts_respected() {
        let res = execute_sandbox(
            &[task(0, 0, vec![cpu(5)]), task(1, 7, vec![cpu(5)])],
            2,
            RuntimeKind::PseudoParallel,
            GIL,
        );
        assert_eq!(end_ms(&res[0]), 5.0);
        assert_eq!(res[1].exec_start.as_millis_f64(), 7.0);
        assert_eq!(end_ms(&res[1]), 12.0);
    }

    #[test]
    fn cfs_picks_least_served_thread() {
        // Thread A: 5ms CPU, then IO, then 5ms CPU. Thread B: 20ms CPU.
        // After A's IO completes, A has less CPU time than B, so A gets the
        // GIL at the next switch point.
        let res = execute_sandbox(
            &[
                task(0, 0, vec![cpu(5), io(3), cpu(5)]),
                task(0, 0, vec![cpu(20)]),
            ],
            1,
            RuntimeKind::PseudoParallel,
            GIL,
        );
        // A must not be starved until B finishes (which would be 25+).
        assert!(end_ms(&res[0]) < 25.0, "A finished at {}", end_ms(&res[0]));
        let total = res.iter().map(end_ms).fold(0.0, f64::max);
        assert_eq!(total, 30.0); // 30ms total CPU, fully serialised.
    }

    #[test]
    fn spans_are_well_formed() {
        let res = execute_sandbox(
            &[
                task(0, 0, vec![cpu(7), io(2), cpu(3)]),
                task(0, 1, vec![cpu(4), io(1)]),
                task(1, 2, vec![io(5), cpu(6)]),
            ],
            2,
            RuntimeKind::PseudoParallel,
            GIL,
        );
        for r in &res {
            let mut cursor = SimTime::ZERO;
            for s in &r.spans {
                assert!(s.end >= s.start);
                assert!(s.start >= cursor, "overlapping spans");
                cursor = s.end;
            }
            let exec: f64 = r
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::Exec)
                .map(|s| s.duration().as_millis_f64())
                .sum();
            assert!((exec - r.cpu_time.as_millis_f64()).abs() < 0.01);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(execute_sandbox(&[], 1, RuntimeKind::PseudoParallel, GIL).is_empty());
    }

    #[test]
    fn zero_length_segments_skipped() {
        let res = execute_sandbox(
            &[task(0, 0, vec![cpu(0), io(0), cpu(5)])],
            1,
            RuntimeKind::PseudoParallel,
            GIL,
        );
        assert_eq!(end_ms(&res[0]), 5.0);
    }

    #[test]
    fn fluid_rate_partial_contention() {
        // 3 truly parallel threads on 2 CPUs: rate 2/3 each, 10ms of work
        // ⇒ 15ms completion for all three.
        let res = execute_sandbox(
            &[
                task(0, 0, vec![cpu(10)]),
                task(1, 0, vec![cpu(10)]),
                task(2, 0, vec![cpu(10)]),
            ],
            2,
            RuntimeKind::TrueParallel,
            GIL,
        );
        for r in &res {
            assert!((end_ms(r) - 15.0).abs() < 0.001, "end {}", end_ms(r));
        }
    }
}
