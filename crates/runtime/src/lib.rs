//! # chiron-runtime
//!
//! The virtual serverless platform of the Chiron reproduction: a
//! deterministic event-driven simulation of sandboxes, processes, threads,
//! the CPython GIL, fork block/startup semantics, RPC/IPC plumbing and
//! object-store transfers — plus a real-OS-thread executor (`rt`) that runs
//! wraps as actual threads with an emulated GIL to cross-check the model.

#![warn(missing_debug_implementations)]
// `deny` rather than `forbid`: the lock-free SPSC ring (`rt::ring`) is the
// one module allowed to drop to unsafe for its wrap-aware zero-copy
// slices; everything else stays checked.
#![deny(unsafe_code)]

pub mod export;
pub mod fluid;
pub mod jitter;
pub mod platform;
pub mod rt;
pub mod scratch;
pub mod span;

pub use export::to_chrome_trace;
pub use fluid::{execute_sandbox, execute_sandbox_reference, ThreadResult, ThreadTask};
pub use platform::{reference_engine, set_reference_engine, VirtualPlatform};
pub use rt::ring::{crc32, measure_fit, ring, Consumer, Producer, RingError, RingFit};
pub use rt::{run_realtime, run_realtime_wired, RtEdge, RtResult, RtTask};
pub use scratch::{alloc_stats, reset_alloc_stats, AllocStats, SimScratch};
pub use span::{FunctionTimeline, RequestOutcome, Span, SpanKind};
