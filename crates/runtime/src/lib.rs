//! # chiron-runtime
//!
//! The virtual serverless platform of the Chiron reproduction: a
//! deterministic event-driven simulation of sandboxes, processes, threads,
//! the CPython GIL, fork block/startup semantics, RPC/IPC plumbing and
//! object-store transfers — plus a real-OS-thread executor (`rt`) that runs
//! wraps as actual threads with an emulated GIL to cross-check the model.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod export;
pub mod fluid;
pub mod jitter;
pub mod platform;
pub mod rt;
pub mod span;

pub use export::to_chrome_trace;
pub use fluid::{execute_sandbox, ThreadResult, ThreadTask};
pub use platform::VirtualPlatform;
pub use rt::{run_realtime, RtResult, RtTask};
pub use span::{FunctionTimeline, RequestOutcome, Span, SpanKind};
