//! Reusable per-worker simulation buffers.
//!
//! Every `run_wrap` used to allocate its thread-state, span and timeline
//! vectors from scratch — millions of short-lived allocations over a full
//! figure regeneration. [`SimScratch`] keeps those buffers alive between
//! requests: one scratch per sweep worker (or the thread-local default),
//! never shared, so reuse is free of synchronisation. Buffers are always
//! cleared before reuse, which is why a scratch-backed run is
//! byte-identical to a fresh-allocation run (the property tests check
//! exactly that).
//!
//! The module also counts pool traffic globally — as
//! [`chiron_obs`]-registered counters, so `figures -- obs` sees them in
//! the metrics snapshot and `figures -- perf-eval` can report first-run
//! vs steady-state allocation counts for the DES hot loop. All accesses
//! are `Relaxed`: these are statistics, not synchronisation, and their
//! totals are sums of per-event increments (deterministic for a
//! deterministic workload regardless of interleaving).

use crate::span::Span;
use chiron_model::Segment;
use chiron_obs::StaticCounter;

static BUFFER_ALLOCS: StaticCounter = StaticCounter::new("runtime.scratch.buffer_allocs");
static BUFFER_REUSES: StaticCounter = StaticCounter::new("runtime.scratch.buffer_reuses");
static SIM_EVENTS: StaticCounter = StaticCounter::new("runtime.fluid.sim_events");

/// Global pool-traffic counters for the DES hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Buffers newly allocated because no pooled one was available.
    pub buffer_allocs: u64,
    /// Buffers served from a scratch pool.
    pub buffer_reuses: u64,
    /// Fluid-simulator event-loop iterations.
    pub events: u64,
}

pub fn reset_alloc_stats() {
    BUFFER_ALLOCS.reset();
    BUFFER_REUSES.reset();
    SIM_EVENTS.reset();
}

pub fn alloc_stats() -> AllocStats {
    AllocStats {
        buffer_allocs: BUFFER_ALLOCS.get(),
        buffer_reuses: BUFFER_REUSES.get(),
        events: SIM_EVENTS.get(),
    }
}

pub(crate) fn count_events(n: u64) {
    SIM_EVENTS.add(n);
}

/// A pool of recycled `Vec<T>` buffers; `take` hands back a cleared buffer
/// with its old capacity intact.
#[derive(Debug)]
pub(crate) struct Pool<T>(Vec<Vec<T>>);

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool(Vec::new())
    }
}

impl<T> Pool<T> {
    pub(crate) fn take(&mut self) -> Vec<T> {
        match self.0.pop() {
            Some(mut buf) => {
                buf.clear();
                BUFFER_REUSES.incr();
                buf
            }
            None => {
                BUFFER_ALLOCS.incr();
                Vec::new()
            }
        }
    }

    pub(crate) fn put(&mut self, buf: Vec<T>) {
        self.0.push(buf);
    }
}

/// Reusable buffers for one simulation worker. Not shared between
/// workers: each sweep worker (or the thread-local default) owns its own,
/// mirroring `chiron-predict`'s `PredictScratch`.
#[derive(Debug, Default)]
pub struct SimScratch {
    pub(crate) spans: Pool<Span>,
    pub(crate) segs: Pool<Segment>,
    pub(crate) fluid: crate::fluid::FluidScratch,
    pub(crate) wrap: crate::platform::WrapScratch,
}

impl SimScratch {
    pub fn new() -> Self {
        SimScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_recycle_buffers() {
        let mut pool: Pool<Span> = Pool::default();
        let mut spans = pool.take();
        spans.reserve(16);
        let cap = spans.capacity();
        pool.put(spans);
        let again = pool.take();
        assert!(again.is_empty());
        assert!(again.capacity() >= cap);
    }

    #[test]
    fn stats_track_allocs_and_reuses() {
        reset_alloc_stats();
        let mut pool: Pool<Span> = Pool::default();
        let buf = pool.take();
        pool.put(buf);
        let _ = pool.take();
        let stats = alloc_stats();
        assert!(stats.buffer_allocs >= 1);
        assert!(stats.buffer_reuses >= 1);
    }
}
