//! Reusable per-worker simulation buffers.
//!
//! Every `run_wrap` used to allocate its thread-state, span and timeline
//! vectors from scratch — millions of short-lived allocations over a full
//! figure regeneration. [`SimScratch`] keeps those buffers alive between
//! requests: one scratch per sweep worker (or the thread-local default),
//! never shared, so reuse is free of synchronisation. Buffers are always
//! cleared before reuse, which is why a scratch-backed run is
//! byte-identical to a fresh-allocation run (the property tests check
//! exactly that).
//!
//! The module also counts pool traffic globally so `figures -- perf-eval`
//! can report first-run vs steady-state allocation counts for the DES hot
//! loop.

use crate::span::Span;
use chiron_model::Segment;
use std::sync::atomic::{AtomicU64, Ordering};

static BUFFER_ALLOCS: AtomicU64 = AtomicU64::new(0);
static BUFFER_REUSES: AtomicU64 = AtomicU64::new(0);
static SIM_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Global pool-traffic counters for the DES hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Buffers newly allocated because no pooled one was available.
    pub buffer_allocs: u64,
    /// Buffers served from a scratch pool.
    pub buffer_reuses: u64,
    /// Fluid-simulator event-loop iterations.
    pub events: u64,
}

pub fn reset_alloc_stats() {
    BUFFER_ALLOCS.store(0, Ordering::SeqCst);
    BUFFER_REUSES.store(0, Ordering::SeqCst);
    SIM_EVENTS.store(0, Ordering::SeqCst);
}

pub fn alloc_stats() -> AllocStats {
    AllocStats {
        buffer_allocs: BUFFER_ALLOCS.load(Ordering::SeqCst),
        buffer_reuses: BUFFER_REUSES.load(Ordering::SeqCst),
        events: SIM_EVENTS.load(Ordering::SeqCst),
    }
}

pub(crate) fn count_events(n: u64) {
    SIM_EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// A pool of recycled `Vec<T>` buffers; `take` hands back a cleared buffer
/// with its old capacity intact.
#[derive(Debug)]
pub(crate) struct Pool<T>(Vec<Vec<T>>);

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool(Vec::new())
    }
}

impl<T> Pool<T> {
    pub(crate) fn take(&mut self) -> Vec<T> {
        match self.0.pop() {
            Some(mut buf) => {
                buf.clear();
                BUFFER_REUSES.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                BUFFER_ALLOCS.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    pub(crate) fn put(&mut self, buf: Vec<T>) {
        self.0.push(buf);
    }
}

/// Reusable buffers for one simulation worker. Not shared between
/// workers: each sweep worker (or the thread-local default) owns its own,
/// mirroring `chiron-predict`'s `PredictScratch`.
#[derive(Debug, Default)]
pub struct SimScratch {
    pub(crate) spans: Pool<Span>,
    pub(crate) segs: Pool<Segment>,
    pub(crate) fluid: crate::fluid::FluidScratch,
    pub(crate) wrap: crate::platform::WrapScratch,
}

impl SimScratch {
    pub fn new() -> Self {
        SimScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_recycle_buffers() {
        let mut pool: Pool<Span> = Pool::default();
        let mut spans = pool.take();
        spans.reserve(16);
        let cap = spans.capacity();
        pool.put(spans);
        let again = pool.take();
        assert!(again.is_empty());
        assert!(again.capacity() >= cap);
    }

    #[test]
    fn stats_track_allocs_and_reuses() {
        reset_alloc_stats();
        let mut pool: Pool<Span> = Pool::default();
        let buf = pool.take();
        pool.put(buf);
        let _ = pool.take();
        let stats = alloc_stats();
        assert!(stats.buffer_allocs >= 1);
        assert!(stats.buffer_reuses >= 1);
    }
}
