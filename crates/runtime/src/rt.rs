//! Real-OS-thread execution of wrap workloads with an emulated GIL.
//!
//! The fluid simulator (`crate::fluid`) *models* GIL scheduling; this module
//! *performs* it: each function runs on a real thread, CPU segments spin on
//! the core while holding a per-process interpreter lock, blocking segments
//! sleep with the lock released (exactly CPython's behaviour in Fig. 2),
//! and the holder yields the lock at the switch interval. It exists to
//! cross-check the simulator's pseudo-parallelism model against actual OS
//! scheduling, and to give the examples something that really executes.

use chiron_model::{RuntimeKind, Segment, SimDuration};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One function to execute on a real thread.
#[derive(Debug, Clone)]
pub struct RtTask {
    /// GIL domain: tasks sharing a `process` contend for one lock.
    pub process: usize,
    pub segments: Vec<Segment>,
}

/// Wall-clock outcome of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtResult {
    /// Start offset relative to the batch start.
    pub started: Duration,
    /// Completion offset relative to the batch start.
    pub finished: Duration,
}

impl RtResult {
    pub fn latency(&self) -> Duration {
        self.finished - self.started
    }
}

/// An emulated global interpreter lock with cooperative switch points.
#[derive(Debug, Default)]
struct Gil {
    state: Mutex<bool>,
    cv: Condvar,
}

impl Gil {
    fn acquire(&self) {
        let mut held = self.state.lock();
        while *held {
            self.cv.wait(&mut held);
        }
        *held = true;
    }

    fn release(&self) {
        *self.state.lock() = false;
        self.cv.notify_one();
    }
}

fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

fn to_std(d: SimDuration) -> Duration {
    Duration::from_nanos(d.as_nanos())
}

/// Executes `tasks` on real OS threads.
///
/// Under [`RuntimeKind::PseudoParallel`], tasks of the same `process` share
/// an emulated GIL: CPU bursts run with the lock held and yield it every
/// `switch_interval`; blocking segments sleep with the lock released. Under
/// [`RuntimeKind::TrueParallel`] every thread runs freely.
pub fn run_realtime(
    tasks: &[RtTask],
    runtime: RuntimeKind,
    switch_interval: SimDuration,
) -> Vec<RtResult> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let n_procs = tasks.iter().map(|t| t.process).max().unwrap_or(0) + 1;
    let gils: Vec<Arc<Gil>> = (0..n_procs).map(|_| Arc::new(Gil::default())).collect();
    let quantum = to_std(switch_interval);
    let batch_start = Instant::now();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(tasks.len());
        for task in tasks {
            let gil = gils[task.process].clone();
            let segments = task.segments.clone();
            handles.push(scope.spawn(move || {
                let started = batch_start.elapsed();
                for seg in segments {
                    match seg {
                        Segment::Cpu(d) => {
                            let mut remaining = to_std(d);
                            while remaining > Duration::ZERO {
                                let slice = remaining.min(quantum);
                                if runtime == RuntimeKind::PseudoParallel {
                                    gil.acquire();
                                    spin_for(slice);
                                    gil.release();
                                } else {
                                    spin_for(slice);
                                }
                                remaining -= slice;
                            }
                        }
                        Segment::Block { dur, .. } => {
                            // The GIL is dropped during blocking ops.
                            std::thread::sleep(to_std(dur));
                        }
                    }
                }
                RtResult {
                    started,
                    finished: batch_start.elapsed(),
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rt worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::SyscallKind;

    const SWITCH: SimDuration = SimDuration::from_millis(5);

    fn cpu(ms: u64) -> Segment {
        Segment::cpu_ms(ms)
    }

    fn io(ms: u64) -> Segment {
        Segment::Block {
            kind: SyscallKind::Sleep,
            dur: SimDuration::from_millis(ms),
        }
    }

    fn makespan(results: &[RtResult]) -> Duration {
        results.iter().map(|r| r.finished).max().unwrap()
    }

    fn cores() -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }

    #[test]
    fn gil_serialises_cpu_threads() {
        let tasks = vec![
            RtTask {
                process: 0,
                segments: vec![cpu(30)],
            },
            RtTask {
                process: 0,
                segments: vec![cpu(30)],
            },
        ];
        let results = run_realtime(&tasks, RuntimeKind::PseudoParallel, SWITCH);
        let total = makespan(&results);
        // 60ms of CPU serialised by the GIL: demand clearly more wall time
        // than parallel execution would take.
        assert!(total >= Duration::from_millis(55), "makespan {total:?}");
    }

    #[test]
    fn true_parallelism_overlaps_cpu() {
        if cores() < 2 {
            return; // cannot demonstrate parallelism on one core
        }
        let tasks = vec![
            RtTask {
                process: 0,
                segments: vec![cpu(40)],
            },
            RtTask {
                process: 0,
                segments: vec![cpu(40)],
            },
        ];
        let results = run_realtime(&tasks, RuntimeKind::TrueParallel, SWITCH);
        let total = makespan(&results);
        assert!(total < Duration::from_millis(70), "makespan {total:?}");
    }

    #[test]
    fn io_releases_the_gil() {
        // One thread sleeps 40ms, the other burns 40ms CPU: with the GIL
        // dropped during blocking ops they overlap.
        let tasks = vec![
            RtTask {
                process: 0,
                segments: vec![io(40)],
            },
            RtTask {
                process: 0,
                segments: vec![cpu(40)],
            },
        ];
        let results = run_realtime(&tasks, RuntimeKind::PseudoParallel, SWITCH);
        let total = makespan(&results);
        assert!(total < Duration::from_millis(70), "makespan {total:?}");
    }

    #[test]
    fn separate_processes_do_not_share_a_gil() {
        if cores() < 2 {
            return;
        }
        let tasks = vec![
            RtTask {
                process: 0,
                segments: vec![cpu(40)],
            },
            RtTask {
                process: 1,
                segments: vec![cpu(40)],
            },
        ];
        let results = run_realtime(&tasks, RuntimeKind::PseudoParallel, SWITCH);
        let total = makespan(&results);
        assert!(total < Duration::from_millis(70), "makespan {total:?}");
    }

    #[test]
    fn empty_input() {
        assert!(run_realtime(&[], RuntimeKind::PseudoParallel, SWITCH).is_empty());
    }

    #[test]
    fn latency_accessor() {
        let r = RtResult {
            started: Duration::from_millis(2),
            finished: Duration::from_millis(12),
        };
        assert_eq!(r.latency(), Duration::from_millis(10));
    }
}
