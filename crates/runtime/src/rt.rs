//! Real-OS-thread execution of wrap workloads with an emulated GIL.
//!
//! The fluid simulator (`crate::fluid`) *models* GIL scheduling; this module
//! *performs* it: each function runs on a real thread, CPU segments spin on
//! the core while holding a per-process interpreter lock, blocking segments
//! sleep with the lock released (exactly CPython's behaviour in Fig. 2),
//! and the holder yields the lock at the switch interval. It exists to
//! cross-check the simulator's pseudo-parallelism model against actual OS
//! scheduling, and to give the examples something that really executes.

use chiron_model::{RuntimeKind, Segment, SimDuration};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[allow(unsafe_code)]
pub mod ring;

/// One function to execute on a real thread.
#[derive(Debug, Clone)]
pub struct RtTask {
    /// GIL domain: tasks sharing a `process` contend for one lock.
    pub process: usize,
    pub segments: Vec<Segment>,
}

/// A wrap-to-wrap payload handoff between two tasks of a wired batch:
/// `from` pushes `bytes` through a dedicated SPSC ring after its segments
/// finish, and `to` pops (and CRC-validates) them before its segments run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtEdge {
    /// Index of the producing task in the batch.
    pub from: usize,
    /// Index of the consuming task in the batch.
    pub to: usize,
    /// Payload size pushed through the ring.
    pub bytes: usize,
}

/// Wall-clock outcome of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtResult {
    /// Start offset relative to the batch start.
    pub started: Duration,
    /// Completion offset relative to the batch start.
    pub finished: Duration,
}

impl RtResult {
    pub fn latency(&self) -> Duration {
        self.finished - self.started
    }
}

/// An emulated global interpreter lock with cooperative switch points.
#[derive(Debug, Default)]
struct Gil {
    state: Mutex<bool>,
    cv: Condvar,
}

impl Gil {
    fn acquire(&self) {
        let mut held = self.state.lock();
        while *held {
            self.cv.wait(&mut held);
        }
        *held = true;
    }

    fn release(&self) {
        *self.state.lock() = false;
        self.cv.notify_one();
    }
}

fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

fn to_std(d: SimDuration) -> Duration {
    Duration::from_nanos(d.as_nanos())
}

/// Runs one task's segments: CPU bursts spin (GIL-gated under
/// pseudo-parallelism, yielding every `quantum`), blocking segments sleep
/// with the lock released.
fn run_segments(segments: &[Segment], gil: &Gil, runtime: RuntimeKind, quantum: Duration) {
    for seg in segments {
        match seg {
            Segment::Cpu(d) => {
                let mut remaining = to_std(*d);
                while remaining > Duration::ZERO {
                    let slice = remaining.min(quantum);
                    if runtime == RuntimeKind::PseudoParallel {
                        gil.acquire();
                        spin_for(slice);
                        gil.release();
                    } else {
                        spin_for(slice);
                    }
                    remaining -= slice;
                }
            }
            Segment::Block { dur, .. } => {
                // The GIL is dropped during blocking ops.
                std::thread::sleep(to_std(*dur));
            }
        }
    }
}

/// Executes `tasks` on real OS threads.
///
/// Under [`RuntimeKind::PseudoParallel`], tasks of the same `process` share
/// an emulated GIL: CPU bursts run with the lock held and yield it every
/// `switch_interval`; blocking segments sleep with the lock released. Under
/// [`RuntimeKind::TrueParallel`] every thread runs freely.
pub fn run_realtime(
    tasks: &[RtTask],
    runtime: RuntimeKind,
    switch_interval: SimDuration,
) -> Vec<RtResult> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let n_procs = tasks.iter().map(|t| t.process).max().unwrap_or(0) + 1;
    let gils: Vec<Arc<Gil>> = (0..n_procs).map(|_| Arc::new(Gil::default())).collect();
    let quantum = to_std(switch_interval);
    let batch_start = Instant::now();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(tasks.len());
        for task in tasks {
            let gil = gils[task.process].clone();
            let segments = task.segments.clone();
            handles.push(scope.spawn(move || {
                let started = batch_start.elapsed();
                run_segments(&segments, &gil, runtime, quantum);
                RtResult {
                    started,
                    finished: batch_start.elapsed(),
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rt worker panicked"))
            .collect()
    })
}

/// Deterministic payload byte `j` of edge `ei` — lets the consumer verify
/// content end to end on top of the ring's own CRC.
fn edge_byte(ei: usize, j: usize) -> u8 {
    (ei as u8).wrapping_mul(31).wrapping_add(j as u8)
}

/// [`run_realtime`] with real wrap-to-wrap data-plane wiring: every edge
/// gets its own lock-free SPSC ring ([`ring`]), sized to hold its frame
/// with room to spare. A task first drains each inbound ring (spinning
/// until the producer's frame lands, CRC- and content-validated), then
/// runs its segments, then pushes its outbound payloads — so downstream
/// tasks genuinely wait on the shared-memory handoff, the behaviour the
/// simulator's `shm_ring` tier models.
///
/// Panics if an edge names an out-of-range task, is a self-loop, or if a
/// ring delivers corrupt or mismatched bytes.
pub fn run_realtime_wired(
    tasks: &[RtTask],
    edges: &[RtEdge],
    runtime: RuntimeKind,
    switch_interval: SimDuration,
) -> Vec<RtResult> {
    if tasks.is_empty() {
        assert!(edges.is_empty(), "edges without tasks");
        return Vec::new();
    }
    let mut inboxes: Vec<Vec<(usize, ring::Consumer)>> =
        (0..tasks.len()).map(|_| Vec::new()).collect();
    let mut outboxes: Vec<Vec<(usize, ring::Producer)>> =
        (0..tasks.len()).map(|_| Vec::new()).collect();
    for (ei, edge) in edges.iter().enumerate() {
        assert!(
            edge.from < tasks.len() && edge.to < tasks.len(),
            "edge {ei} references a task outside the batch"
        );
        assert_ne!(edge.from, edge.to, "edge {ei} is a self-loop");
        let cap = (edge.bytes + ring::FRAME_HEADER_BYTES)
            .saturating_mul(2)
            .next_power_of_two()
            .max(1024);
        let (tx, rx) = ring::ring(cap);
        outboxes[edge.from].push((ei, tx));
        inboxes[edge.to].push((ei, rx));
    }

    let n_procs = tasks.iter().map(|t| t.process).max().unwrap_or(0) + 1;
    let gils: Vec<Arc<Gil>> = (0..n_procs).map(|_| Arc::new(Gil::default())).collect();
    let quantum = to_std(switch_interval);
    let batch_start = Instant::now();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(tasks.len());
        let mut inboxes = inboxes.into_iter();
        let mut outboxes = outboxes.into_iter();
        for task in tasks {
            let gil = gils[task.process].clone();
            let segments = task.segments.clone();
            let mut my_in = inboxes.next().expect("one inbox per task");
            let my_out = outboxes.next().expect("one outbox per task");
            handles.push(scope.spawn(move || {
                let started = batch_start.elapsed();
                for (ei, rx) in &mut my_in {
                    let want = edges[*ei].bytes;
                    rx.pop_with_blocking(|a, b| {
                        assert_eq!(a.len() + b.len(), want, "edge {ei} payload length");
                        for (j, &byte) in a.iter().chain(b).enumerate() {
                            assert_eq!(byte, edge_byte(*ei, j), "edge {ei} byte {j}");
                        }
                    })
                    .expect("inbound frame validated");
                }
                run_segments(&segments, &gil, runtime, quantum);
                for (ei, mut tx) in my_out {
                    let payload: Vec<u8> = (0..edges[ei].bytes).map(|j| edge_byte(ei, j)).collect();
                    tx.push_blocking(&payload).expect("outbound frame fits");
                }
                RtResult {
                    started,
                    finished: batch_start.elapsed(),
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rt worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiron_model::SyscallKind;

    const SWITCH: SimDuration = SimDuration::from_millis(5);

    fn cpu(ms: u64) -> Segment {
        Segment::cpu_ms(ms)
    }

    fn io(ms: u64) -> Segment {
        Segment::Block {
            kind: SyscallKind::Sleep,
            dur: SimDuration::from_millis(ms),
        }
    }

    fn makespan(results: &[RtResult]) -> Duration {
        results.iter().map(|r| r.finished).max().unwrap()
    }

    fn cores() -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }

    #[test]
    fn gil_serialises_cpu_threads() {
        let tasks = vec![
            RtTask {
                process: 0,
                segments: vec![cpu(30)],
            },
            RtTask {
                process: 0,
                segments: vec![cpu(30)],
            },
        ];
        let results = run_realtime(&tasks, RuntimeKind::PseudoParallel, SWITCH);
        let total = makespan(&results);
        // 60ms of CPU serialised by the GIL: demand clearly more wall time
        // than parallel execution would take.
        assert!(total >= Duration::from_millis(55), "makespan {total:?}");
    }

    #[test]
    fn true_parallelism_overlaps_cpu() {
        if cores() < 2 {
            return; // cannot demonstrate parallelism on one core
        }
        let tasks = vec![
            RtTask {
                process: 0,
                segments: vec![cpu(40)],
            },
            RtTask {
                process: 0,
                segments: vec![cpu(40)],
            },
        ];
        let results = run_realtime(&tasks, RuntimeKind::TrueParallel, SWITCH);
        let total = makespan(&results);
        assert!(total < Duration::from_millis(70), "makespan {total:?}");
    }

    #[test]
    fn io_releases_the_gil() {
        // One thread sleeps 40ms, the other burns 40ms CPU: with the GIL
        // dropped during blocking ops they overlap.
        let tasks = vec![
            RtTask {
                process: 0,
                segments: vec![io(40)],
            },
            RtTask {
                process: 0,
                segments: vec![cpu(40)],
            },
        ];
        let results = run_realtime(&tasks, RuntimeKind::PseudoParallel, SWITCH);
        let total = makespan(&results);
        assert!(total < Duration::from_millis(70), "makespan {total:?}");
    }

    #[test]
    fn separate_processes_do_not_share_a_gil() {
        if cores() < 2 {
            return;
        }
        let tasks = vec![
            RtTask {
                process: 0,
                segments: vec![cpu(40)],
            },
            RtTask {
                process: 1,
                segments: vec![cpu(40)],
            },
        ];
        let results = run_realtime(&tasks, RuntimeKind::PseudoParallel, SWITCH);
        let total = makespan(&results);
        assert!(total < Duration::from_millis(70), "makespan {total:?}");
    }

    #[test]
    fn empty_input() {
        assert!(run_realtime(&[], RuntimeKind::PseudoParallel, SWITCH).is_empty());
        assert!(run_realtime_wired(&[], &[], RuntimeKind::PseudoParallel, SWITCH).is_empty());
    }

    #[test]
    fn wired_chain_serialises_across_the_ring() {
        // Three separate processes that would overlap freely — but wired
        // 0→1→2, each must wait for the upstream frame, so the chain
        // serialises: the real data dependency the shm_ring tier models.
        let tasks: Vec<RtTask> = (0..3)
            .map(|p| RtTask {
                process: p,
                segments: vec![cpu(10)],
            })
            .collect();
        let edges = [
            RtEdge {
                from: 0,
                to: 1,
                bytes: 4096,
            },
            RtEdge {
                from: 1,
                to: 2,
                bytes: 64 << 10,
            },
        ];
        let results = run_realtime_wired(&tasks, &edges, RuntimeKind::TrueParallel, SWITCH);
        let total = makespan(&results);
        assert!(total >= Duration::from_millis(28), "makespan {total:?}");
        // Each hop's consumer cannot finish before its producer.
        assert!(results[1].finished > results[0].finished - Duration::from_millis(1));
        assert!(results[2].finished > results[1].finished - Duration::from_millis(1));
    }

    #[test]
    fn wired_fan_out_delivers_every_payload() {
        // One producer, two consumers on distinct rings with distinct
        // sizes; the in-thread validators assert length, content and CRC.
        let tasks: Vec<RtTask> = (0..3)
            .map(|p| RtTask {
                process: p,
                segments: vec![cpu(2)],
            })
            .collect();
        let edges = [
            RtEdge {
                from: 0,
                to: 1,
                bytes: 0,
            },
            RtEdge {
                from: 0,
                to: 2,
                bytes: 100 << 10,
            },
        ];
        let results = run_realtime_wired(&tasks, &edges, RuntimeKind::PseudoParallel, SWITCH);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn wired_without_edges_matches_plain_behaviour() {
        let tasks = vec![
            RtTask {
                process: 0,
                segments: vec![cpu(5)],
            },
            RtTask {
                process: 1,
                segments: vec![io(5)],
            },
        ];
        let results = run_realtime_wired(&tasks, &[], RuntimeKind::PseudoParallel, SWITCH);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.latency() >= Duration::from_millis(4), "latency {r:?}");
        }
    }

    #[test]
    fn latency_accessor() {
        let r = RtResult {
            started: Duration::from_millis(2),
            finished: Duration::from_millis(12),
        };
        assert_eq!(r.latency(), Duration::from_millis(10));
    }
}
