//! Latency models for every intermediate-data path the paper measures
//! (Fig. 4, Observation 1):
//!
//! * remote object storage (AWS S3 behind Lambda),
//! * cluster-local object storage (MinIO),
//! * Linux pipes between processes of one sandbox (`T_IPC`),
//! * shared memory between threads of one process (free by assumption,
//!   Eq. 3: "no interaction time for thread communication").
//!
//! Each model is `floor + size / bandwidth`, fit to the paper's reported
//! end points: the smallest S3 transfer takes ≈52 ms and 1 GB ≈25 s; the
//! local cluster ranges from ≈10 ms to ≈10 s.

use chiron_model::{SimDuration, TransferKind};
use serde::{Deserialize, Serialize};

/// A `floor + bytes/bandwidth` latency model for one data path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Fixed per-transfer latency (connection setup, request routing,
    /// metadata, data copies).
    pub floor: SimDuration,
    /// Sustained bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl LinkModel {
    pub fn latency(&self, bytes: u64) -> SimDuration {
        let transfer_ns = bytes as f64 / self.bytes_per_sec * 1e9;
        self.floor + SimDuration::from_nanos(transfer_ns.round() as u64)
    }
}

/// Transfer models for all data paths on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// AWS S3 through Lambda: write + read of the object.
    pub s3: LinkModel,
    /// Cluster-local MinIO: write + read of the object.
    pub minio: LinkModel,
    /// RPC payload piggy-backing (wrap-to-wrap transfers) — cheap on a
    /// 10 Gbps full-bisection cluster (Table 2).
    pub rpc_payload: LinkModel,
    /// Linux pipe between processes of one sandbox.
    pub pipe: LinkModel,
    /// Shared memory between threads (load/store instructions).
    pub shared_memory: LinkModel,
}

impl TransferModel {
    /// Constants fit to Fig. 4 and the local-cluster observations.
    pub fn paper_calibrated() -> Self {
        TransferModel {
            s3: LinkModel {
                floor: SimDuration::from_millis(52),
                bytes_per_sec: 43e6,
            },
            minio: LinkModel {
                floor: SimDuration::from_millis(10),
                bytes_per_sec: 107e6,
            },
            rpc_payload: LinkModel {
                floor: SimDuration::from_millis_f64(0.2),
                bytes_per_sec: 1.0e9,
            },
            pipe: LinkModel {
                floor: SimDuration::from_millis_f64(0.05),
                bytes_per_sec: 2.5e9,
            },
            shared_memory: LinkModel {
                floor: SimDuration::ZERO,
                bytes_per_sec: 20e9,
            },
        }
    }

    /// Transfer latency across a **sandbox boundary** for the configured
    /// mechanism.
    pub fn cross_sandbox(&self, kind: TransferKind, bytes: u64) -> SimDuration {
        match kind {
            TransferKind::RemoteS3 => self.s3.latency(bytes),
            TransferKind::LocalMinio => self.minio.latency(bytes),
            TransferKind::RpcPayload => self.rpc_payload.latency(bytes),
        }
    }

    /// Transfer latency between two processes of one sandbox.
    pub fn cross_process(&self, bytes: u64) -> SimDuration {
        self.pipe.latency(bytes)
    }

    /// Transfer latency between two threads of one process.
    pub fn cross_thread(&self, bytes: u64) -> SimDuration {
        self.shared_memory.latency(bytes)
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        TransferModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn s3_matches_figure_4_endpoints() {
        let m = TransferModel::paper_calibrated();
        let tiny = m.s3.latency(1).as_millis_f64();
        assert!((tiny - 52.0).abs() < 0.5, "1B over S3: {tiny}ms");
        let huge = m.s3.latency(GB).as_millis_f64();
        assert!(
            (20_000.0..30_000.0).contains(&huge),
            "1GB over S3: {huge}ms"
        );
    }

    #[test]
    fn minio_matches_local_cluster_range() {
        let m = TransferModel::paper_calibrated();
        let tiny = m.minio.latency(1).as_millis_f64();
        assert!((9.0..12.0).contains(&tiny), "1B over MinIO: {tiny}ms");
        let huge = m.minio.latency(GB).as_millis_f64();
        assert!(
            (8_000.0..12_000.0).contains(&huge),
            "1GB over MinIO: {huge}ms"
        );
    }

    #[test]
    fn locality_hierarchy() {
        let m = TransferModel::paper_calibrated();
        let bytes = 1 << 20;
        let s3 = m.cross_sandbox(TransferKind::RemoteS3, bytes);
        let minio = m.cross_sandbox(TransferKind::LocalMinio, bytes);
        let rpc = m.cross_sandbox(TransferKind::RpcPayload, bytes);
        let pipe = m.cross_process(bytes);
        let shm = m.cross_thread(bytes);
        assert!(s3 > minio && minio > rpc && rpc > pipe && pipe > shm);
    }

    #[test]
    fn monotone_in_size() {
        let m = TransferModel::paper_calibrated();
        assert!(m.pipe.latency(1 << 20) > m.pipe.latency(1 << 10));
        assert_eq!(m.shared_memory.latency(0), SimDuration::ZERO);
    }
}
