//! Latency models for every intermediate-data path the paper measures
//! (Fig. 4, Observation 1):
//!
//! * remote object storage (AWS S3 behind Lambda),
//! * cluster-local object storage (MinIO),
//! * Linux pipes between processes of one sandbox (`T_IPC`),
//! * a lock-free shared-memory SPSC ring between wraps co-located on one
//!   node (`chiron-runtime::rt::ring` — the sub-microsecond regime the
//!   paper's five-decade span bottoms out in),
//! * shared memory between threads of one process (free by assumption,
//!   Eq. 3: "no interaction time for thread communication").
//!
//! Each model is `floor + size / bandwidth`, fit to the paper's reported
//! end points: the smallest S3 transfer takes ≈52 ms and 1 GB ≈25 s; the
//! local cluster ranges from ≈10 ms to ≈10 s. The shm-ring tier is fit to
//! the Criterion-measured latency/throughput of the real ring (`figures --
//! transfer` records the measured fit next to these constants).

use chiron_model::{SimDuration, TransferKind};
use serde::{Deserialize, Serialize};

/// A `floor + bytes/bandwidth` latency model for one data path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Fixed per-transfer latency (connection setup, request routing,
    /// metadata, data copies).
    pub floor: SimDuration,
    /// Sustained bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl LinkModel {
    /// `floor + bytes/bandwidth`, computed in u128 integer math. The old
    /// f64 round trip (`bytes as f64 / bytes_per_sec * 1e9`) lost integer
    /// precision once the intermediate product crossed ~2^53 and could go
    /// non-monotonic in `bytes`; the integer form is exact and monotone by
    /// construction (the numerator grows with `bytes`, the divisor is
    /// fixed).
    pub fn latency(&self, bytes: u64) -> SimDuration {
        let bps = (self.bytes_per_sec.round() as u64).max(1);
        let ns = (u128::from(bytes) * 1_000_000_000 + u128::from(bps / 2)) / u128::from(bps);
        let ns = u64::try_from(ns).unwrap_or(u64::MAX);
        SimDuration::from_nanos(self.floor.as_nanos().saturating_add(ns))
    }
}

/// Transfer models for all data paths on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// AWS S3 through Lambda: write + read of the object.
    pub s3: LinkModel,
    /// Cluster-local MinIO: write + read of the object.
    pub minio: LinkModel,
    /// RPC payload piggy-backing (wrap-to-wrap transfers) — cheap on a
    /// 10 Gbps full-bisection cluster (Table 2).
    pub rpc_payload: LinkModel,
    /// Lock-free SPSC shared-memory ring between wraps on one node
    /// (`chiron-runtime::rt::ring`): a sub-microsecond doorbell floor plus
    /// memcpy-rate bandwidth, calibrated from the measured ring.
    pub shm_ring: LinkModel,
    /// Linux pipe between processes of one sandbox.
    pub pipe: LinkModel,
    /// Shared memory between threads (load/store instructions).
    pub shared_memory: LinkModel,
}

impl TransferModel {
    /// Constants fit to Fig. 4 and the local-cluster observations.
    pub fn paper_calibrated() -> Self {
        TransferModel {
            s3: LinkModel {
                floor: SimDuration::from_millis(52),
                bytes_per_sec: 43e6,
            },
            minio: LinkModel {
                floor: SimDuration::from_millis(10),
                bytes_per_sec: 107e6,
            },
            rpc_payload: LinkModel {
                floor: SimDuration::from_millis_f64(0.2),
                bytes_per_sec: 1.0e9,
            },
            // Fit to the measured SPSC ring (`rt::ring::measure_fit`): the
            // round-trip floor lands well under a microsecond and the
            // sustained large-frame rate around memcpy speed. The constants
            // are fixed (not re-measured per run) so every simulation stays
            // deterministic; `figures -- transfer` records the live fit
            // next to them and CI gates `ring_floor_lt_pipe_floor`.
            shm_ring: LinkModel {
                floor: SimDuration::from_nanos(500),
                bytes_per_sec: 10e9,
            },
            pipe: LinkModel {
                floor: SimDuration::from_millis_f64(0.05),
                bytes_per_sec: 2.5e9,
            },
            shared_memory: LinkModel {
                floor: SimDuration::ZERO,
                bytes_per_sec: 20e9,
            },
        }
    }

    /// Transfer latency across a **sandbox boundary** for the configured
    /// mechanism, with no locality information: the shm-ring tier prices
    /// as the ring (callers that know the pair is split across nodes use
    /// [`TransferModel::wrap_to_wrap`] instead).
    pub fn cross_sandbox(&self, kind: TransferKind, bytes: u64) -> SimDuration {
        match kind {
            TransferKind::RemoteS3 => self.s3.latency(bytes),
            TransferKind::LocalMinio => self.minio.latency(bytes),
            TransferKind::RpcPayload => self.rpc_payload.latency(bytes),
            TransferKind::ShmRing => self.shm_ring.latency(bytes),
        }
    }

    /// Wrap-to-wrap payload latency under `kind` given the pair's
    /// locality: a co-located pair under [`TransferKind::ShmRing`] rides
    /// the ring (the doorbell floor replaces the RPC round trip — the
    /// caller drops its `T_RPC` charge too); a split pair falls back to
    /// RPC payload piggy-backing. Store-based kinds ignore locality.
    pub fn wrap_to_wrap(&self, kind: TransferKind, colocated: bool, bytes: u64) -> SimDuration {
        match kind {
            TransferKind::ShmRing if !colocated => self.rpc_payload.latency(bytes),
            _ => self.cross_sandbox(kind, bytes),
        }
    }

    /// Transfer latency between two processes of one sandbox.
    pub fn cross_process(&self, bytes: u64) -> SimDuration {
        self.pipe.latency(bytes)
    }

    /// Transfer latency between two threads of one process.
    pub fn cross_thread(&self, bytes: u64) -> SimDuration {
        self.shared_memory.latency(bytes)
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        TransferModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn s3_matches_figure_4_endpoints() {
        let m = TransferModel::paper_calibrated();
        let tiny = m.s3.latency(1).as_millis_f64();
        assert!((tiny - 52.0).abs() < 0.5, "1B over S3: {tiny}ms");
        let huge = m.s3.latency(GB).as_millis_f64();
        assert!(
            (20_000.0..30_000.0).contains(&huge),
            "1GB over S3: {huge}ms"
        );
    }

    #[test]
    fn minio_matches_local_cluster_range() {
        let m = TransferModel::paper_calibrated();
        let tiny = m.minio.latency(1).as_millis_f64();
        assert!((9.0..12.0).contains(&tiny), "1B over MinIO: {tiny}ms");
        let huge = m.minio.latency(GB).as_millis_f64();
        assert!(
            (8_000.0..12_000.0).contains(&huge),
            "1GB over MinIO: {huge}ms"
        );
    }

    #[test]
    fn locality_hierarchy() {
        let m = TransferModel::paper_calibrated();
        let bytes = 1 << 20;
        let s3 = m.cross_sandbox(TransferKind::RemoteS3, bytes);
        let minio = m.cross_sandbox(TransferKind::LocalMinio, bytes);
        let rpc = m.cross_sandbox(TransferKind::RpcPayload, bytes);
        let ring = m.cross_sandbox(TransferKind::ShmRing, bytes);
        let pipe = m.cross_process(bytes);
        let shm = m.cross_thread(bytes);
        assert!(s3 > minio && minio > rpc && rpc > pipe && pipe > ring && ring > shm);
    }

    #[test]
    fn ring_floor_under_pipe_floor() {
        // The whole point of the tier: its fixed cost sits below every
        // other cross-context path, spanning the paper's five decades.
        let m = TransferModel::paper_calibrated();
        assert!(m.shm_ring.floor < m.pipe.floor);
        assert!(m.shm_ring.latency(1) < m.pipe.latency(1));
    }

    #[test]
    fn wrap_to_wrap_keys_on_locality() {
        let m = TransferModel::paper_calibrated();
        let bytes = 1 << 20;
        let local = m.wrap_to_wrap(TransferKind::ShmRing, true, bytes);
        let split = m.wrap_to_wrap(TransferKind::ShmRing, false, bytes);
        assert_eq!(local, m.shm_ring.latency(bytes));
        assert_eq!(split, m.rpc_payload.latency(bytes));
        // Store-based kinds ignore locality entirely.
        for kind in [
            TransferKind::RemoteS3,
            TransferKind::LocalMinio,
            TransferKind::RpcPayload,
        ] {
            assert_eq!(
                m.wrap_to_wrap(kind, true, bytes),
                m.wrap_to_wrap(kind, false, bytes)
            );
        }
    }

    #[test]
    fn monotone_in_size() {
        let m = TransferModel::paper_calibrated();
        assert!(m.pipe.latency(1 << 20) > m.pipe.latency(1 << 10));
        assert_eq!(m.shared_memory.latency(0), SimDuration::ZERO);
    }

    #[test]
    fn integer_latency_is_exact_at_extreme_sizes() {
        // The f64 path lost integer precision above ~2^53 ns-scale
        // products; the u128 path is exact: 2^40 B at 1 B/s is 2^40 s.
        let slow = LinkModel {
            floor: SimDuration::ZERO,
            bytes_per_sec: 1.0,
        };
        let bytes = 1u64 << 40;
        assert_eq!(
            slow.latency(bytes).as_nanos(),
            bytes.saturating_mul(1_000_000_000)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The satellite contract: `latency` is monotone in `bytes` for
        /// any link, including bandwidths and sizes where the old f64
        /// round trip could invert.
        #[test]
        fn latency_monotone_in_bytes(
            a in 0u64..=u64::MAX / 2,
            delta in 0u64..=u64::MAX / 2,
            floor_us in 0u64..10_000_000,
            sel in 0usize..6,
            raw_bps in 1.0f64..1e12,
        ) {
            // Mix the calibrated bandwidths in with arbitrary draws so the
            // exact tier constants are always exercised.
            let bps = [1.0, 43e6, 107e6, 2.5e9, 10e9, raw_bps][sel];
            let link = LinkModel {
                floor: SimDuration::from_micros(floor_us),
                bytes_per_sec: bps,
            };
            prop_assert!(link.latency(a + delta) >= link.latency(a));
        }

        /// Every paper-calibrated tier is monotone across the full
        /// five-decade payload range.
        #[test]
        fn calibrated_tiers_monotone(shift in 0u32..40, sel in 0usize..4) {
            let kind = [
                TransferKind::RemoteS3,
                TransferKind::LocalMinio,
                TransferKind::RpcPayload,
                TransferKind::ShmRing,
            ][sel];
            let m = TransferModel::paper_calibrated();
            let small = 1u64 << shift;
            prop_assert!(m.cross_sandbox(kind, small * 2) >= m.cross_sandbox(kind, small));
        }
    }
}
