//! # chiron-store
//!
//! Intermediate-data substrate for the Chiron reproduction: calibrated
//! latency models for every data path (S3, MinIO, RPC payload, pipe,
//! shared memory — Fig. 4) and a functional in-memory object store used by
//! the one-to-one deployment models.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod objectstore;
pub mod transfer;

pub use objectstore::{ObjectStore, StoreError, StoreStats};
pub use transfer::{LinkModel, TransferModel};
