//! A functional in-memory object store standing in for S3/MinIO.
//!
//! One-to-one platforms pass intermediate data by writing each function's
//! output to the store and reading it back downstream. This store holds the
//! actual payload bytes (so integration tests exercise real data flow) and
//! reports the latency each operation would have cost through the
//! calibrated [`crate::transfer::LinkModel`].

use crate::transfer::LinkModel;
use bytes::Bytes;
use chiron_model::SimDuration;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Statistics accumulated by an object store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub puts: u64,
    pub gets: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
}

/// An in-memory bucket with an attached latency model.
///
/// Thread-safe: the runtime's real-thread executor may call it from many
/// worker threads at once.
#[derive(Debug)]
pub struct ObjectStore {
    link: LinkModel,
    objects: RwLock<HashMap<String, Bytes>>,
    stats: RwLock<StoreStats>,
}

/// Failure modes of object-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    NotFound(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(key) => write!(f, "object not found: {key}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl ObjectStore {
    pub fn new(link: LinkModel) -> Self {
        ObjectStore {
            link,
            objects: RwLock::new(HashMap::new()),
            stats: RwLock::new(StoreStats::default()),
        }
    }

    /// Stores `data` under `key`; returns the modelled write latency.
    pub fn put(&self, key: impl Into<String>, data: Bytes) -> SimDuration {
        let latency = self.link.latency(data.len() as u64);
        let mut stats = self.stats.write();
        stats.puts += 1;
        stats.bytes_written += data.len() as u64;
        drop(stats);
        self.objects.write().insert(key.into(), data);
        latency
    }

    /// Fetches the object under `key` with its modelled read latency.
    pub fn get(&self, key: &str) -> Result<(Bytes, SimDuration), StoreError> {
        let data = self
            .objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(key.to_owned()))?;
        let latency = self.link.latency(data.len() as u64);
        let mut stats = self.stats.write();
        stats.gets += 1;
        stats.bytes_read += data.len() as u64;
        Ok((data, latency))
    }

    pub fn contains(&self, key: &str) -> bool {
        self.objects.read().contains_key(key)
    }

    pub fn delete(&self, key: &str) -> bool {
        self.objects.write().remove(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    pub fn stats(&self) -> StoreStats {
        *self.stats.read()
    }

    /// Drops all objects (between simulated requests).
    pub fn clear(&self) {
        self.objects.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::TransferModel;

    fn store() -> ObjectStore {
        ObjectStore::new(TransferModel::paper_calibrated().minio)
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store();
        let wrote = s.put("stage0/f0", Bytes::from_static(b"payload"));
        assert!(wrote >= SimDuration::from_millis(10));
        let (data, read) = s.get("stage0/f0").unwrap();
        assert_eq!(&data[..], b"payload");
        assert!(read >= SimDuration::from_millis(10));
        assert!(s.contains("stage0/f0"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn missing_key_errors() {
        let s = store();
        assert_eq!(
            s.get("nope").unwrap_err(),
            StoreError::NotFound("nope".into())
        );
    }

    #[test]
    fn stats_accumulate() {
        let s = store();
        s.put("a", Bytes::from(vec![0u8; 100]));
        s.put("b", Bytes::from(vec![0u8; 50]));
        s.get("a").unwrap();
        let st = s.stats();
        assert_eq!(st.puts, 2);
        assert_eq!(st.gets, 1);
        assert_eq!(st.bytes_written, 150);
        assert_eq!(st.bytes_read, 100);
    }

    #[test]
    fn delete_and_clear() {
        let s = store();
        s.put("a", Bytes::from_static(b"x"));
        assert!(s.delete("a"));
        assert!(!s.delete("a"));
        s.put("b", Bytes::from_static(b"y"));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn bigger_objects_cost_more() {
        let s = store();
        let small = s.put("s", Bytes::from(vec![0u8; 1 << 10]));
        let large = s.put("l", Bytes::from(vec![0u8; 8 << 20]));
        assert!(large > small);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let s = std::sync::Arc::new(store());
        let mut handles = Vec::new();
        for i in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    let key = format!("k{i}-{j}");
                    s.put(key.clone(), Bytes::from(vec![i as u8; 64]));
                    s.get(&key).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 8 * 50);
        assert_eq!(s.stats().puts, 400);
    }
}
